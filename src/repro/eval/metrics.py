"""Precision/recall metrics for homograph rankings.

The paper's measure of success (§5): report precision and recall of the
``k`` top-ranked candidates against ground truth, with ``k`` defaulting
to the true number of homographs — at that point precision, recall and
F1 coincide (both denominators equal ``k``), which is why the paper can
quote "a precision and a recall of 38%" as a single number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision/recall/F1 of one top-k cut."""

    k: int
    true_positives: int
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return (
            2 * self.precision * self.recall / (self.precision + self.recall)
        )


def precision_recall_at_k(
    ranked_values: Sequence[str],
    ground_truth: Set[str],
    k: int,
) -> PrecisionRecall:
    """Evaluate the top-``k`` of a ranking against ground truth.

    ``k`` larger than the ranking is clamped — retrieving everything is
    the best that ranking can do.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if not ground_truth:
        raise ValueError("ground truth must be non-empty")
    k = min(k, len(ranked_values))
    hits = sum(1 for value in ranked_values[:k] if value in ground_truth)
    precision = hits / k if k else 0.0
    recall = hits / len(ground_truth)
    return PrecisionRecall(
        k=k, true_positives=hits, precision=precision, recall=recall
    )


@dataclass(frozen=True)
class TopKCurve:
    """Precision/recall/F1 as a function of k (the Figure 7 series)."""

    ks: List[int]
    precision: List[float]
    recall: List[float]
    f1: List[float]

    def best_f1(self) -> PrecisionRecall:
        """The cut with the highest F1 (the paper quotes k=29,633)."""
        best = max(range(len(self.ks)), key=lambda i: self.f1[i])
        # Reconstruct the hit count from precision; avoids re-scanning.
        k = self.ks[best]
        hits = round(self.precision[best] * k)
        return PrecisionRecall(
            k=k,
            true_positives=hits,
            precision=self.precision[best],
            recall=self.recall[best],
        )

    def at_k(self, k: int) -> PrecisionRecall:
        """The curve point at exactly ``k`` (must be one of ``ks``)."""
        try:
            i = self.ks.index(k)
        except ValueError:
            raise KeyError(f"k={k} not on the curve") from None
        hits = round(self.precision[i] * k)
        return PrecisionRecall(
            k=k,
            true_positives=hits,
            precision=self.precision[i],
            recall=self.recall[i],
        )


def topk_curve(
    ranked_values: Sequence[str],
    ground_truth: Set[str],
    ks: Sequence[int] = (),
) -> TopKCurve:
    """Sweep k over a ranking in one pass.

    Without explicit ``ks``, every prefix length 1..len(ranking) is
    evaluated (the full Figure 7 sweep).
    """
    if not ground_truth:
        raise ValueError("ground truth must be non-empty")
    n = len(ranked_values)
    cut_points = sorted({min(k, n) for k in ks if k > 0}) if ks else list(
        range(1, n + 1)
    )

    total_truth = len(ground_truth)
    hits = 0
    curve_p: List[float] = []
    curve_r: List[float] = []
    curve_f: List[float] = []
    next_cut = 0
    for i, value in enumerate(ranked_values, start=1):
        if value in ground_truth:
            hits += 1
        while next_cut < len(cut_points) and cut_points[next_cut] == i:
            precision = hits / i
            recall = hits / total_truth
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            curve_p.append(precision)
            curve_r.append(recall)
            curve_f.append(f1)
            next_cut += 1
    return TopKCurve(
        ks=cut_points, precision=curve_p, recall=curve_r, f1=curve_f
    )


def average_precision(
    ranked_values: Sequence[str], ground_truth: Set[str]
) -> float:
    """Mean of precision at each relevant hit (classic ranking AP)."""
    if not ground_truth:
        raise ValueError("ground truth must be non-empty")
    hits = 0
    total = 0.0
    for i, value in enumerate(ranked_values, start=1):
        if value in ground_truth:
            hits += 1
            total += hits / i
    return total / len(ground_truth)


def recall_of_set(
    predicted: Set[str], ground_truth: Set[str]
) -> PrecisionRecall:
    """Set-based precision/recall (for unranked baselines like D4)."""
    if not ground_truth:
        raise ValueError("ground truth must be non-empty")
    hits = len(predicted & ground_truth)
    precision = hits / len(predicted) if predicted else 0.0
    recall = hits / len(ground_truth)
    return PrecisionRecall(
        k=len(predicted), true_positives=hits,
        precision=precision, recall=recall,
    )


def ranking_overlap(
    ranking_a: Sequence[str], ranking_b: Sequence[str], k: int
) -> float:
    """Top-k overlap fraction between two rankings (sampling ablation)."""
    if k <= 0:
        raise ValueError("k must be positive")
    top_a = set(ranking_a[:k])
    top_b = set(ranking_b[:k])
    denom = min(k, len(ranking_a), len(ranking_b))
    if denom == 0:
        return 0.0
    return len(top_a & top_b) / denom
