"""Result rendering and export for the experiment harness.

Terminal-friendly output for the regenerated figures: ASCII line charts
for the curve figures (7, 8, 9) and bar charts for the per-category
ones, plus JSON/CSV export so downstream tooling can replot everything.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, os.PathLike]


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Plot one or more aligned series as an ASCII line chart.

    All series share the x axis (``xs``) and are scaled to a common
    [min, max] y range.  Each series is drawn with its own glyph; a
    legend line maps glyphs to names.
    """
    if not xs or not series:
        raise ValueError("chart needs at least one point and one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x axis has {len(xs)}"
            )

    glyphs = "*o+x#@%&"
    all_values = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_min:<10.4g}" + " " * max(0, width - 20)
        + f"{x_max:>10.4g}"
    )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart for categorical results."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to chart")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{str(label):>{label_width}} | {bar} {value:.3g}")
    return "\n".join(lines)


def export_series_json(
    path: PathLike,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write aligned series as a JSON document."""
    payload = {
        "x": list(xs),
        "series": {name: list(ys) for name, ys in series.items()},
        "metadata": dict(metadata or {}),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def export_series_csv(
    path: PathLike,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    x_name: str = "x",
) -> None:
    """Write aligned series as CSV with one row per x value."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(series)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_name] + names)
        for i, x in enumerate(xs):
            writer.writerow([x] + [series[name][i] for name in names])


def load_series_json(path: PathLike) -> Dict[str, object]:
    """Read back a document written by :func:`export_series_json`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
