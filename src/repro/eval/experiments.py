"""Experiment runners — one per table/figure of the paper's §5.

Each function regenerates the data series behind one published artifact
and returns a small result object whose ``format()`` renders the same
rows/series the paper reports.  The benchmark harness in ``benchmarks/``
wraps these with pytest-benchmark; they are equally usable from a
notebook or script.

Absolute numbers depend on the synthetic substrates (see DESIGN.md §3);
the asserted expectations are shape-level and recorded side by side
with the paper's numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.injection import (
    InjectionConfig,
    inject_homographs,
    injection_recovery,
    remove_homographs,
)
from ..bench.scale import ScaleConfig, extract_subgraphs, generate_scale_lake
from ..bench.synthetic import SBConfig, SBDataset, generate_sb
from ..bench.tus import TUSConfig, TUSDataset, generate_tus
from ..api import HomographIndex
from ..core.betweenness import betweenness_scores
from ..core.ranking import rank_by_betweenness
from ..datalake.catalog import compute_statistics, format_statistics_table
from ..domains.d4 import D4Config, run_d4
from .metrics import precision_recall_at_k, topk_curve


# ---------------------------------------------------------------------
# Table 1 — dataset statistics
# ---------------------------------------------------------------------
@dataclass
class Table1Result:
    text: str

    def format(self) -> str:
        return self.text


def experiment_table1(
    sb: Optional[SBDataset] = None,
    tus: Optional[TUSDataset] = None,
) -> Table1Result:
    """Regenerate Table 1: per-dataset statistics."""
    sb = sb or generate_sb()
    tus = tus or generate_tus()
    clean, groups = remove_homographs(tus)

    rows = [
        compute_statistics(
            sb.lake, "SB",
            homographs=sb.homographs,
            meanings=sb.ground_truth.meanings,
        ),
        compute_statistics(clean, "TUS-I (clean)"),
        compute_statistics(
            tus.lake, "TUS-like",
            homographs=tus.homographs,
            meanings=tus.ground_truth.meanings,
        ),
        compute_statistics(generate_scale_lake(), "SCALE"),
    ]
    return Table1Result(text=format_statistics_table(rows))


# ---------------------------------------------------------------------
# Figures 5 and 6 — SB top-55 by LCC and by BC
# ---------------------------------------------------------------------
@dataclass
class Top55Result:
    measure: str
    entries: List[Tuple[str, float, bool]]  # (value, score, is_homograph)
    homographs_in_top: int
    total_homographs: int

    def format(self) -> str:
        lines = [
            f"SB top-{len(self.entries)} by {self.measure}: "
            f"{self.homographs_in_top}/{self.total_homographs} homographs"
        ]
        for i, (value, score, is_hom) in enumerate(self.entries, start=1):
            marker = "homograph  " if is_hom else "unambiguous"
            lines.append(f"{i:4d}. {marker} {score:.4f}  {value}")
        return "\n".join(lines)


def experiment_sb_top55(
    measure: str,
    sb: Optional[SBDataset] = None,
    k: int = 55,
) -> Top55Result:
    """Figure 5 (measure='lcc') / Figure 6 (measure='betweenness')."""
    sb = sb or generate_sb()
    index = HomographIndex(sb.lake)
    result = index.detect(measure=measure)
    entries = [
        (e.value, e.score, e.value in sb.homographs)
        for e in result.ranking.top(k)
    ]
    return Top55Result(
        measure=measure,
        entries=entries,
        homographs_in_top=sum(1 for _v, _s, h in entries if h),
        total_homographs=len(sb.homographs),
    )


# ---------------------------------------------------------------------
# §5.1 — D4 baseline vs DomainNet on SB
# ---------------------------------------------------------------------
@dataclass
class BaselineComparison:
    d4_precision: float
    d4_hits: int
    domainnet_precision: float
    domainnet_hits: int
    k: int
    d4_domains: int

    def format(self) -> str:
        return (
            f"SB top-{self.k} (P = R at k = #homographs)\n"
            f"  D4 baseline : {self.d4_hits}/{self.k} = "
            f"{self.d4_precision:.2f}   ({self.d4_domains} domains found; "
            f"paper: 0.38)\n"
            f"  DomainNet BC: {self.domainnet_hits}/{self.k} = "
            f"{self.domainnet_precision:.2f}   (paper: 0.69)"
        )


def experiment_sb_baseline(
    sb: Optional[SBDataset] = None,
) -> BaselineComparison:
    """§5.1: D4-based homograph detection vs DomainNet BC on SB."""
    sb = sb or generate_sb()
    k = len(sb.homographs)

    d4 = run_d4(sb.lake)
    d4_pr = precision_recall_at_k(d4.ranked_homographs(), sb.homographs, k)

    index = HomographIndex(sb.lake)
    bc = index.detect(measure="betweenness")
    bc_pr = precision_recall_at_k(bc.ranking.values, sb.homographs, k)

    # Paper convention: quote hits/k so that precision = recall even
    # when a method returns fewer than k candidates (D4 often does).
    return BaselineComparison(
        d4_precision=d4_pr.true_positives / k,
        d4_hits=d4_pr.true_positives,
        domainnet_precision=bc_pr.true_positives / k,
        domainnet_hits=bc_pr.true_positives,
        k=k,
        d4_domains=d4.num_domains,
    )


# ---------------------------------------------------------------------
# Tables 2 and 3 — injected-homograph recovery on TUS-I
# ---------------------------------------------------------------------
@dataclass
class InjectionSweepResult:
    parameter_name: str
    rows: List[Tuple[object, float]]  # (parameter value, mean recovery)
    repeats: int

    def format(self) -> str:
        lines = [
            f"% of injected homographs in top-50 vs {self.parameter_name} "
            f"(mean of {self.repeats} runs)"
        ]
        for value, recovery in self.rows:
            lines.append(f"  {self.parameter_name}={value}: {recovery:.1%}")
        return "\n".join(lines)


def experiment_injection_cardinality(
    tus: Optional[TUSDataset] = None,
    thresholds: Sequence[int] = (0, 100, 200, 300, 400, 500),
    repeats: int = 4,
    sample_size: int = 500,
) -> InjectionSweepResult:
    """Table 2: recovery vs cardinality threshold (meanings fixed at 2)."""
    tus = tus or generate_tus()
    clean, groups = remove_homographs(tus)
    rows = []
    for threshold in thresholds:
        recoveries = [
            _one_injection_run(
                clean, groups,
                InjectionConfig(min_cardinality=threshold, seed=rep),
                sample_size=sample_size,
            )
            for rep in range(repeats)
        ]
        rows.append((threshold, float(np.mean(recoveries))))
    return InjectionSweepResult(
        parameter_name="min_cardinality", rows=rows, repeats=repeats
    )


def experiment_injection_meanings(
    tus: Optional[TUSDataset] = None,
    meanings: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    min_cardinality: int = 500,
    repeats: int = 4,
    sample_size: int = 500,
) -> InjectionSweepResult:
    """Table 3: recovery vs #meanings (cardinality fixed at >= 500)."""
    tus = tus or generate_tus()
    clean, groups = remove_homographs(tus)
    rows = []
    for m in meanings:
        recoveries = [
            _one_injection_run(
                clean, groups,
                InjectionConfig(
                    meanings=m, min_cardinality=min_cardinality, seed=rep
                ),
                sample_size=sample_size,
            )
            for rep in range(repeats)
        ]
        rows.append((m, float(np.mean(recoveries))))
    return InjectionSweepResult(
        parameter_name="meanings", rows=rows, repeats=repeats
    )


def _one_injection_run(clean, groups, config, sample_size) -> float:
    injected = inject_homographs(clean, groups, config)
    index = HomographIndex(injected.lake)
    result = index.detect(
        measure="betweenness", sample_size=sample_size, seed=config.seed
    )
    return injection_recovery(injected, result.ranking.values)


# ---------------------------------------------------------------------
# Figure 7 and the §5.3 top-10 listing — TUS top-k sweep
# ---------------------------------------------------------------------
@dataclass
class TusTopKResult:
    num_homographs: int
    p_at_200: float
    pr_at_truth: float
    best_f1: float
    best_f1_k: int
    curve_ks: List[int] = field(default_factory=list)
    curve_precision: List[float] = field(default_factory=list)
    curve_recall: List[float] = field(default_factory=list)
    curve_f1: List[float] = field(default_factory=list)
    top10: List[Tuple[str, float, bool]] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"TUS-like top-k sweep ({self.num_homographs} true homographs)",
            f"  P@200 = {self.p_at_200:.2f}            (paper: 0.89)",
            f"  P=R at k=#homographs = {self.pr_at_truth:.2f} (paper: 0.622)",
            f"  best F1 = {self.best_f1:.2f} at k={self.best_f1_k} "
            f"(paper: 0.655 at k=29,633)",
            "  k, precision, recall, f1:",
        ]
        for i, k in enumerate(self.curve_ks):
            lines.append(
                f"    {k:>7d}  {self.curve_precision[i]:.3f}  "
                f"{self.curve_recall[i]:.3f}  {self.curve_f1[i]:.3f}"
            )
        lines.append("  top-10 values by BC (paper: all 10 homographs):")
        for value, score, is_hom in self.top10:
            marker = "homograph  " if is_hom else "unambiguous"
            lines.append(f"    {marker} {score:.6f}  {value!r}")
        return "\n".join(lines)


def experiment_tus_topk(
    tus: Optional[TUSDataset] = None,
    sample_size: int = 1000,
    seed: int = 7,
    num_curve_points: int = 20,
) -> TusTopKResult:
    """Figure 7 + the §5.3 top-10 listing, in one detection run."""
    tus = tus or generate_tus()
    homographs = tus.homographs
    index = HomographIndex(tus.lake)
    result = index.detect(
        measure="betweenness", sample_size=sample_size, seed=seed
    )
    ranked = result.ranking.values

    n = len(ranked)
    ks = sorted({
        max(1, int(round(x)))
        for x in np.linspace(1, n, num_curve_points)
    } | {200, len(homographs)})
    curve = topk_curve(ranked, homographs, ks=ks)
    full = topk_curve(ranked, homographs)
    best = full.best_f1()

    top10 = [
        (e.value, e.score, e.value in homographs)
        for e in result.ranking.top(10)
    ]
    return TusTopKResult(
        num_homographs=len(homographs),
        p_at_200=curve.at_k(min(200, n)).precision,
        pr_at_truth=curve.at_k(min(len(homographs), n)).precision,
        best_f1=best.f1,
        best_f1_k=best.k,
        curve_ks=curve.ks,
        curve_precision=curve.precision,
        curve_recall=curve.recall,
        curve_f1=curve.f1,
        top10=top10,
    )


# ---------------------------------------------------------------------
# Figure 8 — precision and runtime vs BC sample size
# ---------------------------------------------------------------------
@dataclass
class SampleSizeSweepResult:
    rows: List[Tuple[int, float, float]]  # (samples, precision, seconds)
    exact_precision: float
    exact_seconds: float
    k: int

    def format(self) -> str:
        lines = [f"precision@{self.k} and runtime vs BC sample size"]
        for samples, precision, seconds in self.rows:
            lines.append(
                f"  samples={samples:>6d}: P={precision:.3f}  "
                f"time={seconds:6.1f}s"
            )
        lines.append(
            f"  exact        : P={self.exact_precision:.3f}  "
            f"time={self.exact_seconds:6.1f}s"
        )
        return "\n".join(lines)


def experiment_sample_size_sweep(
    tus: Optional[TUSDataset] = None,
    sample_sizes: Sequence[int] = (100, 250, 500, 1000, 2000),
    seed: int = 11,
    include_exact: bool = True,
) -> SampleSizeSweepResult:
    """Figure 8: the sampling-quality trade-off of approximate BC."""
    tus = tus or generate_tus()
    homographs = tus.homographs
    index = HomographIndex(tus.lake)
    graph = index.graph
    k = len(homographs)

    rows = []
    for samples in sample_sizes:
        start = time.perf_counter()
        scores = betweenness_scores(graph, sample_size=samples, seed=seed)
        elapsed = time.perf_counter() - start
        ranking = _rank_values(graph, scores)
        pr = precision_recall_at_k(ranking, homographs, k)
        rows.append((samples, pr.precision, elapsed))

    exact_precision = float("nan")
    exact_seconds = float("nan")
    if include_exact:
        start = time.perf_counter()
        scores = betweenness_scores(graph)
        exact_seconds = time.perf_counter() - start
        pr = precision_recall_at_k(
            _rank_values(graph, scores), homographs, k
        )
        exact_precision = pr.precision

    return SampleSizeSweepResult(
        rows=rows,
        exact_precision=exact_precision,
        exact_seconds=exact_seconds,
        k=k,
    )


def _rank_values(graph, scores) -> List[str]:
    value_scores = {
        graph.value_name(v): float(scores[v])
        for v in range(graph.num_values)
    }
    return rank_by_betweenness(value_scores).values


# ---------------------------------------------------------------------
# Figure 9 — approximate-BC runtime vs graph size
# ---------------------------------------------------------------------
@dataclass
class RuntimeScalingResult:
    rows: List[Tuple[int, int, float]]  # (edges, nodes, seconds)
    sample_fraction: float

    def format(self) -> str:
        lines = [
            f"approx-BC runtime vs subgraph size "
            f"({self.sample_fraction:.0%} of nodes sampled)"
        ]
        for edges, nodes, seconds in self.rows:
            lines.append(
                f"  edges={edges:>9,d} nodes={nodes:>9,d}: {seconds:6.1f}s"
            )
        return "\n".join(lines)

    def is_roughly_linear(self, tolerance: float = 0.5) -> bool:
        """Runtime-per-edge must not drift more than ``tolerance``."""
        if len(self.rows) < 2:
            return True
        per_edge = [sec / edges for edges, _n, sec in self.rows]
        lo, hi = min(per_edge), max(per_edge)
        return (hi - lo) / hi <= tolerance


def experiment_runtime_scaling(
    config: ScaleConfig = ScaleConfig(),
    edge_targets: Sequence[int] = (30_000, 60_000, 90_000, 120_000),
    sample_fraction: float = 0.01,
    seed: int = 5,
) -> RuntimeScalingResult:
    """Figure 9: linear scaling of sampled BC over random subgraphs."""
    lake = generate_scale_lake(config)
    index = HomographIndex(lake)
    subgraphs = extract_subgraphs(
        index.graph, list(edge_targets), seed=seed
    )

    rows = []
    for graph in subgraphs:
        samples = max(10, int(graph.num_nodes * sample_fraction))
        start = time.perf_counter()
        betweenness_scores(graph, sample_size=samples, seed=seed)
        elapsed = time.perf_counter() - start
        rows.append((graph.num_edges, graph.num_nodes, elapsed))
    return RuntimeScalingResult(rows=rows, sample_fraction=sample_fraction)


# ---------------------------------------------------------------------
# Figure 10 — impact of injected homographs on D4
# ---------------------------------------------------------------------
@dataclass
class D4ImpactResult:
    baseline_domains: int
    baseline_max_per_column: int
    baseline_avg_per_column: float
    rows: List[Tuple[int, int, int, int, float]]
    # (num_injected, meanings, domains, max/col, avg/col)

    def format(self) -> str:
        lines = [
            "D4 on TUS-I vs injected homographs "
            "(domains found; max / avg domains per column)",
            f"  no injections: {self.baseline_domains} domains, "
            f"max={self.baseline_max_per_column}, "
            f"avg={self.baseline_avg_per_column:.3f}",
        ]
        for n, m, domains, max_c, avg_c in self.rows:
            lines.append(
                f"  inject {n:>4d} x {m} meanings: {domains} domains, "
                f"max={max_c}, avg={avg_c:.3f}"
            )
        return "\n".join(lines)


def experiment_d4_impact(
    tus: Optional[TUSDataset] = None,
    injection_counts: Sequence[int] = (50, 100, 150, 200),
    meanings: Sequence[int] = (2, 4, 6),
    d4_config: D4Config = D4Config(trim_variant="centrist"),
) -> D4ImpactResult:
    """Figure 10: domain discovery degrades as homographs are injected.

    Uses the centrist trimming variant, which is sensitive to the
    signature perturbation injected homographs cause (see DESIGN.md).
    """
    tus = tus or generate_tus(TUSConfig.small(seed=3))
    clean, groups = remove_homographs(tus)

    baseline = run_d4(clean, d4_config)
    rows = []
    for m in meanings:
        for n in injection_counts:
            injected = inject_homographs(
                clean, groups,
                InjectionConfig(num_homographs=n, meanings=m, seed=1),
            )
            result = run_d4(injected.lake, d4_config)
            rows.append((
                n, m, result.num_domains,
                result.max_domains_per_column(),
                result.avg_domains_per_column(),
            ))
    return D4ImpactResult(
        baseline_domains=baseline.num_domains,
        baseline_max_per_column=baseline.max_domains_per_column(),
        baseline_avg_per_column=baseline.avg_domains_per_column(),
        rows=rows,
    )
