"""TUS-I: homograph removal and controlled injection — §4.3 of the paper.

The paper builds TUS-I in two steps:

1. **Remove** all natural homographs from the TUS lake, so the lake
   contains only unambiguous values.  We disambiguate rather than
   delete: every occurrence of a homograph is rewritten to
   ``"<value>@<domain>"`` in each unionability group, which preserves
   table shapes and attribute cardinalities while making each rewritten
   value single-meaning.  (The paper does not specify its mechanism;
   this choice keeps the graph structurally comparable, see DESIGN.md.)

2. **Inject** artificial homographs with controlled properties: pick
   ``meanings`` unambiguous string values (>= 3 characters) from that
   many *different* domains, optionally requiring a minimum cardinality
   for the replaced values, and replace every occurrence of all of them
   with a fresh token ``InjectedHomographK``.  The injected token then
   has exactly ``meanings`` meanings.

Cardinality of a replaced value follows the paper's definition |N(v)|
via a sound lower bound: a value qualifies for threshold ``c`` when
some attribute containing it has more than ``c`` distinct values (its
co-occurrence set is at least that attribute's size minus one).

:func:`forge_homoglyphs` is the *adversarial* counterpart of step 2:
rather than merging values into one exact-match token, it rewrites
chosen unambiguous values into Unicode-confusable variants of an
untouched anchor value from another domain (``repro.core.confusables``),
planting collisions that only a skeleton-aware pipeline can see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.confusables import STYLES, skeleton, substitutions
from ..core.normalize import normalize_value
from ..datalake.lake import DataLake
from ..datalake.table import Table
from .ground_truth import LakeGroundTruth, label_lake
from .tus import TUSDataset


class InjectionError(ValueError):
    """Raised when the requested injection cannot be satisfied."""


@dataclass(frozen=True)
class InjectionConfig:
    """Parameters of one injection run (Table 2 / Table 3 sweeps)."""

    num_homographs: int = 50
    meanings: int = 2
    min_cardinality: int = 0
    min_value_length: int = 3
    seed: int = 0


@dataclass
class InjectedLake:
    """A TUS-I lake with injected homographs and their ground truth."""

    lake: DataLake
    attribute_groups: Dict[str, str]
    injected_values: List[str]  # normalized injected tokens
    replaced: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)

    @property
    def injected_set(self) -> Set[str]:
        return set(self.injected_values)


def remove_homographs(dataset: TUSDataset) -> Tuple[DataLake, Dict[str, str]]:
    """Disambiguate every natural homograph out of a TUS-like lake.

    Returns the clean lake and its attribute->group mapping.  The clean
    lake is verified to contain no homographs under Definition 2.
    """
    homographs = dataset.homographs
    groups = dataset.ground_truth.attribute_groups
    clean = DataLake()
    for table in dataset.lake:
        new_columns: Dict[str, List[str]] = {}
        for column in table.iter_columns():
            domain = groups[column.qualified_name]
            cells = [
                _disambiguate(cell, domain)
                if normalize_value(cell) in homographs else cell
                for cell in column.values
            ]
            new_columns[column.name] = cells
        clean.add_table(Table.from_columns(table.name, new_columns))

    check = label_lake(clean, groups)
    if check.homographs:
        leftover = sorted(check.homographs)[:5]
        raise InjectionError(f"homographs survived removal: {leftover}")
    return clean, dict(groups)


def _disambiguate(cell: str, domain: str) -> str:
    return f"{cell}@{domain}"


def inject_homographs(
    lake: DataLake,
    attribute_groups: Dict[str, str],
    config: InjectionConfig = InjectionConfig(),
) -> InjectedLake:
    """Inject artificial homographs into a homograph-free lake.

    The input lake is not modified; a rewritten copy is returned.
    """
    if config.meanings < 2:
        raise InjectionError("an injected homograph needs >= 2 meanings")
    if config.num_homographs < 1:
        raise InjectionError("num_homographs must be positive")

    rng = np.random.default_rng(config.seed)
    candidates = _candidates_by_domain(lake, attribute_groups, config)
    domains = sorted(d for d, values in candidates.items() if values)
    if len(domains) < config.meanings:
        raise InjectionError(
            f"only {len(domains)} domains have eligible values; "
            f"{config.meanings} meanings requested"
        )

    used: Set[str] = set()
    replaced: Dict[str, List[Tuple[str, str]]] = {}
    replacement_map: Dict[str, str] = {}  # normalized original -> token
    for k in range(1, config.num_homographs + 1):
        token = f"InjectedHomograph{k}"
        chosen = _choose_one_group(rng, candidates, domains, config, used)
        replaced[normalize_value(token)] = chosen
        for value, _domain in chosen:
            used.add(value)
            replacement_map[value] = token

    new_lake = _apply_replacements(lake, replacement_map)
    return InjectedLake(
        lake=new_lake,
        attribute_groups=dict(attribute_groups),
        injected_values=[
            normalize_value(f"InjectedHomograph{k}")
            for k in range(1, config.num_homographs + 1)
        ],
        replaced=replaced,
    )


def _candidates_by_domain(
    lake: DataLake,
    attribute_groups: Dict[str, str],
    config: InjectionConfig,
) -> Dict[str, List[List[str]]]:
    """Eligible replacement values per domain, grouped by attribute.

    The paper varies "the minimum allowed cardinality of the attributes
    containing values replaced", so selection is *column-first*: only
    attributes with more than ``min_cardinality`` distinct values
    qualify, and each qualifying attribute contributes its own pool.
    Drawing a column uniformly and then a value inside it covers the
    whole attribute-size spectrum — at threshold 0 the median column is
    small, which is what makes the Table 2 trend visible.

    A value is eligible when it is a string of at least
    ``min_value_length`` characters and not purely numeric.
    """
    eligible: Dict[str, List[List[str]]] = {}
    for column in lake.iter_attributes():
        domain = attribute_groups[column.qualified_name]
        distinct = column.distinct_values()
        if len(distinct) - 1 < config.min_cardinality:
            continue
        pool = []
        for raw in distinct:
            value = normalize_value(raw)
            if len(value) < config.min_value_length:
                continue
            if _is_numeric(value):
                continue
            pool.append(value)
        if pool:
            eligible.setdefault(domain, []).append(sorted(set(pool)))
    return eligible


def _is_numeric(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


def _choose_one_group(
    rng: np.random.Generator,
    candidates: Dict[str, List[List[str]]],
    domains: List[str],
    config: InjectionConfig,
    used: Set[str],
) -> List[Tuple[str, str]]:
    """Pick ``meanings`` fresh values from that many distinct domains.

    Within each domain a qualifying attribute is drawn uniformly, then a
    value inside it (column-first sampling, see above).
    """
    order = rng.permutation(len(domains))
    chosen: List[Tuple[str, str]] = []
    for d in order:
        domain = domains[int(d)]
        pools = candidates[domain]
        pool = pools[int(rng.integers(0, len(pools)))]
        available = [v for v in pool if v not in used]
        if not available:
            # Fall back to any unused value of the domain.
            available = sorted(
                {v for p in pools for v in p if v not in used}
            )
        if not available:
            continue
        value = available[int(rng.integers(0, len(available)))]
        chosen.append((value, domain))
        if len(chosen) == config.meanings:
            return chosen
    raise InjectionError(
        f"could not find {config.meanings} unused values in distinct "
        f"domains (cardinality >= {config.min_cardinality})"
    )


def _apply_replacements(
    lake: DataLake, replacement_map: Dict[str, str]
) -> DataLake:
    """Rewrite every cell whose normalized form is a replaced value."""
    new_lake = DataLake()
    for table in lake:
        rows = [
            [
                replacement_map.get(normalize_value(cell), cell)
                for cell in row
            ]
            for row in table.rows
        ]
        new_lake.add_table(
            Table(name=table.name, columns=list(table.columns), rows=rows)
        )
    return new_lake


@dataclass(frozen=True)
class ForgeConfig:
    """Parameters of one homoglyph-forging run.

    ``num_forgeries`` skeleton-level collisions are planted; each one
    keeps an untouched *anchor* value and rewrites ``meanings - 1``
    other unambiguous values (each from a different domain than the
    anchor's) into confusable variants of it.  ``min_occurrences``
    keeps every replaced value — and therefore its variant — above the
    detector's default occurrence pruning.  ``styles`` restricts the
    substitution menu to a subset of
    :data:`repro.core.confusables.STYLES`.
    """

    num_forgeries: int = 10
    meanings: int = 2
    min_cardinality: int = 0
    min_value_length: int = 4
    min_occurrences: int = 2
    styles: Tuple[str, ...] = STYLES
    seed: int = 0


@dataclass(frozen=True)
class Forgery:
    """Provenance of one forged confusable variant.

    ``variant`` is the normalized forged value as it now appears in
    the lake; it visually imitates ``source`` (the untouched anchor)
    and physically replaced every occurrence of ``replaced`` (an
    unambiguous value from ``domain``) using the named substitution
    ``style``.
    """

    variant: str
    source: str
    replaced: str
    domain: str
    style: str


@dataclass
class ForgedLake:
    """A homoglyph-forged lake plus its exact ground truth."""

    lake: DataLake
    attribute_groups: Dict[str, str]
    forgeries: List[Forgery]

    @property
    def forged_values(self) -> List[str]:
        """The planted variants (normalized), in planting order."""
        return [forgery.variant for forgery in self.forgeries]

    @property
    def forged_set(self) -> Set[str]:
        """The planted variants as a set."""
        return set(self.forged_values)

    @property
    def anchors(self) -> Set[str]:
        """The untouched values the variants imitate."""
        return {forgery.source for forgery in self.forgeries}

    @property
    def targets(self) -> Set[str]:
        """Every member of a forged collision: anchors plus variants."""
        return self.anchors | self.forged_set

    def to_manifest(self) -> Dict[str, object]:
        """JSON-safe ground-truth record (for ``domainnet forge``)."""
        return {
            "forgeries": [
                {
                    "variant": forgery.variant,
                    "source": forgery.source,
                    "replaced": forgery.replaced,
                    "domain": forgery.domain,
                    "style": forgery.style,
                }
                for forgery in self.forgeries
            ],
        }


def forge_homoglyphs(
    lake: DataLake,
    attribute_groups: Dict[str, str],
    config: ForgeConfig = ForgeConfig(),
    exclude: Optional[Set[str]] = None,
) -> ForgedLake:
    """Plant confusable-skeleton collisions into a lake.

    The adversarial counterpart of :func:`inject_homographs`: instead
    of merging values into one exact-match token, each forgery keeps an
    anchor value untouched and rewrites every occurrence of
    ``meanings - 1`` other unambiguous values (each from a distinct,
    non-anchor domain) into fresh confusable variants of the anchor —
    distinct under exact normalization, identical under
    :func:`repro.core.confusables.skeleton`.  The exact-match pipeline
    sees only new low-centrality values; the skeleton quotient sees a
    cross-domain homograph.

    Anchors and replaced values are drawn from values that are their
    own skeleton and whose skeleton class is a singleton, so the
    emitted ground truth labels exactly the planted collisions.
    ``exclude`` removes values (normalized) from consideration — e.g.
    SB's planted natural homographs.  The input lake is not modified.
    """
    if config.meanings < 2:
        raise InjectionError("a forged collision needs >= 2 meanings")
    if config.num_forgeries < 1:
        raise InjectionError("num_forgeries must be positive")
    unknown_styles = sorted(set(config.styles) - set(STYLES))
    if not config.styles or unknown_styles:
        raise InjectionError(
            f"styles must be a non-empty subset of {STYLES}; "
            f"got {config.styles!r}"
        )

    rng = np.random.default_rng(config.seed)
    taken, skeleton_counts = _lake_value_census(lake)
    candidates = _forge_candidates(
        lake, attribute_groups, config, skeleton_counts, exclude or set()
    )
    domains = sorted(d for d, values in candidates.items() if values)
    if len(domains) < config.meanings:
        raise InjectionError(
            f"only {len(domains)} domains have eligible values; "
            f"{config.meanings} meanings requested"
        )

    used: Set[str] = set()
    forgeries: List[Forgery] = []
    replacement_map: Dict[str, str] = {}
    for _ in range(config.num_forgeries):
        chosen = _choose_one_group(rng, candidates, domains, config, used)
        for value, _domain in chosen:
            used.add(value)
        # Any member of the group can anchor; try each until one has
        # enough unused variants for all its siblings (relevant for
        # narrow style menus like styles=("leet",)).
        planted: List[Forgery] = []
        for j in range(len(chosen)):
            anchor, _anchor_domain = chosen[j]
            planted = []
            minted: Set[str] = set()
            for value, domain in chosen[:j] + chosen[j + 1 :]:
                forged = _make_variant(
                    anchor, rng, config.styles, taken | minted
                )
                if forged is None:
                    planted = []
                    break
                variant, style = forged
                minted.add(variant)
                planted.append(
                    Forgery(
                        variant=variant,
                        source=anchor,
                        replaced=value,
                        domain=domain,
                        style=style,
                    )
                )
            if planted:
                break
        if not planted:
            raise InjectionError(
                f"no confusable variants available for any of "
                f"{[value for value, _ in chosen]!r} under styles "
                f"{config.styles!r}"
            )
        for forgery in planted:
            taken.add(forgery.variant)
            replacement_map[forgery.replaced] = forgery.variant
            forgeries.append(forgery)

    return ForgedLake(
        lake=_apply_replacements(lake, replacement_map),
        attribute_groups=dict(attribute_groups),
        forgeries=forgeries,
    )


def _lake_value_census(
    lake: DataLake,
) -> Tuple[Set[str], Dict[str, int]]:
    """Distinct normalized values and the size of each skeleton class."""
    values: Set[str] = set()
    for column in lake.iter_attributes():
        for raw in column.distinct_values():
            value = normalize_value(raw)
            if value:
                values.add(value)
    skeleton_counts: Dict[str, int] = {}
    for value in values:
        skel = skeleton(value)
        skeleton_counts[skel] = skeleton_counts.get(skel, 0) + 1
    return values, skeleton_counts


def _forge_candidates(
    lake: DataLake,
    attribute_groups: Dict[str, str],
    config: ForgeConfig,
    skeleton_counts: Dict[str, int],
    exclude: Set[str],
) -> Dict[str, List[List[str]]]:
    """Column-first candidate pools for anchors and replaced values.

    On top of the injection rules (string, long enough, non-numeric,
    qualifying attribute cardinality), forging needs values that are
    their own skeleton with a singleton skeleton class — otherwise the
    planted collision would tangle with a pre-existing one and the
    ground truth would stop being exact — and at least
    ``min_occurrences`` cell occurrences, so the variant inheriting
    them survives the detector's occurrence pruning.
    """
    occurrences: Dict[str, int] = {}
    for column in lake.iter_attributes():
        for raw in column.values:
            value = normalize_value(raw)
            if value:
                occurrences[value] = occurrences.get(value, 0) + 1

    eligible: Dict[str, List[List[str]]] = {}
    for column in lake.iter_attributes():
        domain = attribute_groups[column.qualified_name]
        distinct = column.distinct_values()
        if len(distinct) - 1 < config.min_cardinality:
            continue
        pool = []
        for raw in distinct:
            value = normalize_value(raw)
            if len(value) < config.min_value_length:
                continue
            if _is_numeric(value):
                continue
            if value in exclude:
                continue
            if occurrences.get(value, 0) < config.min_occurrences:
                continue
            if skeleton(value) != value or skeleton_counts[value] != 1:
                continue
            pool.append(value)
        if pool:
            eligible.setdefault(domain, []).append(sorted(set(pool)))
    return eligible


def _make_variant(
    anchor: str,
    rng: np.random.Generator,
    styles: Sequence[str],
    taken: Set[str],
) -> Optional[Tuple[str, str]]:
    """One fresh confusable variant of ``anchor``, or ``None``.

    Tries the styles in a seeded random order; within a style, a
    random substitutable position and its lookalikes.  The result is
    guaranteed to be normalization-stable, distinct from every value
    in ``taken``, and to fold back to ``skeleton(anchor)``.
    """
    for s in rng.permutation(len(styles)):
        style = styles[int(s)]
        menu = substitutions(style)
        if style == "leet":
            # Mirror the skeleton's positional rule: only digits
            # flanked by ASCII letters fold back.
            positions = [
                i
                for i in range(1, len(anchor) - 1)
                if anchor[i] in menu
                and "A" <= anchor[i - 1] <= "Z"
                and "A" <= anchor[i + 1] <= "Z"
            ]
        else:
            positions = [
                i for i, ch in enumerate(anchor) if ch in menu
            ]
        if not positions:
            continue
        for p in rng.permutation(len(positions)):
            i = positions[int(p)]
            for lookalike in menu[anchor[i]]:
                variant = anchor[:i] + lookalike + anchor[i + 1 :]
                if variant in taken:
                    continue
                if normalize_value(variant) != variant:
                    continue
                if skeleton(variant) != skeleton(anchor):
                    continue
                return variant, style
    return None


def injection_recovery(
    injected: InjectedLake,
    ranked_values: Sequence[str],
    k: int = None,
) -> float:
    """Fraction of injected homographs in the top-k of a ranking.

    This is the measurement of Tables 2 and 3: with 50 injected
    homographs, "% of injected homographs in top 50".  ``k`` defaults
    to the number of injected values.
    """
    targets = injected.injected_set
    if k is None:
        k = len(targets)
    top = set(ranked_values[:k])
    return len(top & targets) / len(targets)
