"""The Synthetic Benchmark (SB) generator — §4.1 of the paper.

Thirteen real-world-inspired tables, 1000 rows each except ``countries``
(193 rows, the UN members) and ``us_states`` (50 rows), with exactly 55
planted homographs, each having two meanings.  The paper generated SB
with Mockaroo; this generator reproduces its *structure* offline from
the vocabularies in :mod:`repro.bench.vocab`:

* homograph classes match the paper's examples — Sydney (city / first
  name), Jamaica (city / country), Lincoln (car / city), CA (country
  code / state abbreviation), Pumpkin (grocery / movie title), …;
* the two small tables (countries, states) create the small-domain
  abbreviation homographs whose near-zero betweenness the paper's
  Figure 6 analyses;
* every other value appears under a single semantic type.

Numeric columns use mutually disjoint formats/ranges so they cannot
collide across types; generation *verifies* afterwards that the set of
homographs computed from the lake equals the planted set exactly and
raises :class:`GenerationError` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..datalake.lake import DataLake
from ..datalake.table import Table
from . import wordlists as words
from .ground_truth import LakeGroundTruth, label_lake
from .vocab import (
    PLANTED_HOMOGRAPHS,
    Vocabulary,
    build_vocabularies,
)


class GenerationError(RuntimeError):
    """Raised when a generated benchmark violates its own ground truth."""


@dataclass(frozen=True)
class SBConfig:
    """Knobs for the SB generator.

    ``rows`` scales the large tables (the paper uses 1000); countries
    and states always keep their real-world sizes of 193 and 50.

    ``coverage`` controls what fraction of a type's vocabulary each
    individual column samples from.  Mockaroo columns of the same
    category only partially overlap across tables; that partial overlap
    is what creates the low-LCC *unambiguous* values dominating the
    paper's Figure 5.  ``1.0`` would make same-type columns saturate
    their vocabulary and LCC artificially clean.
    """

    rows: int = 1000
    seed: int = 0
    coverage: float = 0.55


@dataclass
class SBDataset:
    """The generated lake plus its ground truth."""

    lake: DataLake
    ground_truth: LakeGroundTruth

    @property
    def homographs(self):
        return self.ground_truth.homographs


# Semantic type of every attribute, keyed by "table.column".  These
# types double as the unionability groups for ground-truth labeling.
SB_ATTRIBUTE_TYPES: Dict[str, str] = {
    "countries.country": "country_name",
    "countries.code": "country_code",
    "countries.capital": "city",
    "us_states.state": "state_name",
    "us_states.abbreviation": "state_abbr",
    "world_cities.city": "city",
    "world_cities.country": "country_name",
    "world_cities.population": "num_population",
    "people.first_name": "first_name",
    "people.last_name": "last_name",
    "people.email": "email",
    "people.city": "city",
    "zoo_inventory.animal": "animal",
    "zoo_inventory.zoo_city": "city",
    "zoo_inventory.count": "num_count",
    "endangered_sponsors.donor_company": "company",
    "endangered_sponsors.species": "animal",
    "endangered_sponsors.donation": "num_donation",
    "car_models.model": "car_model",
    "car_models.manufacturer": "company",
    "car_models.origin_country": "country_name",
    "companies.company": "company",
    "companies.revenue": "num_revenue",
    "companies.employees": "num_employees",
    "movies.title": "movie_title",
    "movies.genre": "genre",
    "movies.year": "num_year",
    "groceries.product": "grocery",
    "groceries.category": "grocery_category",
    "groceries.price": "num_grocery_price",
    "plants.common_name": "plant",
    "plants.scientific_name": "sci_name",
    "plants.family": "plant_family",
    "employees.first_name": "first_name",
    "employees.department": "department",
    "employees.salary": "num_salary",
    "stocks.ticker": "ticker",
    "stocks.company_name": "company",
    "stocks.price": "num_stock_price",
}

# Where each planted homograph is force-inserted (one column per type).
# The enumerated tables (countries, us_states) contain their planted
# values by construction and need no forcing.
_FORCED_COLUMNS: Dict[str, str] = {
    "city": "world_cities.city",
    "first_name": "people.first_name",
    "last_name": "people.last_name",
    "animal": "zoo_inventory.animal",
    "company": "companies.company",
    "car_model": "car_models.model",
    "grocery": "groceries.product",
    "movie_title": "movies.title",
}


def generate_sb(config: SBConfig = SBConfig()) -> SBDataset:
    """Generate the SB lake and its verified ground truth."""
    rng = np.random.default_rng(config.seed)
    vocabs = build_vocabularies()
    rows = config.rows

    def pick(type_name: str, n: int) -> List[str]:
        """Sample one column: a fresh vocabulary subset, then n draws.

        Each column sees only ``coverage`` of its type's vocabulary, so
        same-type columns across tables overlap partially — the
        structure responsible for the paper's LCC noise (Figure 5).
        """
        values = vocabs[type_name].values
        subset_size = max(1, int(len(values) * config.coverage))
        subset = rng.choice(values, size=subset_size, replace=False)
        return list(rng.choice(subset, size=n, replace=True))

    lake = DataLake()

    lake.add_table(Table.from_columns("countries", {
        "country": [c for c, _ in words.COUNTRIES_WITH_CODES],
        "code": [code for _, code in words.COUNTRIES_WITH_CODES],
        "capital": pick("city", len(words.COUNTRIES_WITH_CODES)),
    }))

    lake.add_table(Table.from_columns("us_states", {
        "state": [s for s, _ in words.US_STATES_WITH_ABBR],
        "abbreviation": [a for _, a in words.US_STATES_WITH_ABBR],
    }))

    lake.add_table(Table.from_columns("world_cities", {
        "city": pick("city", rows),
        "country": pick("country_name", rows),
        "population": _populations(rng, rows),
    }))

    first_names = pick("first_name", rows)
    last_names = pick("last_name", rows)
    lake.add_table(Table.from_columns("people", {
        "first_name": first_names,
        "last_name": last_names,
        "email": _emails(first_names, last_names),
        "city": pick("city", rows),
    }))

    lake.add_table(Table.from_columns("zoo_inventory", {
        "animal": pick("animal", rows),
        "zoo_city": pick("city", rows),
        "count": [str(int(v)) for v in rng.integers(1, 100, size=rows)],
    }))

    lake.add_table(Table.from_columns("endangered_sponsors", {
        "donor_company": pick("company", rows),
        "species": pick("animal", rows),
        "donation": [
            f"{v:.2f}M" for v in rng.uniform(0.1, 99.99, size=rows)
        ],
    }))

    lake.add_table(Table.from_columns("car_models", {
        "model": pick("car_model", rows),
        "manufacturer": pick("company", rows),
        "origin_country": pick("country_name", rows),
    }))

    lake.add_table(Table.from_columns("companies", {
        "company": pick("company", rows),
        "revenue": [
            f"{v:.2f}" for v in rng.uniform(100.0, 999999.0, size=rows)
        ],
        "employees": [
            str(int(v)) for v in rng.integers(10000, 1000000, size=rows)
        ],
    }))

    lake.add_table(Table.from_columns("movies", {
        "title": pick("movie_title", rows),
        "genre": pick("genre", rows),
        "year": [str(int(v)) for v in rng.integers(1900, 2024, size=rows)],
    }))

    lake.add_table(Table.from_columns("groceries", {
        "product": pick("grocery", rows),
        "category": pick("grocery_category", rows),
        "price": [f"${v:.2f}" for v in rng.uniform(0.5, 99.99, size=rows)],
    }))

    lake.add_table(Table.from_columns("plants", {
        "common_name": pick("plant", rows),
        "scientific_name": pick("sci_name", rows),
        "family": pick("plant_family", rows),
    }))

    lake.add_table(Table.from_columns("employees", {
        "first_name": pick("first_name", rows),
        "department": pick("department", rows),
        "salary": [
            f"${int(v):,}" for v in rng.integers(30000, 250000, size=rows)
        ],
    }))

    lake.add_table(Table.from_columns("stocks", {
        "ticker": pick("ticker", rows),
        "company_name": pick("company", rows),
        "price": [f"{v:.2f}" for v in rng.uniform(1.0, 99.99, size=rows)],
    }))

    _force_planted_values(lake, vocabs)

    truth = label_lake(lake, SB_ATTRIBUTE_TYPES)
    _verify_ground_truth(truth)
    return SBDataset(lake=lake, ground_truth=truth)


def _force_planted_values(
    lake: DataLake, vocabs: Dict[str, Vocabulary]
) -> None:
    """Guarantee every planted homograph occurs on both of its sides.

    Sampling with replacement makes presence likely but not certain;
    each planted value is written into a dedicated row of its type's
    designated column (sequential rows, so placements never collide).
    """
    slot_per_column: Dict[str, int] = {}
    for norm_value in sorted(PLANTED_HOMOGRAPHS):
        type_a, type_b = PLANTED_HOMOGRAPHS[norm_value]
        for type_name in (type_a, type_b):
            column = _FORCED_COLUMNS.get(type_name)
            if column is None:
                continue  # enumerated tables already contain the value
            raw_value = _raw_form(vocabs[type_name], norm_value)
            table_name, column_name = column.split(".", 1)
            table = lake.table(table_name)
            col_idx = table.columns.index(column_name)
            row = slot_per_column.get(column, 0)
            slot_per_column[column] = row + 1
            table.rows[row][col_idx] = raw_value


def _raw_form(vocab: Vocabulary, normalized: str) -> str:
    """Find the raw (cased) vocabulary entry for a normalized value."""
    from ..core.normalize import normalize_value

    for value in vocab.values:
        if normalize_value(value) == normalized:
            return value
    raise GenerationError(
        f"{normalized!r} not in vocabulary {vocab.type_name!r}"
    )


def _verify_ground_truth(truth: LakeGroundTruth) -> None:
    """The generated lake must contain exactly the 55 planted homographs."""
    planted = set(PLANTED_HOMOGRAPHS)
    if truth.homographs != planted:
        extra = sorted(truth.homographs - planted)[:10]
        missing = sorted(planted - truth.homographs)[:10]
        raise GenerationError(
            "SB ground truth mismatch: "
            f"unexpected homographs {extra}, missing {missing}"
        )
    wrong = {
        v: truth.meanings[v]
        for v in planted
        if truth.meanings.get(v) != 2
    }
    if wrong:
        raise GenerationError(f"planted homographs with #M != 2: {wrong}")


def _populations(rng: np.random.Generator, n: int) -> List[str]:
    """Comma-formatted populations (disjoint from all other numerics)."""
    return [f"{int(v):,}" for v in rng.integers(1_000_000, 20_000_000, size=n)]


def _emails(first_names: Sequence[str], last_names: Sequence[str]) -> List[str]:
    """Unique row-correlated emails."""
    emails = []
    for i, (first, last) in enumerate(zip(first_names, last_names)):
        domain = words.EMAIL_DOMAINS[i % len(words.EMAIL_DOMAINS)]
        local_first = first.split()[0].lower().replace("'", "")
        local_last = last.split()[0].lower().replace("'", "")
        emails.append(f"{local_first}.{local_last}{i}@{domain}")
    return emails
