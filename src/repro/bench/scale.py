"""Scalability substrate — the NYC-education-style lake of §5.4.

The paper's scalability study uses the NYC education open-data lake
(201 tables, ~3.5k attributes, ~1.5M distinct values, bipartite graph
of ~1.5M nodes and ~2.3M edges).  That corpus is not available offline,
so this module generates a parametric stand-in with the same growth
characteristics: many tables over a large identifier-heavy vocabulary,
so node and edge counts scale linearly with the configured size.

It also implements the footnote-9 subgraph extraction used for
Figure 9: "randomly selecting an attribute node and adding all its
connecting value nodes, repeating until the subgraph reaches the
desired size".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.graph import BipartiteGraph
from ..datalake.lake import DataLake
from ..datalake.table import Table


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs for the scalability lake.

    ``ScaleConfig()`` is CI-sized; ``ScaleConfig.nyc()`` approaches the
    paper's 1.5M-value corpus (takes minutes to generate and more to
    analyze — intended for the full reproduction run only).
    """

    num_tables: int = 40
    columns_per_table: int = 8
    rows_per_table: int = 400
    shared_vocabulary: int = 4000
    unique_fraction: float = 0.35
    seed: int = 0

    @classmethod
    def nyc(cls) -> "ScaleConfig":
        return cls(
            num_tables=201,
            columns_per_table=17,
            rows_per_table=6000,
            shared_vocabulary=300_000,
            unique_fraction=0.55,
        )


def generate_scale_lake(config: ScaleConfig = ScaleConfig()) -> DataLake:
    """Generate an identifier-heavy lake for runtime measurements.

    Each column mixes draws from a big shared vocabulary (creating the
    cross-attribute edges) with per-column unique identifiers (the bulk
    of an open-data lake's values — record ids, timestamps, free text).
    Ground truth is irrelevant here; only graph size and shape matter.
    """
    rng = np.random.default_rng(config.seed)
    lake = DataLake()
    unique_counter = 0

    for t in range(config.num_tables):
        columns = {}
        for c in range(config.columns_per_table):
            n = config.rows_per_table
            num_unique = int(n * config.unique_fraction)
            shared = rng.integers(0, config.shared_vocabulary,
                                  size=n - num_unique)
            cells = [f"tok{int(v)}" for v in shared]
            cells.extend(
                f"uid{unique_counter + i}" for i in range(num_unique)
            )
            unique_counter += num_unique
            rng.shuffle(cells)
            columns[f"c{c}"] = cells
        lake.add_table(Table.from_columns(f"table{t:04d}", columns))
    return lake


def extract_subgraphs(
    graph: BipartiteGraph,
    edge_targets: List[int],
    seed: Optional[int] = None,
) -> List[BipartiteGraph]:
    """Footnote-9 extraction: grow subgraphs to given edge counts.

    For each target, attribute nodes are drawn at random and added with
    all of their value nodes until the edge count reaches the target
    (within whatever margin the last attribute adds).  Subgraphs are
    grown independently, largest target last, all from the same
    attribute permutation so they nest like the paper's.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_attributes) + graph.num_values

    results = []
    for target in sorted(edge_targets):
        if target <= 0:
            raise ValueError("edge targets must be positive")
        chosen = []
        edges = 0
        for attr in order:
            chosen.append(int(attr))
            edges += graph.degree(int(attr))
            if edges >= target:
                break
        results.append(graph.subgraph_from_attributes(chosen))
    return results
