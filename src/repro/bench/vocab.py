"""Typed vocabularies with planted homographs.

Each benchmark column draws its values from a *typed vocabulary*
(``city``, ``animal``, ``company``, …).  Ground truth then follows the
paper's semantics: a value is a homograph iff it appears under two or
more different types.

Two invariants are enforced here:

1. **Planted intersections only.**  The 55 planted homographs of the SB
   benchmark are the only values shared between two vocabularies; every
   accidental cross-list collision in the raw word lists is scrubbed
   deterministically (the highest-priority type keeps the value).
2. **Exactly two meanings each.**  A planted value lives in exactly the
   two types of its registry entry, matching SB's ``#M = 2`` column in
   Table 1 of the paper.

Comparisons are made on *normalized* values (upper-cased), the same
notion of equality the DomainNet graph uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from ..core.normalize import normalize_value
from . import wordlists as words


class VocabularyError(ValueError):
    """Raised when vocabulary invariants cannot be established."""


@dataclass(frozen=True)
class Vocabulary:
    """A named, typed list of raw values (pre-normalization)."""

    type_name: str
    values: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.values)

    def normalized(self) -> Set[str]:
        return {normalize_value(v) for v in self.values}


# ---------------------------------------------------------------------
# The 55 planted homographs: normalized value -> (type_a, type_b).
# Group sizes: 21 + 9 + 1 + 6 + 6 + 4 + 3 + 4 + 1 = 55.
# ---------------------------------------------------------------------
PLANTED_HOMOGRAPHS: Dict[str, Tuple[str, str]] = {}

for _code in ("AL", "AR", "AZ", "CA", "CO", "DE", "GA", "ID", "IL", "IN",
              "LA", "MA", "MD", "ME", "MN", "MT", "NE", "PA", "SC", "SD",
              "TN"):
    PLANTED_HOMOGRAPHS[_code] = ("country_code", "state_abbr")

for _name in ("JAMAICA", "CUBA", "SINGAPORE", "MONACO", "LUXEMBOURG",
              "DJIBOUTI", "GUATEMALA", "PANAMA", "MEXICO"):
    PLANTED_HOMOGRAPHS[_name] = ("country_name", "city")

PLANTED_HOMOGRAPHS["GEORGIA"] = ("country_name", "state_name")

for _name in ("SYDNEY", "ODESSA", "SAVANNAH", "AURORA", "FLORENCE",
              "CHARLOTTE"):
    PLANTED_HOMOGRAPHS[_name] = ("first_name", "city")

for _name in ("LINCOLN", "ASPEN", "DAKOTA", "MALIBU", "TUCSON", "SEDONA"):
    PLANTED_HOMOGRAPHS[_name] = ("car_model", "city")

for _name in ("JAGUAR", "PUMA", "FOX", "LYNX"):
    PLANTED_HOMOGRAPHS[_name] = ("animal", "company")

for _name in ("RAM", "MUSTANG", "IMPALA"):
    PLANTED_HOMOGRAPHS[_name] = ("animal", "car_model")

for _name in ("PUMPKIN", "CHOCOLATE", "BUTTER", "TOAST"):
    PLANTED_HOMOGRAPHS[_name] = ("grocery", "movie_title")

PLANTED_HOMOGRAPHS["BERKELEY"] = ("last_name", "city")

# Scrub priority: when an *unplanned* collision occurs, the value stays
# in the type listed earliest here and is removed from the others.
TYPE_PRIORITY = [
    "country_name", "country_code", "state_name", "state_abbr", "city",
    "first_name", "last_name", "animal", "company", "car_model",
    "grocery", "grocery_category", "movie_title", "genre", "plant",
    "plant_family", "sci_name", "department", "ticker",
]


def _movie_titles() -> List[str]:
    """Combinatorial movie titles plus the planted standalone ones.

    Patterns are chosen so combinatorial titles are always multi-word
    and cannot collide with plant names or groceries ("The Silent
    Garden", "Harbor of Shadows").
    """
    titles = list(words.MOVIE_STANDALONE_TITLES)
    for adj in words.MOVIE_ADJECTIVES:
        for noun in words.MOVIE_NOUNS:
            titles.append(f"The {adj} {noun}")
    for noun in words.MOVIE_NOUNS:
        for other in words.MOVIE_NOUNS:
            if noun != other:
                titles.append(f"{noun} of {other}s")
    return titles


def _plant_names() -> List[str]:
    """Two-word common plant names, Figure 6 style ("Hairy Grama")."""
    return [
        f"{adj} {noun}"
        for adj in words.PLANT_ADJECTIVES
        for noun in words.PLANT_NOUNS
    ]


def _scientific_names() -> List[str]:
    return [
        f"{genus} {epithet}"
        for genus in words.LATIN_GENERA
        for epithet in words.LATIN_EPITHETS
    ]


def _groceries() -> List[str]:
    """Bare grocery bases plus modifier combinations."""
    products = list(words.GROCERY_BASES)
    for modifier in words.GROCERY_MODIFIERS:
        for base in words.GROCERY_BASES:
            products.append(f"{modifier} {base}")
    return products


def _tickers(count: int, blocked: Set[str]) -> List[str]:
    """Deterministic 4-letter tickers avoiding every other vocabulary."""
    alphabet = "BCDFGHJKLMNPQRSTVWXZ"  # consonant-heavy, email-safe
    tickers: List[str] = []
    i = 0
    while len(tickers) < count:
        a = alphabet[i % len(alphabet)]
        b = alphabet[(i // len(alphabet)) % len(alphabet)]
        c = alphabet[(i // len(alphabet) ** 2) % len(alphabet)]
        d = alphabet[(i // len(alphabet) ** 3) % len(alphabet)]
        candidate = f"{a}{b}{c}{d}"
        i += 1
        if candidate not in blocked:
            tickers.append(candidate)
    return tickers


def build_vocabularies() -> Dict[str, Vocabulary]:
    """Build every typed vocabulary with invariants enforced.

    Returns a mapping from type name to :class:`Vocabulary`.  Raises
    :class:`VocabularyError` if a planted homograph is missing from
    either of its two types after scrubbing.
    """
    raw: Dict[str, List[str]] = {
        "country_name": [c for c, _ in words.COUNTRIES_WITH_CODES],
        "country_code": [code for _, code in words.COUNTRIES_WITH_CODES],
        "state_name": [s for s, _ in words.US_STATES_WITH_ABBR],
        "state_abbr": [a for _, a in words.US_STATES_WITH_ABBR],
        "city": list(words.CITIES),
        "first_name": list(words.FIRST_NAMES),
        "last_name": list(words.LAST_NAMES),
        "animal": list(words.ANIMALS),
        "company": list(words.COMPANIES),
        "car_model": list(words.CAR_MODELS),
        "grocery": _groceries(),
        "grocery_category": list(words.GROCERY_CATEGORIES),
        "movie_title": _movie_titles(),
        "genre": list(words.MOVIE_GENRES),
        "plant": _plant_names(),
        "plant_family": list(words.PLANT_FAMILIES),
        "sci_name": _scientific_names(),
        "department": list(words.DEPARTMENTS),
    }

    scrubbed = _scrub_collisions(raw)

    blocked = set()
    for values in scrubbed.values():
        blocked.update(normalize_value(v) for v in values)
    scrubbed["ticker"] = _tickers(1200, blocked)

    vocabularies = {
        type_name: Vocabulary(type_name, tuple(values))
        for type_name, values in scrubbed.items()
    }
    validate_vocabularies(vocabularies)
    return vocabularies


def _scrub_collisions(raw: Mapping[str, List[str]]) -> Dict[str, List[str]]:
    """Remove unplanned cross-type collisions; keep planted pairs.

    Within-type duplicates are also dropped (first occurrence wins).
    """
    membership: Dict[str, Set[str]] = {}
    for type_name, values in raw.items():
        for value in values:
            membership.setdefault(normalize_value(value), set()).add(type_name)

    keep: Dict[str, Set[str]] = {}
    for norm, types in membership.items():
        if norm in PLANTED_HOMOGRAPHS:
            keep[norm] = set(PLANTED_HOMOGRAPHS[norm])
        elif len(types) > 1:
            winner = min(types, key=TYPE_PRIORITY.index)
            keep[norm] = {winner}
        else:
            keep[norm] = types

    out: Dict[str, List[str]] = {}
    for type_name, values in raw.items():
        seen: Set[str] = set()
        kept = []
        for value in values:
            norm = normalize_value(value)
            if type_name in keep[norm] and norm not in seen:
                seen.add(norm)
                kept.append(value)
        out[type_name] = kept
    return out


def validate_vocabularies(vocabularies: Mapping[str, Vocabulary]) -> None:
    """Assert the two vocabulary invariants; raise on violation."""
    normalized = {
        name: vocab.normalized() for name, vocab in vocabularies.items()
    }

    for value, (type_a, type_b) in PLANTED_HOMOGRAPHS.items():
        for type_name in (type_a, type_b):
            if type_name not in normalized:
                raise VocabularyError(
                    f"planted type {type_name!r} has no vocabulary"
                )
            if value not in normalized[type_name]:
                raise VocabularyError(
                    f"planted homograph {value!r} missing from {type_name!r}"
                )

    names = sorted(normalized)
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            overlap = normalized[name_a] & normalized[name_b]
            for value in overlap:
                planted = PLANTED_HOMOGRAPHS.get(value)
                if planted is None or set(planted) != {name_a, name_b}:
                    raise VocabularyError(
                        f"unplanned collision {value!r} between "
                        f"{name_a!r} and {name_b!r}"
                    )


def planted_homographs_normalized() -> Set[str]:
    """The 55 planted homograph values (normalized)."""
    return set(PLANTED_HOMOGRAPHS)


def planted_meanings() -> Dict[str, int]:
    """Number of meanings per planted homograph (always 2 in SB)."""
    return {value: 2 for value in PLANTED_HOMOGRAPHS}
