"""Curated word lists — the offline substitute for Mockaroo.

The paper's synthetic benchmark (SB, §4.1) was generated with Mockaroo,
a web service that samples realistic values per category.  This module
ships the raw vocabularies those categories need: countries with ISO
codes, US states, cities, person names, animals, companies, car models,
grocery and movie building blocks, and so on.

The *planted homographs* of the benchmark (values that legitimately
belong to two different categories, like ``Jaguar`` the animal and the
company, or ``CA`` the Canada code and the California abbreviation) are
deliberate intersections between these lists; every other cross-list
collision is scrubbed by :mod:`repro.bench.vocab` at build time.
"""

from __future__ import annotations

# ---------------------------------------------------------------------
# Countries: the 193 UN member states with ISO 3166-1 alpha-2 codes.
# 21 of these codes coincide with US state abbreviations (AL, AR, AZ,
# CA, CO, DE, GA, ID, IL, IN, LA, MA, MD, ME, MN, MT, NE, PA, SC, SD,
# TN) — those are the "abbreviation homographs" the paper's Figure 6
# discusses (the ones betweenness centrality misses).
# ---------------------------------------------------------------------
COUNTRIES_WITH_CODES = [
    ("Afghanistan", "AF"), ("Albania", "AL"), ("Algeria", "DZ"),
    ("Andorra", "AD"), ("Angola", "AO"), ("Antigua and Barbuda", "AG"),
    ("Argentina", "AR"), ("Armenia", "AM"), ("Australia", "AU"),
    ("Austria", "AT"), ("Azerbaijan", "AZ"), ("Bahamas", "BS"),
    ("Bahrain", "BH"), ("Bangladesh", "BD"), ("Barbados", "BB"),
    ("Belarus", "BY"), ("Belgium", "BE"), ("Belize", "BZ"),
    ("Benin", "BJ"), ("Bhutan", "BT"), ("Bolivia", "BO"),
    ("Bosnia and Herzegovina", "BA"), ("Botswana", "BW"),
    ("Brazil", "BR"), ("Brunei", "BN"), ("Bulgaria", "BG"),
    ("Burkina Faso", "BF"), ("Burundi", "BI"), ("Cabo Verde", "CV"),
    ("Cambodia", "KH"), ("Cameroon", "CM"), ("Canada", "CA"),
    ("Central African Republic", "CF"), ("Chad", "TD"), ("Chile", "CL"),
    ("China", "CN"), ("Colombia", "CO"), ("Comoros", "KM"),
    ("Congo", "CG"), ("Costa Rica", "CR"), ("Croatia", "HR"),
    ("Cuba", "CU"), ("Cyprus", "CY"), ("Czechia", "CZ"),
    ("North Korea", "KP"), ("DR Congo", "CD"), ("Denmark", "DK"),
    ("Djibouti", "DJ"), ("Dominica", "DM"), ("Dominican Republic", "DO"),
    ("Ecuador", "EC"), ("Egypt", "EG"), ("El Salvador", "SV"),
    ("Equatorial Guinea", "GQ"), ("Eritrea", "ER"), ("Estonia", "EE"),
    ("Eswatini", "SZ"), ("Ethiopia", "ET"), ("Fiji", "FJ"),
    ("Finland", "FI"), ("France", "FR"), ("Gabon", "GA"),
    ("Gambia", "GM"), ("Georgia", "GE"), ("Germany", "DE"),
    ("Ghana", "GH"), ("Greece", "GR"), ("Grenada", "GD"),
    ("Guatemala", "GT"), ("Guinea", "GN"), ("Guinea-Bissau", "GW"),
    ("Guyana", "GY"), ("Haiti", "HT"), ("Honduras", "HN"),
    ("Hungary", "HU"), ("Iceland", "IS"), ("India", "IN"),
    ("Indonesia", "ID"), ("Iran", "IR"), ("Iraq", "IQ"),
    ("Ireland", "IE"), ("Israel", "IL"), ("Italy", "IT"),
    ("Ivory Coast", "CI"), ("Jamaica", "JM"), ("Japan", "JP"),
    ("Jordan", "JO"), ("Kazakhstan", "KZ"), ("Kenya", "KE"),
    ("Kiribati", "KI"), ("Kuwait", "KW"), ("Kyrgyzstan", "KG"),
    ("Laos", "LA"), ("Latvia", "LV"), ("Lebanon", "LB"),
    ("Lesotho", "LS"), ("Liberia", "LR"), ("Libya", "LY"),
    ("Liechtenstein", "LI"), ("Lithuania", "LT"), ("Luxembourg", "LU"),
    ("Madagascar", "MG"), ("Malawi", "MW"), ("Malaysia", "MY"),
    ("Maldives", "MV"), ("Mali", "ML"), ("Malta", "MT"),
    ("Marshall Islands", "MH"), ("Mauritania", "MR"), ("Mauritius", "MU"),
    ("Mexico", "MX"), ("Micronesia", "FM"), ("Moldova", "MD"),
    ("Monaco", "MC"), ("Mongolia", "MN"), ("Montenegro", "ME"),
    ("Morocco", "MA"), ("Mozambique", "MZ"), ("Myanmar", "MM"),
    ("Namibia", "NA"), ("Nauru", "NR"), ("Nepal", "NP"),
    ("Netherlands", "NL"), ("New Zealand", "NZ"), ("Nicaragua", "NI"),
    ("Niger", "NE"), ("Nigeria", "NG"), ("North Macedonia", "MK"),
    ("Norway", "NO"), ("Oman", "OM"), ("Pakistan", "PK"),
    ("Palau", "PW"), ("Panama", "PA"), ("Papua New Guinea", "PG"),
    ("Paraguay", "PY"), ("Peru", "PE"), ("Philippines", "PH"),
    ("Poland", "PL"), ("Portugal", "PT"), ("Qatar", "QA"),
    ("South Korea", "KR"), ("Romania", "RO"), ("Russia", "RU"),
    ("Rwanda", "RW"), ("Saint Kitts and Nevis", "KN"),
    ("Saint Lucia", "LC"), ("Saint Vincent and the Grenadines", "VC"),
    ("Samoa", "WS"), ("San Marino", "SM"),
    ("Sao Tome and Principe", "ST"), ("Saudi Arabia", "SA"),
    ("Senegal", "SN"), ("Serbia", "RS"), ("Seychelles", "SC"),
    ("Sierra Leone", "SL"), ("Singapore", "SG"), ("Slovakia", "SK"),
    ("Slovenia", "SI"), ("Solomon Islands", "SB"), ("Somalia", "SO"),
    ("South Africa", "ZA"), ("South Sudan", "SS"), ("Spain", "ES"),
    ("Sri Lanka", "LK"), ("Sudan", "SD"), ("Suriname", "SR"),
    ("Sweden", "SE"), ("Switzerland", "CH"), ("Syria", "SY"),
    ("Tajikistan", "TJ"), ("Tanzania", "TZ"), ("Thailand", "TH"),
    ("Timor-Leste", "TL"), ("Togo", "TG"), ("Tonga", "TO"),
    ("Trinidad and Tobago", "TT"), ("Tunisia", "TN"), ("Turkey", "TR"),
    ("Turkmenistan", "TM"), ("Tuvalu", "TV"), ("Uganda", "UG"),
    ("Ukraine", "UA"), ("United Arab Emirates", "AE"),
    ("United Kingdom", "GB"), ("United States", "US"),
    ("Uruguay", "UY"), ("Uzbekistan", "UZ"), ("Vanuatu", "VU"),
    ("Venezuela", "VE"), ("Vietnam", "VN"), ("Yemen", "YE"),
    ("Zambia", "ZM"), ("Zimbabwe", "ZW"),
]

# ---------------------------------------------------------------------
# US states with USPS abbreviations.
# ---------------------------------------------------------------------
US_STATES_WITH_ABBR = [
    ("Alabama", "AL"), ("Alaska", "AK"), ("Arizona", "AZ"),
    ("Arkansas", "AR"), ("California", "CA"), ("Colorado", "CO"),
    ("Connecticut", "CT"), ("Delaware", "DE"), ("Florida", "FL"),
    ("Georgia", "GA"), ("Hawaii", "HI"), ("Idaho", "ID"),
    ("Illinois", "IL"), ("Indiana", "IN"), ("Iowa", "IA"),
    ("Kansas", "KS"), ("Kentucky", "KY"), ("Louisiana", "LA"),
    ("Maine", "ME"), ("Maryland", "MD"), ("Massachusetts", "MA"),
    ("Michigan", "MI"), ("Minnesota", "MN"), ("Mississippi", "MS"),
    ("Missouri", "MO"), ("Montana", "MT"), ("Nebraska", "NE"),
    ("Nevada", "NV"), ("New Hampshire", "NH"), ("New Jersey", "NJ"),
    ("New Mexico", "NM"), ("New York", "NY"), ("North Carolina", "NC"),
    ("North Dakota", "ND"), ("Ohio", "OH"), ("Oklahoma", "OK"),
    ("Oregon", "OR"), ("Pennsylvania", "PA"), ("Rhode Island", "RI"),
    ("South Carolina", "SC"), ("South Dakota", "SD"), ("Tennessee", "TN"),
    ("Texas", "TX"), ("Utah", "UT"), ("Vermont", "VT"),
    ("Virginia", "VA"), ("Washington", "WA"), ("West Virginia", "WV"),
    ("Wisconsin", "WI"), ("Wyoming", "WY"),
]

# ---------------------------------------------------------------------
# Cities.  Includes the planted city-side homographs: country∩city
# (Jamaica, Cuba, Singapore, Monaco, Luxembourg, Djibouti, Guatemala,
# Panama, Mexico), first-name∩city (Sydney, Odessa, Savannah, Aurora,
# Florence, Charlotte), car-model∩city (Lincoln, Aspen, Dakota, Malibu,
# Tucson, Sedona), last-name∩city (Berkeley).
# ---------------------------------------------------------------------
CITIES = [
    "Jamaica", "Cuba", "Singapore", "Monaco", "Luxembourg", "Djibouti",
    "Guatemala", "Panama", "Mexico",
    "Sydney", "Odessa", "Savannah", "Aurora", "Florence", "Charlotte",
    "Lincoln", "Aspen", "Dakota", "Malibu", "Tucson", "Sedona",
    "Berkeley",
    "Memphis", "Atlanta", "San Diego", "Boston", "Chicago", "Seattle",
    "Denver", "Houston", "Dallas", "Austin", "Portland", "Nashville",
    "Baltimore", "Detroit", "Milwaukee", "Minneapolis", "Sacramento",
    "Oakland", "Fresno", "Mesa", "Omaha", "Tulsa", "Wichita",
    "Cleveland", "Tampa", "Honolulu", "Anchorage", "Pittsburgh",
    "Cincinnati", "Toledo", "Buffalo", "Rochester", "Albany",
    "Richmond", "Norfolk", "Raleigh", "Durham", "Greensboro",
    "Columbia", "Charleston", "Jacksonville", "Orlando", "Miami",
    "Birmingham", "Montgomery", "Mobile", "Knoxville", "Chattanooga",
    "Louisville", "Lexington", "Indianapolis", "Fort Wayne",
    "Des Moines", "Topeka", "Boise", "Spokane", "Tacoma", "Eugene",
    "Salem", "Reno", "Provo", "Boulder", "Fargo", "Sioux Falls",
    "Billings", "Cheyenne", "Santa Fe", "Albuquerque", "El Paso",
    "San Antonio", "Fort Worth", "Oklahoma City", "Little Rock",
    "Shreveport", "Baton Rouge", "New Orleans", "Jackson", "Gulfport",
    "London", "Paris", "Berlin", "Madrid", "Rome", "Lisbon", "Dublin",
    "Amsterdam", "Brussels", "Vienna", "Prague", "Budapest", "Warsaw",
    "Stockholm", "Oslo", "Copenhagen", "Helsinki", "Athens", "Zurich",
    "Geneva", "Munich", "Hamburg", "Cologne", "Frankfurt", "Barcelona",
    "Seville", "Valencia", "Porto", "Marseille", "Lyon", "Toulouse",
    "Edinburgh", "Glasgow", "Manchester", "Liverpool", "Leeds",
    "Tokyo", "Osaka", "Kyoto", "Nagoya", "Seoul", "Busan", "Beijing",
    "Shanghai", "Shenzhen", "Guangzhou", "Hong Kong", "Taipei",
    "Bangkok", "Hanoi", "Manila", "Kuala Lumpur", "Mumbai", "Delhi",
    "Bangalore", "Chennai", "Kolkata", "Karachi", "Lahore", "Dhaka",
    "Cairo", "Lagos", "Nairobi", "Accra", "Casablanca", "Tunis",
    "Johannesburg", "Cape Town", "Durban", "Addis Ababa", "Kampala",
    "Toronto", "Montreal", "Vancouver", "Calgary", "Ottawa",
    "Winnipeg", "Edmonton", "Quebec City", "Halifax",
    "Melbourne", "Brisbane", "Perth", "Adelaide", "Auckland",
    "Wellington", "Christchurch", "Sao Paulo", "Rio de Janeiro",
    "Buenos Aires", "Santiago", "Lima", "Bogota", "Caracas",
    "Montevideo", "Quito", "La Paz", "Asuncion", "Brasilia",
    "Moscow", "Saint Petersburg", "Kyiv", "Minsk", "Riga", "Vilnius",
    "Tallinn", "Bucharest", "Sofia", "Belgrade", "Zagreb", "Sarajevo",
    "Skopje", "Tirana", "Ankara", "Istanbul", "Tehran", "Baghdad",
    "Riyadh", "Doha", "Dubai", "Abu Dhabi", "Muscat", "Amman",
    "Beirut", "Jerusalem", "Nicosia", "Valletta", "Reykjavik",
]

# ---------------------------------------------------------------------
# Person names.  FIRST_NAMES includes the planted first-name∩city
# values (Sydney, Odessa, Savannah, Aurora, Florence, Charlotte).
# ---------------------------------------------------------------------
FIRST_NAMES = [
    "Sydney", "Odessa", "Savannah", "Aurora", "Florence", "Charlotte",
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer",
    "Michael", "Linda", "David", "Elizabeth", "William", "Barbara",
    "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra",
    "Donald", "Ashley", "Steven", "Kimberly", "Paul", "Emily",
    "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
    "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca",
    "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia",
    "Jacob", "Kathleen", "Gary", "Amy", "Nicholas", "Angela",
    "Eric", "Shirley", "Jonathan", "Anna", "Stephen", "Brenda",
    "Larry", "Pamela", "Justin", "Emma", "Scott", "Nicole",
    "Brandon", "Helen", "Benjamin", "Samantha", "Samuel", "Katherine",
    "Gregory", "Christine", "Alexander", "Debra", "Patrick", "Rachel",
    "Frank", "Carolyn", "Raymond", "Janet", "Jack", "Catherine",
    "Dennis", "Maria", "Jerry", "Heather", "Tyler", "Diane",
    "Aaron", "Ruth", "Jose", "Julie", "Adam", "Olivia", "Nathan",
    "Joyce", "Henry", "Virginia", "Douglas", "Victoria", "Zachary",
    "Kelly", "Peter", "Lauren", "Kyle", "Christina", "Ethan", "Joan",
    "Walter", "Evelyn", "Noah", "Judith", "Jeremy", "Megan",
    "Christian", "Andrea", "Keith", "Cheryl", "Roger", "Hannah",
    "Terry", "Jacqueline", "Gerald", "Martha", "Harold", "Gloria",
    "Sean", "Teresa", "Austin", "Ann", "Carl", "Madison",
    "Arthur", "Frances", "Lawrence", "Kathryn", "Dylan", "Janice",
    "Jesse", "Jean", "Jordan", "Abigail", "Bryan", "Alice",
    "Billy", "Julia", "Joe", "Judy", "Bruce", "Sophia", "Gabriel",
    "Grace", "Logan", "Denise", "Albert", "Amber", "Willie",
    "Doris", "Alan", "Marilyn", "Juan", "Danielle", "Wayne",
    "Beverly", "Elijah", "Isabella", "Randy", "Theresa", "Roy",
    "Diana", "Vincent", "Natalie", "Ralph", "Brittany", "Eugene",
    "Leandra", "Russell", "Nadine", "Bobby", "Elmira", "Mason",
    "Quinta", "Louis", "Else", "Philip", "Christophe", "Johnny",
]

LAST_NAMES = [
    "Berkeley",
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia",
    "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez",
    "Gonzalez", "Wilson", "Anderson", "Taylor", "Moore",
    "Martin", "Lee", "Perez", "Thompson", "White", "Harris",
    "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
    "Young", "Allen", "King", "Wright", "Torres", "Nguyen",
    "Hill", "Flores", "Green", "Adams", "Nelson", "Baker",
    "Hall", "Rivera", "Campbell", "Mitchell", "Carter", "Roberts",
    "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
    "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz",
    "Morgan", "Cooper", "Peterson", "Bailey", "Reed", "Kelly",
    "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson",
    "Watson", "Brooks", "Chavez", "Wood", "James", "Bennett",
    "Gray", "Mendoza", "Ruiz", "Hughes", "Price", "Alvarez",
    "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross",
    "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
    "Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
    "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
    "Patterson", "Alexander", "Hamilton", "Graham", "Reynolds",
    "Griffin", "Wallace", "Moreno", "West", "Cole", "Hayes",
    "Bryant", "Herrera", "Gibson", "Ellis", "Tran", "Medina",
    "Aguilar", "Stevens", "Murray", "Ford", "Castro", "Marshall",
    "Owens", "Harrison", "Fernandez", "McDonald", "Woods",
    "Washington", "Kennedy", "Wells", "Vargas", "Henry", "Chen",
    "Freeman", "Webb", "Tucker", "Guzman", "Burns", "Crawford",
    "Olson", "Simpson", "Porter", "Hunter", "Gordon", "Mendez",
    "Silva", "Shaw", "Snyder", "Mason", "Dixon", "Munoz", "Hunt",
    "Hicks", "Holmes", "Palmer", "Wagner", "Black", "Robertson",
    "Boyd", "Rose", "Stone", "Salazar", "Fox", "Warren", "Mills",
    "Meyer", "Rice", "Schmidt", "Garza", "Daniels", "Ferguson",
    "Nichols", "Stephens", "Soto", "Weaver", "Ryan", "Gardner",
    "Payne", "Grant", "Dunn", "Kelley", "Spencer", "Hawkins",
    "Arnold", "Pierce", "Vazquez", "Hansen", "Peters", "Santos",
    "Hart", "Bradley", "Knight", "Elliott", "Cunningham", "Duncan",
    "Armstrong", "Hudson", "Carroll", "Lane", "Riley", "Andrews",
    "Alvarado", "Ray", "Delgado", "Berry", "Perkins", "Hoffman",
    "Johnston", "Matthews", "Pena", "Richards", "Contreras",
    "Willis", "Carpenter", "Lawrence", "Sandoval", "Guerrero",
    "George", "Chapman", "Rios", "Estrada", "Ortega", "Watkins",
    "Greene", "Nunez", "Wheeler", "Valdez", "Harper", "Burke",
    "Larson", "Santiago", "Maldonado", "Morrison", "Franklin",
    "Carlson", "Austin", "Dominguez", "Lambert", "Garvey", "Duff",
    "Conroy", "Costanza", "Vinson", "Reid", "Smitty",
]
# Entries suffixed with "#" are scrubbed by vocab.py (they collide with
# another category and are not planted homographs).

# ---------------------------------------------------------------------
# Animals.  Planted: Jaguar, Puma, Fox, Lynx (also companies) and Ram,
# Mustang, Impala (also car models).
# ---------------------------------------------------------------------
ANIMALS = [
    "Jaguar", "Puma", "Fox", "Lynx", "Ram", "Mustang", "Impala",
    "Panda", "Lemur", "Pelican", "Tiger", "Lion", "Leopard",
    "Cheetah", "Elephant", "Rhinoceros", "Hippopotamus", "Giraffe",
    "Zebra", "Gorilla", "Chimpanzee", "Orangutan", "Gibbon", "Baboon",
    "Wolf", "Coyote", "Jackal", "Hyena", "Bear", "Grizzly",
    "Polar Bear", "Sloth", "Armadillo", "Anteater", "Aardvark",
    "Platypus", "Echidna", "Kangaroo", "Wallaby", "Koala", "Wombat",
    "Opossum", "Raccoon", "Skunk", "Badger", "Wolverine", "Otter",
    "Beaver", "Porcupine", "Hedgehog", "Squirrel", "Chipmunk",
    "Marmot", "Capybara", "Chinchilla", "Hamster", "Gerbil",
    "Meerkat", "Mongoose", "Ferret", "Weasel", "Stoat", "Mink",
    "Moose", "Elk", "Caribou", "Reindeer", "Antelope", "Gazelle",
    "Springbok", "Wildebeest", "Bison", "Buffalo", "Yak", "Ibex",
    "Chamois", "Markhor", "Oryx", "Kudu", "Eland", "Gnu",
    "Alpaca", "Llama", "Vicuna", "Guanaco", "Camel", "Dromedary",
    "Tapir", "Okapi", "Warthog", "Peccary", "Manatee", "Dugong",
    "Walrus", "Seal", "Sea Lion", "Dolphin", "Porpoise", "Orca",
    "Narwhal", "Beluga", "Humpback Whale", "Blue Whale",
    "Eagle", "Hawk", "Falcon", "Osprey", "Kestrel", "Harrier",
    "Owl", "Raven", "Crow", "Magpie", "Jay", "Cardinal",
    "Sparrow", "Finch", "Warbler", "Thrush", "Robin", "Wren",
    "Heron", "Egret", "Stork", "Crane", "Ibis", "Spoonbill",
    "Flamingo", "Swan", "Goose", "Duck", "Teal", "Mallard",
    "Penguin", "Albatross", "Petrel", "Puffin", "Gull", "Tern",
    "Cormorant", "Gannet", "Booby", "Frigatebird", "Toucan",
    "Macaw", "Cockatoo", "Parakeet", "Lorikeet", "Kingfisher",
    "Woodpecker", "Hummingbird", "Ostrich", "Emu", "Cassowary",
    "Kiwi", "Condor", "Vulture", "Secretary Bird", "Hornbill",
    "Iguana", "Gecko", "Chameleon", "Komodo Dragon", "Monitor Lizard",
    "Python", "Boa", "Cobra", "Viper", "Mamba", "Anaconda",
    "Crocodile", "Alligator", "Caiman", "Gharial", "Tortoise",
    "Turtle", "Terrapin", "Salamander", "Newt", "Axolotl",
]

# ---------------------------------------------------------------------
# Companies.  Planted: Jaguar, Puma, Fox, Lynx (also animals).
# ---------------------------------------------------------------------
COMPANIES = [
    "Jaguar", "Puma", "Fox", "Lynx",
    "Google", "Amazon", "Apple", "Microsoft", "Meta", "Netflix",
    "Toyota", "Volkswagen", "BMW", "Mercedes-Benz", "Honda", "Nissan",
    "Ford Motor", "General Motors", "Tesla", "Ferrari", "Porsche",
    "Hyundai", "Kia", "Subaru", "Mazda", "Volvo", "Renault",
    "Peugeot", "Fiat", "Stellantis", "Suzuki", "Mitsubishi",
    "Intel", "AMD", "Nvidia", "Qualcomm", "Broadcom", "Cisco",
    "Oracle", "SAP", "Salesforce", "Adobe", "IBM", "Accenture",
    "Infosys", "Wipro", "Dell", "HP", "Lenovo", "Asus", "Acer",
    "Samsung Electronics", "LG Electronics", "Sony", "Panasonic",
    "Sharp", "Toshiba", "Hitachi", "Fujitsu", "NEC", "Canon",
    "Nikon", "Olympus", "Xerox", "Kodak", "Philips", "Siemens",
    "Bosch", "ABB", "Schneider Electric", "Honeywell", "3M",
    "General Electric", "Boeing", "Airbus", "Lockheed Martin",
    "Northrop Grumman", "Raytheon", "Rolls-Royce Holdings",
    "Caterpillar", "John Deere", "Komatsu", "Walmart", "Costco",
    "Target", "Kroger", "Walgreens", "CVS Health", "Home Depot",
    "Lowes", "Best Buy", "IKEA", "Aldi", "Lidl", "Carrefour",
    "Tesco", "Sainsburys", "Coca-Cola", "PepsiCo", "Nestle",
    "Unilever", "Procter & Gamble", "Johnson & Johnson", "Pfizer",
    "Moderna", "AstraZeneca", "Novartis", "Roche", "Sanofi",
    "GlaxoSmithKline", "Merck", "AbbVie", "Amgen", "Gilead",
    "McDonalds", "Burger King", "Wendys", "Subway", "Starbucks",
    "Dunkin", "Chipotle", "Dominos", "Pizza Hut", "KFC",
    "Nike", "Adidas", "Reebok", "Under Armour", "New Balance",
    "Asics", "Converse", "Vans", "Timberland", "Columbia Sportswear",
    "Patagonia", "North Face", "Levi Strauss", "Gap", "Zara",
    "H&M", "Uniqlo", "Ralph Lauren", "Tommy Hilfiger", "Gucci",
    "Prada", "Hermes", "Chanel", "Dior", "Burberry", "Rolex",
    "Omega", "Cartier", "Tiffany", "Visa", "Mastercard",
    "American Express", "PayPal", "Stripe", "Square", "JPMorgan",
    "Goldman Sachs", "Morgan Stanley", "Bank of America", "Citigroup",
    "Wells Fargo", "HSBC", "Barclays", "UBS", "Credit Suisse",
    "Deutsche Bank", "BNP Paribas", "Santander", "ING", "AXA",
    "Allianz", "Prudential", "MetLife", "Aflac", "Chubb",
    "ExxonMobil", "Chevron", "Shell", "BP", "TotalEnergies",
    "ConocoPhillips", "Schlumberger", "Halliburton", "Baker Hughes",
    "Duke Energy", "NextEra", "Enel", "Iberdrola", "Orsted",
    "FedEx", "UPS", "DHL", "Maersk", "Delta Air Lines",
    "United Airlines", "American Airlines", "Southwest Airlines",
    "Lufthansa", "Emirates", "Qantas", "Ryanair", "EasyJet",
    "Marriott", "Hilton", "Hyatt", "Accor", "Airbnb", "Expedia",
    "Uber", "Lyft", "DoorDash", "Instacart", "Spotify", "Zoom",
    "Slack", "Dropbox", "Atlassian", "Shopify", "Etsy", "eBay",
    "Alibaba", "Tencent", "Baidu", "JD.com", "Xiaomi", "Huawei",
    "ZTE", "Foxconn", "TSMC", "SK Hynix", "Micron", "Kioxia",
]

# ---------------------------------------------------------------------
# Car models.  Planted: Lincoln, Aspen, Dakota, Malibu, Tucson, Sedona
# (also cities) and Ram, Mustang, Impala (also animals).
# ---------------------------------------------------------------------
CAR_MODELS = [
    "Lincoln", "Aspen", "Dakota", "Malibu", "Tucson", "Sedona",
    "Ram", "Mustang", "Impala",
    "XE", "XF", "XJ", "F-Type", "E-Pace", "F-Pace", "I-Pace",
    "Prius", "Corolla", "Camry", "Avalon", "Yaris", "Supra",
    "RAV4", "Highlander", "4Runner", "Tacoma", "Tundra", "Sienna",
    "Civic", "Accord", "Insight", "Pilot", "Passport", "Ridgeline",
    "CR-V", "HR-V", "Odyssey", "Fit", "Element", "Prelude",
    "Altima", "Maxima", "Sentra", "Versa", "Leaf", "Juke",
    "Rogue", "Murano", "Pathfinder", "Armada", "Frontier", "Titan",
    "Golf", "Jetta", "Passat", "Arteon", "Tiguan", "Atlas",
    "Beetle", "Touareg", "ID.4", "Polo", "Scirocco", "Corrado",
    "3 Series", "5 Series", "7 Series", "X1", "X3", "X5",
    "Z4", "i3", "i8", "M3", "M5", "A3", "A4", "A6", "A8",
    "Q3", "Q5", "Q7", "TT", "R8", "e-tron", "C-Class", "E-Class",
    "S-Class", "GLA", "GLC", "GLE", "SL", "AMG GT", "EQS",
    "500", "Panda", "Punto", "Tipo", "Doblo", "Ducato",
    "Model S", "Model 3", "Model X", "Model Y", "Cybertruck",
    "Roadster", "F-150", "F-250", "Ranger", "Explorer", "Escape",
    "Expedition", "Bronco", "Edge", "Fusion", "Taurus", "Fiesta",
    "Focus", "GT", "Escort", "Thunderbird", "Silverado", "Colorado",
    "Tahoe", "Suburban", "Equinox", "Traverse", "Blazer", "Camaro",
    "Corvette", "Bolt", "Volt", "Cruze", "Sonic", "Spark",
    "Challenger", "Charger", "Durango", "Journey", "Caravan",
    "Viper", "Neon", "Wrangler", "Cherokee", "Compass", "Renegade",
    "Gladiator", "Patriot", "Liberty", "Commander", "Elantra",
    "Sonata", "Accent", "Veloster", "Kona", "Santa Fe", "Palisade",
    "Venue", "Ioniq", "Genesis", "Optima", "Sorento", "Sportage",
    "Telluride", "Soul", "Forte", "Rio", "Stinger", "Niro",
    "Outback", "Forester", "Impreza", "Legacy", "Crosstrek",
    "Ascent", "WRX", "BRZ", "CX-3", "CX-5", "CX-9", "MX-5",
    "Mazda3", "Mazda6", "RX-7", "RX-8", "XC40", "XC60", "XC90",
    "S60", "S90", "V60", "V90", "Clio", "Megane", "Twingo",
    "Kangoo", "Captur", "Swift", "Vitara", "Jimny", "Baleno", "Celerio",
    "Outlander", "Eclipse", "Lancer", "Pajero", "Mirage",
    "Elan", "Esprit", "Evora", "Exige", "Elise", "Crossfire",
]
# "#"-prefixed or suffixed entries collide with other categories and
# are scrubbed at vocabulary-build time (see vocab.py).

# ---------------------------------------------------------------------
# Groceries.  Planted: Pumpkin, Chocolate, Butter, Toast (also movie
# titles).  Combined with modifiers for volume.
# ---------------------------------------------------------------------
GROCERY_BASES = [
    "Pumpkin", "Chocolate", "Butter", "Toast",
    "Milk", "Eggs", "Flour", "Sugar", "Salt", "Pepper", "Rice",
    "Pasta", "Bread", "Cheese", "Yogurt", "Cream", "Honey", "Jam",
    "Cereal", "Oatmeal", "Granola", "Almonds", "Walnuts", "Cashews",
    "Peanuts", "Raisins", "Dates", "Figs", "Apples", "Bananas",
    "Oranges", "Lemons", "Limes", "Grapes", "Berries", "Cherries",
    "Peaches", "Pears", "Plums", "Melons", "Pineapple", "Mango",
    "Papaya", "Avocado", "Tomatoes", "Potatoes", "Onions", "Garlic",
    "Carrots", "Celery", "Lettuce", "Spinach", "Kale", "Broccoli",
    "Cauliflower", "Cabbage", "Peppers", "Cucumbers", "Zucchini",
    "Eggplant", "Mushrooms", "Corn", "Peas", "Beans", "Lentils",
    "Chickpeas", "Tofu", "Chicken Breast", "Ground Beef", "Salmon",
    "Tuna", "Shrimp", "Bacon", "Sausage", "Ham", "Turkey Breast",
    "Olive Oil", "Canola Oil", "Vinegar", "Soy Sauce", "Ketchup",
    "Mustard", "Mayonnaise", "Salsa", "Hummus", "Crackers",
    "Pretzels", "Chips", "Popcorn", "Cookies", "Brownies",
    "Ice Cream", "Frozen Pizza", "Orange Juice", "Apple Juice",
    "Coffee", "Tea", "Cocoa", "Soda", "Sparkling Water",
]

GROCERY_MODIFIERS = [
    "Organic", "Fresh", "Frozen", "Canned", "Dried", "Smoked",
    "Low-Fat", "Whole Grain", "Gluten-Free", "Sugar-Free",
    "Artisan", "Local", "Imported", "Premium", "Value",
]

GROCERY_CATEGORIES = [
    "Produce", "Dairy", "Bakery", "Meat", "Seafood", "Frozen Foods",
    "Pantry", "Snacks", "Beverages", "Condiments", "Breakfast",
    "Canned Goods", "Baking", "Deli", "Health Foods",
]

# ---------------------------------------------------------------------
# Movie title building blocks.  Planted single-word titles: Pumpkin,
# Chocolate, Butter, Toast (also groceries).
# ---------------------------------------------------------------------
MOVIE_STANDALONE_TITLES = ["Pumpkin", "Chocolate", "Butter", "Toast"]

MOVIE_ADJECTIVES = [
    "Silent", "Broken", "Hidden", "Eternal", "Crimson", "Golden",
    "Midnight", "Savage", "Gentle", "Lost", "Final", "First",
    "Burning", "Frozen", "Electric", "Velvet", "Hollow", "Sacred",
    "Wicked", "Quiet", "Distant", "Forgotten", "Restless", "Shattered",
    "Luminous", "Obsidian", "Scarlet", "Emerald", "Ivory", "Amber",
]

MOVIE_NOUNS = [
    "Garden", "Mirror", "River", "Mountain", "Harbor", "Empire",
    "Kingdom", "Shadow", "Horizon", "Voyage", "Promise", "Secret",
    "Whisper", "Echo", "Storm", "Winter", "Summer", "Autumn",
    "Letter", "Journey", "Symphony", "Serenade", "Requiem", "Ballad",
    "Fortress", "Labyrinth", "Cathedral", "Lighthouse", "Carnival",
    "Masquerade", "Reckoning", "Awakening", "Crossing", "Descent",
]

MOVIE_GENRES = [
    "Drama", "Comedy", "Thriller", "Horror", "Action", "Adventure",
    "Romance", "Science Fiction", "Fantasy", "Documentary", "Mystery",
    "Crime", "Animation", "Western", "Musical", "War", "Biography",
    "Family", "Sport", "Film Noir",
]

# ---------------------------------------------------------------------
# Plants (Figure 6 of the paper surfaces exactly this style of name:
# "Hairy Grama", "Cracked Lichen", "Pale Evening Primrose", ...).
# ---------------------------------------------------------------------
PLANT_ADJECTIVES = [
    "Hairy", "Cracked", "Orange", "Kidney", "Coastal", "Pale",
    "Showy", "Dispersed", "Woodland", "Canyon", "Hybrid", "Dwarf",
    "Giant", "Creeping", "Climbing", "Trailing", "Upright", "Spotted",
    "Striped", "Fragrant", "Prickly", "Smooth", "Velvet", "Woolly",
    "Silver", "Copper", "Desert", "Alpine", "Meadow", "Marsh",
    "Swamp", "Prairie", "Mountain", "Valley", "Northern", "Southern",
    "Western", "Eastern", "Common", "Rare",
]

PLANT_NOUNS = [
    "Grama", "Lichen", "Primrose", "Blackberry", "Liveforever",
    "Dawnflower", "Eggyolk Lichen", "Rattlebox", "Wild Coffee",
    "Angelica", "Oak", "Maple", "Willow", "Birch", "Aster",
    "Sage", "Thistle", "Clover", "Fern", "Moss", "Sedge",
    "Rush", "Reed", "Orchid", "Lily", "Iris", "Violet",
    "Poppy", "Lupine", "Larkspur", "Columbine", "Penstemon",
    "Milkweed", "Goldenrod", "Sunflower", "Daisy", "Yarrow",
    "Buttercup", "Anemone", "Paintbrush",
]

PLANT_FAMILIES = [
    "Asteraceae", "Poaceae", "Fabaceae", "Rosaceae", "Lamiaceae",
    "Brassicaceae", "Apiaceae", "Ranunculaceae", "Liliaceae",
    "Orchidaceae", "Ericaceae", "Solanaceae", "Malvaceae",
    "Euphorbiaceae", "Cyperaceae", "Juncaceae", "Polygonaceae",
    "Caryophyllaceae", "Onagraceae", "Boraginaceae",
]

LATIN_GENERA = [
    "Panthera", "Quercus", "Acer", "Salix", "Betula", "Pinus",
    "Abies", "Picea", "Juniperus", "Rosa", "Rubus", "Prunus",
    "Malus", "Pyrus", "Fragaria", "Trifolium", "Lupinus", "Astragalus",
    "Carex", "Juncus", "Poa", "Festuca", "Bromus", "Elymus",
    "Bouteloua", "Andropogon", "Panicum", "Setaria", "Solidago",
    "Aster", "Erigeron", "Helianthus", "Rudbeckia", "Echinacea",
    "Penstemon", "Castilleja", "Mimulus", "Viola", "Ranunculus",
    "Delphinium", "Aquilegia", "Anemone", "Clematis", "Thalictrum",
]

LATIN_EPITHETS = [
    "alba", "nigra", "rubra", "lutea", "viridis", "glauca",
    "vulgaris", "officinalis", "sylvatica", "montana", "alpina",
    "pratensis", "palustris", "maritima", "arvensis", "campestris",
    "occidentalis", "orientalis", "borealis", "australis",
    "grandiflora", "parviflora", "macrophylla", "microphylla",
    "angustifolia", "latifolia", "rotundifolia", "lanceolata",
    "hirsuta", "glabra", "pubescens", "tomentosa", "spinosa",
    "repens", "erecta", "procumbens", "scandens", "radicans",
]

DEPARTMENTS = [
    "Engineering", "Marketing", "Sales", "Finance", "Human Resources",
    "Legal", "Operations", "Research and Development", "Procurement",
    "Customer Support", "Information Technology", "Quality Assurance",
    "Logistics", "Public Relations", "Business Development",
    "Product Management", "Design", "Data Science", "Security",
    "Facilities", "Accounting", "Compliance", "Training",
    "Biomedical Engineering", "Music Faculty",
]

EMAIL_DOMAINS = [
    "example.com", "mail.test", "corp.example", "inbox.example",
    "post.test", "mailbox.example",
]
