"""TUS-like benchmark generator — §4.2 of the paper.

The paper adapts the Table Union Search benchmark (Nargesian et al.,
PVLDB 2018): real open-data tables were sliced vertically and
horizontally into ~1,327 benchmark tables, and the slicing provenance
gives unionability ground truth — two columns are unionable iff they
descend from the same seed column group.  Definition 2 then labels a
value a homograph iff it appears in two non-unionable columns.

The real tables are not redistributable offline, so this generator
reproduces the *mechanism*:

1. a universe of semantic **domains** (string and numeric), with
   heavily skewed vocabulary sizes;
2. deliberate **overlaps** between domain vocabularies — shared tokens
   (2–4 meanings), null-like tokens spread across many domains (the
   ".", "NA" style high-meaning homographs the paper surfaces in its
   TUS top-10), and overlapping numeric ranges (the "50", "125", "2"
   style numeric homographs);
3. **seed tables** whose columns draw from those domains, Zipf-skewed so
   values repeat;
4. **slicing** of every seed table into many derived tables (column
   subsets x row blocks) — the benchmark lake contains only the slices;
5. ground truth labeled from actual value placement via
   :func:`repro.bench.ground_truth.label_lake`.

``TUSConfig.paper()`` approaches the published scale (~1.3k tables,
~190k values, ~14% homographs); the default is laptop/CI sized with the
same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..datalake.lake import DataLake
from ..datalake.table import Table
from .ground_truth import LakeGroundTruth, label_lake

# Null-equivalent tokens, spread across many domains: the source of the
# paper's high-meaning homographs ("." was their 5th-ranked TUS value).
NULL_TOKENS = (
    ".", "NA", "N/A", "-", "--", "NONE", "NULL", "UNKNOWN",
    "NOT AVAILABLE", "TBD", "PENDING", "MISSING", "?", "X", "VOID",
)


@dataclass(frozen=True)
class TUSConfig:
    """Scale and shape knobs for the TUS-like generator."""

    num_domains: int = 40
    numeric_domain_fraction: float = 0.3
    vocab_size_range: Tuple[int, int] = (100, 6000)
    num_seed_tables: int = 12
    seed_columns_range: Tuple[int, int] = (4, 10)
    seed_rows_range: Tuple[int, int] = (600, 4000)
    slices_per_seed_range: Tuple[int, int] = (8, 24)
    slice_columns_range: Tuple[int, int] = (2, 6)
    slice_rows_range: Tuple[int, int] = (8, 2500)
    shared_token_fraction: float = 0.16
    null_token_column_probability: float = 0.25
    zipf_exponent: float = 1.0
    column_coverage: float = 0.5
    seed: int = 0

    @classmethod
    def paper(cls) -> "TUSConfig":
        """Approximate the published TUS scale (Table 1 row 3)."""
        return cls(
            num_domains=120,
            num_seed_tables=44,
            seed_columns_range=(4, 12),
            seed_rows_range=(500, 4000),
            slices_per_seed_range=(20, 40),
            vocab_size_range=(100, 18000),
        )

    @classmethod
    def small(cls, seed: int = 0) -> "TUSConfig":
        """Test-sized lake with the same structure."""
        return cls(
            num_domains=16,
            num_seed_tables=6,
            seed_columns_range=(3, 6),
            seed_rows_range=(150, 600),
            slices_per_seed_range=(4, 8),
            slice_rows_range=(8, 400),
            vocab_size_range=(40, 600),
            seed=seed,
        )


@dataclass(frozen=True)
class Domain:
    """One semantic domain: a named vocabulary of string values."""

    domain_id: str
    kind: str  # "string" or "numeric"
    vocabulary: Tuple[str, ...]


@dataclass
class TUSDataset:
    """The sliced benchmark lake, its domains, and verified ground truth."""

    lake: DataLake
    domains: List[Domain]
    ground_truth: LakeGroundTruth
    config: TUSConfig = field(default=TUSConfig())

    @property
    def homographs(self) -> Set[str]:
        return self.ground_truth.homographs

    def domain_of_attribute(self, qualified_name: str) -> str:
        return self.ground_truth.attribute_groups[qualified_name]


def generate_tus(config: TUSConfig = TUSConfig()) -> TUSDataset:
    """Generate a TUS-like lake with unionability ground truth."""
    rng = np.random.default_rng(config.seed)
    domains = _build_domains(rng, config)

    attribute_groups: Dict[str, str] = {}
    lake = DataLake()
    for seed_index in range(config.num_seed_tables):
        seed_columns = _seed_table_columns(rng, config, domains, seed_index)
        _slice_into_lake(
            rng, config, lake, attribute_groups, seed_index, seed_columns
        )

    truth = label_lake(lake, attribute_groups)
    return TUSDataset(
        lake=lake, domains=domains, ground_truth=truth, config=config
    )


# ---------------------------------------------------------------------
# Domain construction
# ---------------------------------------------------------------------
def _build_domains(
    rng: np.random.Generator, config: TUSConfig
) -> List[Domain]:
    """Create string and numeric domains with deliberate overlaps."""
    num_numeric = int(round(config.num_domains * config.numeric_domain_fraction))
    num_string = config.num_domains - num_numeric

    lo, hi = config.vocab_size_range
    # Log-uniform sizes: heavy skew, like open-data attribute sizes.
    sizes = np.exp(
        rng.uniform(np.log(lo), np.log(hi), size=config.num_domains)
    ).astype(int)

    domains: List[Domain] = []
    word_gen = _WordGenerator(rng)

    string_vocabs: List[List[str]] = [
        word_gen.take(int(sizes[i])) for i in range(num_string)
    ]
    _share_tokens(rng, config, string_vocabs, word_gen)

    for i, vocab in enumerate(string_vocabs):
        domains.append(
            Domain(domain_id=f"dom_s{i:03d}", kind="string",
                   vocabulary=tuple(vocab))
        )

    for j in range(num_numeric):
        size = int(sizes[num_string + j])
        vocab = _numeric_vocabulary(rng, size)
        domains.append(
            Domain(domain_id=f"dom_n{j:03d}", kind="numeric",
                   vocabulary=tuple(vocab))
        )
    return domains


def _share_tokens(
    rng: np.random.Generator,
    config: TUSConfig,
    vocabs: List[List[str]],
    word_gen: "_WordGenerator",
) -> None:
    """Insert shared tokens into 2-4 string domains each.

    The number of shared tokens is a fraction of the total vocabulary,
    tuned so the homograph rate lands near the paper's ~14%.
    """
    if len(vocabs) < 2:
        return
    total = sum(len(v) for v in vocabs)
    num_shared = int(total * config.shared_token_fraction)
    weights = np.array([len(v) for v in vocabs], dtype=float)
    weights /= weights.sum()
    for _ in range(num_shared):
        token = word_gen.take(1)[0]
        n_meanings = int(rng.choice([2, 2, 2, 3, 3, 4]))
        n_meanings = min(n_meanings, len(vocabs))
        chosen = rng.choice(
            len(vocabs), size=n_meanings, replace=False, p=weights
        )
        for d in chosen:
            vocabs[int(d)].append(token)


def _numeric_vocabulary(rng: np.random.Generator, size: int) -> List[str]:
    """Integer vocabulary from a random range anchored at small values.

    Ranges of different numeric domains overlap near zero, so small
    integers ("2", "50", "125") acquire many meanings — exactly the
    numeric homographs the paper reports in its TUS top-10.
    """
    start = int(rng.choice([0, 0, 1, 1, 10, 100]))
    step = int(rng.choice([1, 1, 1, 5, 25]))
    return [str(start + step * k) for k in range(size)]


class _WordGenerator:
    """Deterministic pronounceable-token generator (unique outputs)."""

    _ONSETS = ["b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
               "n", "p", "r", "s", "t", "v", "w", "z", "br", "cr",
               "dr", "gr", "pr", "tr", "st", "sl", "ch", "sh"]
    _VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "ou"]
    _CODAS = ["", "n", "r", "s", "t", "l", "x", "nd", "rt", "ck"]

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._seen: Set[str] = set()

    def take(self, count: int) -> List[str]:
        out: List[str] = []
        while len(out) < count:
            word = self._word()
            if word not in self._seen:
                self._seen.add(word)
                out.append(word)
        return out

    def _word(self) -> str:
        rng = self._rng
        syllables = int(rng.integers(2, 4))
        parts = []
        for _ in range(syllables):
            parts.append(str(rng.choice(self._ONSETS)))
            parts.append(str(rng.choice(self._VOWELS)))
        parts.append(str(rng.choice(self._CODAS)))
        word = "".join(parts)
        if rng.random() < 0.15:  # occasional two-word phrases
            word = f"{word} {rng.choice(self._VOWELS)}{rng.choice(self._CODAS)}"
        return word.capitalize()


# ---------------------------------------------------------------------
# Seed tables and slicing
# ---------------------------------------------------------------------
def _seed_table_columns(
    rng: np.random.Generator,
    config: TUSConfig,
    domains: Sequence[Domain],
    seed_index: int,
) -> List[Tuple[Domain, List[str]]]:
    """Materialize one seed table: (domain, cells) per column."""
    lo, hi = config.seed_columns_range
    num_columns = int(rng.integers(lo, hi + 1))
    num_columns = min(num_columns, len(domains))
    rows_lo, rows_hi = config.seed_rows_range
    num_rows = int(rng.integers(rows_lo, rows_hi + 1))

    chosen = rng.choice(len(domains), size=num_columns, replace=False)
    columns: List[Tuple[Domain, List[str]]] = []
    for d in chosen:
        domain = domains[int(d)]
        cells = _sample_column(rng, config, domain, num_rows)
        columns.append((domain, cells))
    return columns


def _sample_column(
    rng: np.random.Generator,
    config: TUSConfig,
    domain: Domain,
    num_rows: int,
) -> List[str]:
    """Zipf-skewed draws from a vocabulary subset, plus optional nulls.

    Each seed column sees only ``column_coverage`` of its domain's
    vocabulary: same-domain columns from different seed tables overlap
    partially, like real open-data tables about the same subject.  The
    values in the overlap become intra-domain bridges with non-trivial
    betweenness — the background noise the injection experiments of
    Tables 2 and 3 compete against.
    """
    full = domain.vocabulary
    subset_size = max(2, int(len(full) * config.column_coverage))
    subset = rng.choice(len(full), size=subset_size, replace=False)
    vocab = [full[int(i)] for i in subset]
    ranks = np.arange(1, len(vocab) + 1, dtype=float)
    weights = ranks ** (-config.zipf_exponent)
    weights /= weights.sum()
    order = rng.permutation(len(vocab))  # random rank assignment
    draws = rng.choice(len(vocab), size=num_rows, p=weights)
    cells = [vocab[int(order[d])] for d in draws]

    if rng.random() < config.null_token_column_probability:
        # Zipf-weighted token choice: "." and "NA" recur across many
        # domains (the high-meaning homographs of the paper's top-10),
        # the tail of the token list stays rare.
        token_ranks = np.arange(1, len(NULL_TOKENS) + 1, dtype=float)
        token_weights = token_ranks ** -1.5
        token_weights /= token_weights.sum()
        choice = int(rng.choice(len(NULL_TOKENS), p=token_weights))
        token = NULL_TOKENS[choice]
        null_rate = rng.uniform(0.01, 0.05)
        mask = rng.random(num_rows) < null_rate
        for i in np.flatnonzero(mask):
            cells[int(i)] = token
    return cells


def _slice_into_lake(
    rng: np.random.Generator,
    config: TUSConfig,
    lake: DataLake,
    attribute_groups: Dict[str, str],
    seed_index: int,
    seed_columns: List[Tuple[Domain, List[str]]],
) -> None:
    """Cut one seed table into derived tables and add them to the lake."""
    lo, hi = config.slices_per_seed_range
    num_slices = int(rng.integers(lo, hi + 1))
    num_rows = len(seed_columns[0][1])

    for slice_index in range(num_slices):
        cols_lo, cols_hi = config.slice_columns_range
        width = int(rng.integers(cols_lo, min(cols_hi, len(seed_columns)) + 1))
        col_ids = sorted(
            rng.choice(len(seed_columns), size=width, replace=False)
        )

        rows_lo, rows_hi = config.slice_rows_range
        # Log-uniform heights: plenty of small slices (the paper's TUS
        # has attribute cardinalities down to 3) next to large ones.
        height = int(np.exp(rng.uniform(np.log(rows_lo), np.log(rows_hi + 1))))
        height = min(max(height, 1), num_rows)
        start = int(rng.integers(0, num_rows - height + 1))

        table_name = f"t{seed_index:03d}_{slice_index:03d}"
        headers = []
        column_cells = []
        for c in col_ids:
            domain, cells = seed_columns[int(c)]
            header = f"c{int(c)}_{domain.domain_id}"
            headers.append(header)
            column_cells.append(cells[start:start + height])
            attribute_groups[f"{table_name}.{header}"] = domain.domain_id

        rows = [
            [column_cells[j][i] for j in range(width)]
            for i in range(height)
        ]
        lake.add_table(Table(name=table_name, columns=headers, rows=rows))
