"""A stdlib-only closed-loop HTTP load generator for the serving tier.

Every ``BENCH_*.json`` number before PR 8 was a single-caller
microbenchmark; this module is how the repo measures "heavy traffic"
for real.  It follows the closed-loop methodology of wrk2/YCSB-style
serving benchmarks: N worker threads, each owning one keep-alive
:class:`~repro.serving.client.HomographClient`, issue requests
back-to-back (a worker's next request starts when its previous one
finishes), and every per-request latency lands in a fixed-bucket
histogram, so percentiles are deterministic functions of the recorded
durations — never of sampling luck.

The three layers:

* :class:`LatencyHistogram` — log-spaced fixed buckets (100µs to
  hours, 25% resolution); ``percentile`` answers with a bucket upper
  bound, which makes hand-computed oracles possible in unit tests.
* :class:`LoadOp` + :func:`build_mixed_schedule` — a seed-reproducible
  workload: the same ``(seed, ops, lakes)`` always yields the same
  operation sequence (cache-hit detects, cache-miss detects, ranking
  pages, async job submit+poll, table mutations), so two runs of the
  harness compare like-for-like.
* :func:`run_load` — drive a live server with one schedule per worker,
  either for a fixed wall-clock ``duration`` (workers cycle their
  schedule) or for exactly one pass; returns a :class:`LoadReport`
  with overall / per-lake / per-op-kind histograms, throughput, error
  counts, and 503 rejections split by scope.

Admission rejections (any 503) are retried inside the worker loop
with a small fixed backoff, and the op's recorded latency spans the
retries — exactly what a client of an overloaded service experiences.
That is what makes the fairness benchmark honest: a starved lake
shows up as inflated latency and a rejection pile, not as silently
dropped samples.

Typical use (the fairness scenario in ``benchmarks/test_http_load.py``
builds dedicated per-worker schedules instead)::

    schedule = build_mixed_schedule(("tus", "sb"), ops=400, seed=0)
    report = run_load(
        server.url, split_schedule(schedule, workers=16), duration=5.0
    )
    report.overall.percentile(99)           # seconds
    report.to_dict()                        # BENCH_*.json payload
"""

from __future__ import annotations

import bisect
import math
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..datalake.table import Table
from ..serving.client import HomographClient, JobFailed, ServiceError

#: Histogram bucket upper bounds (seconds): geometric from 100µs at
#: 25% resolution.  Fixed at import time so percentiles are stable
#: across runs, machines, and processes.
BUCKET_EDGES: Tuple[float, ...] = tuple(
    1e-4 * 1.25 ** i for i in range(88)
)

#: The default mixed workload: weights mirror a read-heavy serving
#: tier (most traffic re-reads warm rankings; a tail mutates).
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    ("detect_hit", 45),
    ("ranking", 20),
    ("detect_miss", 15),
    ("job", 10),
    ("mutate", 10),
)

#: Every op kind :func:`run_load` knows how to execute.
OP_KINDS: Tuple[str, ...] = (
    "detect_hit", "detect_miss", "ranking", "job", "mutate",
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with deterministic percentiles.

    ``record`` files one duration into the smallest bucket whose upper
    bound covers it; ``percentile(q)`` walks the cumulative counts to
    the ``ceil(q% * count)``-th sample and answers that bucket's upper
    bound (capped at the exact observed maximum, so ``percentile(100)
    == max``).  Bucket edges are 25% apart — a percentile is never
    more than one resolution step above the true order statistic, and
    identical inputs always produce identical outputs, which is what
    lets CI pin percentile math against hand-computed oracles instead
    of asserting flaky wall-clock numbers.

    Instances are not thread-safe; workers record into their own and
    :meth:`merge` combines them afterwards.
    """

    __slots__ = ("_counts", "_count", "_total", "_min", "_max")

    def __init__(self) -> None:
        self._counts = [0] * len(BUCKET_EDGES)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """File one duration (seconds; negatives clamp to zero)."""
        seconds = max(0.0, seconds)
        slot = bisect.bisect_left(BUCKET_EDGES, seconds)
        if slot >= len(BUCKET_EDGES):
            slot = len(BUCKET_EDGES) - 1
        self._counts[slot] += 1
        self._count += 1
        self._total += seconds
        self._min = min(self._min, seconds)
        self._max = max(self._max, seconds)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        for slot, count in enumerate(other._counts):
            self._counts[slot] += count
        self._count += other._count
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._count

    @property
    def min(self) -> float:
        """Smallest recorded duration (0.0 when empty)."""
        return 0.0 if self._count == 0 else self._min

    @property
    def max(self) -> float:
        """Largest recorded duration (0.0 when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded durations (exact)."""
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (seconds); 0.0 for an empty histogram.

        Deterministic: the upper bound of the bucket holding the
        ``ceil(q% * count)``-th smallest sample, capped at the exact
        maximum.
        """
        if self._count == 0:
            return 0.0
        q = min(100.0, max(0.0, q))
        target = max(1, math.ceil(self._count * q / 100.0))
        cumulative = 0
        for slot, (edge, count) in enumerate(zip(BUCKET_EDGES, self._counts)):
            cumulative += count
            if cumulative >= target:
                if slot == len(BUCKET_EDGES) - 1 and self._max > edge:
                    # Overflow bucket: its edge *under*states samples
                    # clamped into it; the recorded max is the honest
                    # upper bound there.
                    return self._max
                return min(edge, self._max)
        return self._max  # pragma: no cover - counts always cover

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe summary in milliseconds (the BENCH convention)."""
        return {
            "count": self._count,
            "mean_ms": round(self.mean * 1000, 3),
            "min_ms": round(self.min * 1000, 3),
            "p50_ms": round(self.percentile(50) * 1000, 3),
            "p95_ms": round(self.percentile(95) * 1000, 3),
            "p99_ms": round(self.percentile(99) * 1000, 3),
            "max_ms": round(self.max * 1000, 3),
        }


@dataclass(frozen=True)
class LoadOp:
    """One scheduled operation against one lake.

    ``request`` carries the op's parameters: ``DetectRequest`` fields
    for the detect/ranking/job kinds (plus ``limit`` for rankings),
    and ``{"name", "columns"}`` for mutations (the executing worker
    suffixes the table name so repeats of the schedule never collide).
    """

    kind: str
    lake: str
    request: Mapping[str, object]
    op_id: int


def build_mixed_schedule(
    lakes: Sequence[str],
    ops: int,
    seed: int = 0,
    mix: Sequence[Tuple[str, int]] = DEFAULT_MIX,
    hit_request: Optional[Mapping[str, object]] = None,
    miss_measure: str = "betweenness",
    miss_sample: int = 32,
) -> List[LoadOp]:
    """A seed-reproducible mixed workload across ``lakes``.

    Op kinds are drawn from ``mix`` (kind, weight) and lakes uniformly,
    both from one ``random.Random(seed)`` — the same arguments always
    produce the identical schedule, byte for byte, which the unit
    tests pin.  ``hit_request`` is the one warm configuration every
    ``detect_hit``/``ranking``/half the ``job`` ops reuse (default
    LCC); cache-miss detects vary ``seed`` per op so each has a unique
    cache key.
    """
    if not lakes:
        raise ValueError("build_mixed_schedule needs at least one lake")
    if ops < 0:
        raise ValueError(f"ops must be >= 0, got {ops}")
    kinds = [kind for kind, _ in mix]
    unknown = sorted(set(kinds) - set(OP_KINDS))
    if unknown:
        raise ValueError(
            f"unknown op kind(s) {unknown}; expected a subset of "
            f"{list(OP_KINDS)}"
        )
    weights = [weight for _, weight in mix]
    warm = dict(hit_request or {"measure": "lcc"})
    rng = random.Random(seed)
    schedule: List[LoadOp] = []
    for op_id in range(ops):
        kind = rng.choices(kinds, weights=weights)[0]
        lake = rng.choice(list(lakes))
        if kind == "detect_hit":
            request: Dict[str, object] = dict(warm)
        elif kind == "detect_miss":
            request = {
                "measure": miss_measure,
                "sample_size": miss_sample,
                "seed": op_id,
            }
        elif kind == "ranking":
            request = {**warm, "limit": 100}
        elif kind == "job":
            # Half the jobs re-run the warm configuration (poll-fast),
            # half force fresh compute on the dispatcher.
            request = dict(warm) if rng.random() < 0.5 else {
                "measure": miss_measure,
                "sample_size": miss_sample,
                "seed": 100_000 + op_id,
            }
        else:  # mutate
            value = f"load-{op_id:05d}"
            request = {
                "name": f"loadgen-{op_id:05d}",
                "columns": {"k": [value, value]},
            }
        schedule.append(LoadOp(kind, lake, request, op_id))
    return schedule


def split_schedule(
    schedule: Sequence[LoadOp], workers: int
) -> List[List[LoadOp]]:
    """Deal one schedule round-robin into ``workers`` per-worker lists.

    Round-robin (not contiguous chunks) so every worker sees the same
    op-kind mix; workers whose slice is empty simply idle.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return [list(schedule[w::workers]) for w in range(workers)]


@dataclass
class LoadReport:
    """Everything one :func:`run_load` run measured.

    ``rejected`` maps lake name to rejection counts by error code
    (``over-capacity`` / ``lake-over-capacity`` / ``jobs-overloaded``)
    — every 503 the workers retried through.  ``errors`` counts ops
    that terminally failed (exhausted retries, unexpected service
    errors, transport failures) by code or exception name; those ops
    do not contribute latency samples.
    """

    duration_s: float
    workers: int
    completed: int
    errors: Dict[str, int]
    rejected: Dict[str, Dict[str, int]]
    overall: LatencyHistogram
    by_lake: Dict[str, LatencyHistogram]
    by_kind: Dict[str, LatencyHistogram]
    retry_sleep_s: float = 0.0
    warmup_s: float = 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of driven wall-clock."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def rejected_for(self, lake: str) -> int:
        """Total 503 rejections workers saw for one lake."""
        return sum(self.rejected.get(lake, {}).values())

    @property
    def rejected_total(self) -> int:
        """Total 503 rejections across every lake and scope."""
        return sum(
            count
            for by_code in self.rejected.values()
            for count in by_code.values()
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload for ``BENCH_*.json`` sections."""
        return {
            "duration_s": round(self.duration_s, 3),
            "workers": self.workers,
            "completed": self.completed,
            "throughput_rps": round(self.throughput_rps, 1),
            "errors": dict(self.errors),
            "rejected": {
                lake: dict(by_code)
                for lake, by_code in self.rejected.items()
            },
            "rejected_total": self.rejected_total,
            "latency_ms": self.overall.to_dict(),
            "lakes": {
                lake: hist.to_dict()
                for lake, hist in sorted(self.by_lake.items())
            },
            "ops": {
                kind: hist.to_dict()
                for kind, hist in sorted(self.by_kind.items())
            },
        }

    def format_lines(self) -> List[str]:
        """Human-readable summary for ``benchmarks/results/*.txt``."""
        lines = [
            f"{self.completed} ops in {self.duration_s:.2f}s over "
            f"{self.workers} worker(s) = "
            f"{self.throughput_rps:.1f} req/s  "
            f"(503 retries: {self.rejected_total}, "
            f"errors: {sum(self.errors.values())})",
            _hist_line("overall", self.overall),
        ]
        for lake, hist in sorted(self.by_lake.items()):
            lines.append(_hist_line(f"lake {lake}", hist))
        for kind, hist in sorted(self.by_kind.items()):
            lines.append(_hist_line(f"op {kind}", hist))
        return lines


def _hist_line(label: str, hist: LatencyHistogram) -> str:
    return (
        f"{label:<18} n={hist.count:<6} "
        f"p50={hist.percentile(50) * 1000:8.1f}ms "
        f"p95={hist.percentile(95) * 1000:8.1f}ms "
        f"p99={hist.percentile(99) * 1000:8.1f}ms "
        f"max={hist.max * 1000:8.1f}ms"
    )


class _WorkerTally:
    """One worker's private counters, merged after the join."""

    def __init__(self) -> None:
        self.overall = LatencyHistogram()
        self.by_lake: Dict[str, LatencyHistogram] = {}
        self.by_kind: Dict[str, LatencyHistogram] = {}
        self.errors: Dict[str, int] = {}
        self.rejected: Dict[str, Dict[str, int]] = {}
        self.completed = 0
        self.retry_sleep = 0.0
        self.failure: Optional[BaseException] = None


def run_load(
    base_url: str,
    worker_schedules: Sequence[Sequence[LoadOp]],
    duration: Optional[float] = None,
    token: Optional[str] = None,
    timeout: float = 60.0,
    retry_backoff: float = 0.005,
    max_attempts: int = 1000,
    warmup: bool = True,
) -> LoadReport:
    """Drive a live server closed-loop; one thread per schedule.

    With ``duration`` set, every worker cycles its schedule until the
    wall-clock deadline (ops past the deadline are not started); with
    ``duration=None`` each worker makes exactly one pass.  ``warmup``
    primes every distinct ``detect_hit``/``ranking`` configuration
    once per lake before the clock starts, so "cache-hit" ops actually
    hit.  503 rejections are retried with ``retry_backoff`` seconds of
    sleep (up to ``max_attempts`` per op) and counted per lake and
    code; an op's latency spans all its retries.
    """
    workers = len(worker_schedules)
    if workers < 1:
        raise ValueError("run_load needs at least one worker schedule")
    warmup_seconds = 0.0
    if warmup:
        started = time.perf_counter()
        _warm_hit_configs(base_url, worker_schedules, token, timeout)
        warmup_seconds = time.perf_counter() - started

    deadline_box: List[Optional[float]] = [None]
    tallies = [_WorkerTally() for _ in range(workers)]
    start_barrier = threading.Barrier(workers + 1)
    threads = [
        threading.Thread(
            target=_worker,
            name=f"loadgen-{worker_id}",
            args=(
                base_url, list(schedule), duration, deadline_box,
                start_barrier, tallies[worker_id], token, timeout,
                retry_backoff, max_attempts,
            ),
        )
        for worker_id, schedule in enumerate(worker_schedules)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    # The deadline is stamped after every worker is ready, so slow
    # thread spawn never eats into the measured window.
    started = time.perf_counter()
    if duration is not None:
        deadline_box[0] = started + duration
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    for tally in tallies:
        if tally.failure is not None:
            raise tally.failure

    overall = LatencyHistogram()
    by_lake: Dict[str, LatencyHistogram] = {}
    by_kind: Dict[str, LatencyHistogram] = {}
    errors: Dict[str, int] = {}
    rejected: Dict[str, Dict[str, int]] = {}
    completed = 0
    retry_sleep = 0.0
    for tally in tallies:
        overall.merge(tally.overall)
        completed += tally.completed
        retry_sleep += tally.retry_sleep
        for lake, hist in tally.by_lake.items():
            by_lake.setdefault(lake, LatencyHistogram()).merge(hist)
        for kind, hist in tally.by_kind.items():
            by_kind.setdefault(kind, LatencyHistogram()).merge(hist)
        for code, count in tally.errors.items():
            errors[code] = errors.get(code, 0) + count
        for lake, by_code in tally.rejected.items():
            bucket = rejected.setdefault(lake, {})
            for code, count in by_code.items():
                bucket[code] = bucket.get(code, 0) + count
    return LoadReport(
        duration_s=elapsed,
        workers=workers,
        completed=completed,
        errors=errors,
        rejected=rejected,
        overall=overall,
        by_lake=by_lake,
        by_kind=by_kind,
        retry_sleep_s=retry_sleep,
        warmup_s=warmup_seconds,
    )


def _warm_hit_configs(
    base_url: str,
    worker_schedules: Sequence[Sequence[LoadOp]],
    token: Optional[str],
    timeout: float,
) -> None:
    """Prime every (lake, warm-config) pair the schedules will hit."""
    configs = {}
    for schedule in worker_schedules:
        for op in schedule:
            if op.kind not in ("detect_hit", "ranking"):
                continue
            request = {
                key: value
                for key, value in op.request.items()
                if key != "limit"
            }
            configs[(op.lake, tuple(sorted(request.items())))] = (
                op.lake, request
            )
    with HomographClient(
        base_url, timeout=timeout, token=token, keep_alive=True
    ) as client:
        for lake, request in configs.values():
            client.lake(lake).detect(**request)


def _worker(
    base_url: str,
    schedule: List[LoadOp],
    duration: Optional[float],
    deadline_box: List[Optional[float]],
    start_barrier: threading.Barrier,
    tally: _WorkerTally,
    token: Optional[str],
    timeout: float,
    retry_backoff: float,
    max_attempts: int,
) -> None:
    client = HomographClient(
        base_url, timeout=timeout, token=token, keep_alive=True
    )
    handles = {
        lake: client.lake(lake) for lake in {op.lake for op in schedule}
    }
    try:
        start_barrier.wait()
        deadline = deadline_box[0]
        position = 0
        while schedule:
            if duration is None and position >= len(schedule):
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
            op = schedule[position % len(schedule)]
            cycle = position // len(schedule)
            position += 1
            _run_one(
                handles[op.lake], op, cycle, deadline, tally,
                retry_backoff, max_attempts,
            )
    except BaseException as error:  # noqa: BLE001 - surfaced on join
        tally.failure = error
    finally:
        client.close()


def _run_one(
    handle: HomographClient,
    op: LoadOp,
    cycle: int,
    deadline: Optional[float],
    tally: _WorkerTally,
    retry_backoff: float,
    max_attempts: int,
) -> None:
    """Execute one op, retrying 503s; record its latency or error."""
    started = time.perf_counter()
    attempts = 0
    while True:
        try:
            _execute(handle, op, cycle)
        except ServiceError as error:
            if error.overloaded and attempts < max_attempts and (
                deadline is None or time.perf_counter() < deadline
            ):
                attempts += 1
                by_code = tally.rejected.setdefault(op.lake, {})
                by_code[error.code] = by_code.get(error.code, 0) + 1
                tally.retry_sleep += retry_backoff
                time.sleep(retry_backoff)
                continue
            _count(tally.errors, error.code)
            return
        except JobFailed:
            _count(tally.errors, "job-failed")
            return
        except (OSError, TimeoutError) as error:
            _count(tally.errors, type(error).__name__)
            return
        break
    elapsed = time.perf_counter() - started
    tally.overall.record(elapsed)
    tally.by_lake.setdefault(
        op.lake, LatencyHistogram()
    ).record(elapsed)
    tally.by_kind.setdefault(
        op.kind, LatencyHistogram()
    ).record(elapsed)
    tally.completed += 1


def _count(counter: Dict[str, int], key: str) -> None:
    counter[key] = counter.get(key, 0) + 1


def _execute(handle: HomographClient, op: LoadOp, cycle: int) -> None:
    """Issue one op's requests through a lake-scoped client handle."""
    request = dict(op.request)
    if op.kind in ("detect_hit", "detect_miss"):
        handle.detect(**request)
    elif op.kind == "ranking":
        limit = int(request.pop("limit", 100))
        measure = str(request.pop("measure"))
        handle.ranking_page(measure, limit=limit, **request)
    elif op.kind == "job":
        job_id = handle.submit(**request)
        handle.wait(job_id, timeout=handle.timeout, interval=0.01)
    elif op.kind == "mutate":
        # Suffix per (worker thread, cycle): schedule repeats and
        # sibling workers must never collide on a table name.
        name = (
            f"{op.request['name']}-"
            f"{threading.get_ident() & 0xFFFF:04x}-{cycle}"
        )
        columns = {
            column: list(values)
            for column, values in dict(op.request["columns"]).items()
        }
        handle.add_table(Table.from_columns(name, columns))
        handle.remove_table(name)
    else:
        raise ValueError(f"unknown op kind {op.kind!r}")
