"""Benchmark data generators and ground truth.

* :mod:`repro.bench.synthetic` — the SB benchmark (13 tables, 55
  planted homographs; paper §4.1).
* :mod:`repro.bench.tus` — the TUS-like sliced benchmark with
  unionability ground truth (paper §4.2).
* :mod:`repro.bench.injection` — TUS-I homograph removal and
  controlled injection (paper §4.3), plus adversarial homoglyph
  forging against :mod:`repro.core.confusables`.
* :mod:`repro.bench.scale` — the NYC-scale lake and footnote-9
  subgraph extraction (paper §5.4).
* :mod:`repro.bench.loadgen` — closed-loop HTTP load generator for
  the serving tier (kept out of this namespace so importing the data
  generators never pulls in the serving client; import it directly).
* :mod:`repro.bench.report` — shared ``BENCH_*.json`` schema
  validation and section-update helpers.
"""

from .ground_truth import LakeGroundTruth, label_lake, meanings_range
from .injection import (
    ForgeConfig,
    ForgedLake,
    Forgery,
    InjectedLake,
    InjectionConfig,
    InjectionError,
    forge_homoglyphs,
    inject_homographs,
    injection_recovery,
    remove_homographs,
)
from .scale import ScaleConfig, extract_subgraphs, generate_scale_lake
from .synthetic import SB_ATTRIBUTE_TYPES, SBConfig, SBDataset, generate_sb
from .tus import Domain, TUSConfig, TUSDataset, generate_tus
from .vocab import (
    PLANTED_HOMOGRAPHS,
    Vocabulary,
    build_vocabularies,
    planted_homographs_normalized,
)

__all__ = [
    "Domain",
    "ForgeConfig",
    "ForgedLake",
    "Forgery",
    "InjectedLake",
    "InjectionConfig",
    "InjectionError",
    "LakeGroundTruth",
    "PLANTED_HOMOGRAPHS",
    "SBConfig",
    "SBDataset",
    "SB_ATTRIBUTE_TYPES",
    "ScaleConfig",
    "TUSConfig",
    "TUSDataset",
    "Vocabulary",
    "build_vocabularies",
    "extract_subgraphs",
    "forge_homoglyphs",
    "generate_scale_lake",
    "generate_sb",
    "generate_tus",
    "inject_homographs",
    "injection_recovery",
    "label_lake",
    "meanings_range",
    "planted_homographs_normalized",
    "remove_homographs",
]
