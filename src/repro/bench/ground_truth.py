"""Ground-truth homograph labeling.

Both benchmarks derive labels the same way the paper does (Definition 2,
§4.2): every attribute belongs to a *unionability group* (for SB this is
its semantic type; for the TUS-like benchmark it is the seed column it
was sliced from), and a value is a homograph iff it appears in
attributes from at least two different groups.  The number of distinct
groups a value touches is its number of meanings (the ``#M`` column of
Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Set, Tuple

from ..datalake.lake import DataLake
from ..datalake.profiling import value_attribute_index


@dataclass
class LakeGroundTruth:
    """Labels for one benchmark lake.

    Attributes
    ----------
    attribute_groups:
        Qualified attribute name -> unionability-group label.  Two
        attributes are unionable iff they map to the same label.
    homographs:
        Normalized values with >= 2 meanings.
    meanings:
        Normalized value -> number of distinct groups it appears in
        (only values appearing in the lake are present).
    """

    attribute_groups: Dict[str, str]
    homographs: Set[str] = field(default_factory=set)
    meanings: Dict[str, int] = field(default_factory=dict)

    def is_homograph(self, value: str) -> bool:
        return value in self.homographs

    def labels(self) -> Dict[str, bool]:
        """Value -> is-homograph for every value in the lake."""
        return {
            value: value in self.homographs for value in self.meanings
        }


def label_lake(
    lake: DataLake, attribute_groups: Mapping[str, str]
) -> LakeGroundTruth:
    """Compute homograph labels from attribute group assignments.

    Attributes missing from ``attribute_groups`` raise ``KeyError`` —
    a benchmark must label every attribute, or the ground truth would be
    silently wrong.
    """
    index = value_attribute_index(lake)
    meanings: Dict[str, int] = {}
    homographs: Set[str] = set()
    for value, attributes in index.items():
        groups = {attribute_groups[attr] for attr in attributes}
        meanings[value] = len(groups)
        if len(groups) >= 2:
            homographs.add(value)
    return LakeGroundTruth(
        attribute_groups=dict(attribute_groups),
        homographs=homographs,
        meanings=meanings,
    )


def meanings_range(truth: LakeGroundTruth) -> Tuple[int, int]:
    """(min, max) number of meanings among the homographs."""
    counts = [truth.meanings[v] for v in truth.homographs]
    if not counts:
        return (0, 0)
    return (min(counts), max(counts))
