"""The shared shape of ``BENCH_*.json`` artifacts.

Every PR's benchmark writes a ``BENCH_PR<n>.json`` at the repo root so
reviewers can diff numbers across commits.  Until PR 8 the shape was a
convention enforced by eyeball; this module makes it a contract:

* a report is a non-empty JSON object;
* it carries a ``_meta`` object (scale knob, notes, machine facts);
* every other top-level key is a non-empty *section* object whose
  leaves are JSON-safe scalars (strings, bools, finite numbers,
  ``None``) or lists/objects of the same — no NaN/Infinity, which
  ``json.dumps`` would happily emit and every strict parser would
  then reject.

:func:`validate_bench_report` returns the list of violations (empty
means conformant) so ``tests/test_bench_schema.py`` can assert on
every artifact in one parametrized sweep.  :func:`update_bench_section`
is the read-modify-write helper benchmarks use so two tests touching
the same ``BENCH_*.json`` (e.g. the mixed-load and fairness scenarios
of PR 8) compose instead of clobbering each other.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

_SCALARS = (str, bool, int, float, type(None))


def validate_bench_report(data: object) -> List[str]:
    """Check one parsed ``BENCH_*.json`` against the shared schema.

    Returns a list of human-readable problems; an empty list means the
    report conforms.  The checks, in order: top level is a non-empty
    dict, ``_meta`` exists and is a dict, at least one non-meta
    section exists, every section is a non-empty dict, and every leaf
    value is a JSON-safe scalar or a list/dict of the same with finite
    numbers throughout.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    if not data:
        return ["report is empty"]
    meta = data.get("_meta")
    if meta is None:
        problems.append("missing '_meta' section")
    elif not isinstance(meta, dict):
        problems.append(
            f"'_meta' must be an object, got {type(meta).__name__}"
        )
    sections = {key: value for key, value in data.items() if key != "_meta"}
    if not sections:
        problems.append("no result sections besides '_meta'")
    for name, section in sections.items():
        if not isinstance(section, dict):
            problems.append(
                f"section {name!r} must be an object, "
                f"got {type(section).__name__}"
            )
            continue
        if not section:
            problems.append(f"section {name!r} is empty")
    for name, value in data.items():
        problems.extend(_check_value(name, value))
    return problems


def _check_value(path: str, value: object) -> List[str]:
    """Recursively verify one value is JSON-safe with finite numbers."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return []
    if isinstance(value, (int, float)):
        if isinstance(value, float) and not math.isfinite(value):
            return [f"{path}: non-finite number {value!r}"]
        return []
    if isinstance(value, list):
        problems: List[str] = []
        for index, item in enumerate(value):
            problems.extend(_check_value(f"{path}[{index}]", item))
        return problems
    if isinstance(value, dict):
        problems = []
        for key, item in value.items():
            if not isinstance(key, str):
                problems.append(
                    f"{path}: non-string key {key!r}"
                )
                continue
            problems.extend(_check_value(f"{path}.{key}", item))
        return problems
    return [f"{path}: non-JSON value of type {type(value).__name__}"]


def update_bench_section(
    path: Union[str, Path],
    section: str,
    payload: Mapping[str, object],
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Merge one section into a ``BENCH_*.json``, creating it if absent.

    Reads the existing report (tolerating a missing or unreadable
    file by starting fresh), replaces ``report[section]``, merges
    ``meta`` keys into ``_meta``, validates the result against the
    shared schema (raising ``ValueError`` on violations — a benchmark
    must never publish a malformed artifact), and writes it back with
    the repo-wide ``indent=2, sort_keys=True`` convention.  Returns
    the full report that was written.
    """
    path = Path(path)
    report: Dict[str, object] = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            loaded = None
        if isinstance(loaded, dict):
            report = loaded
    report[section] = dict(payload)
    existing_meta = report.get("_meta")
    merged_meta: Dict[str, object] = (
        dict(existing_meta) if isinstance(existing_meta, dict) else {}
    )
    if meta:
        merged_meta.update(meta)
    report["_meta"] = merged_meta
    problems = validate_bench_report(report)
    if problems:
        raise ValueError(
            f"refusing to write malformed {path.name}: "
            + "; ".join(problems)
        )
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report
