"""Lake artifacts inside a snapshot: CSR graph, vocab, scores, tables.

:mod:`repro.snapshot.store` owns the container (atomic writes, hashes,
format gating); this module knows what actually goes inside one and
how to turn it back into live objects:

* ``graph/indptr.npy`` / ``graph/indices.npy`` — the CSR adjacency,
  written with :func:`numpy.save` and loaded with
  ``np.load(mmap_mode="r")`` so a cold start maps the arrays instead
  of rebuilding them (milliseconds instead of a full graph build);
* ``vocab.json`` — value and attribute vocabularies, in node-id order;
* ``lake.json`` — every table, cell for cell, so a loaded index keeps
  the full mutation surface (``add_table`` after a load rebuilds from
  this lake exactly as a fresh index would);
* ``profiles.json`` — the attribute profiles
  (:func:`repro.datalake.profiling.profile_attributes`), precomputed
  for catalog consumers;
* ``scores/NNNN.json`` — the per-``(measure, config)`` score cache:
  one serialized :class:`~repro.api.DetectResponse` (with its
  embedded request) per entry, re-keyed on load so pre-warmed
  configurations answer ``cached=True`` byte-for-byte.

Every loader failure surfaces as a typed
:class:`~repro.snapshot.store.SnapshotError` subclass — a truncated
``.npy``, a vocabulary/CSR size mismatch, or a malformed score payload
never leaks a raw numpy/OS exception to the caller.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..api.requests import DetectResponse
from ..core.graph import BipartiteGraph
from ..datalake.lake import DataLake
from ..datalake.profiling import profile_attributes
from ..datalake.table import Table
from .store import (
    JOBS_DIRNAME,
    OPLOG_NAME,
    SnapshotCorruptionError,
    load_manifest,
    write_snapshot,
)

#: Relative artifact paths inside a snapshot directory.
INDPTR_FILE = "graph/indptr.npy"
INDICES_FILE = "graph/indices.npy"
VOCAB_FILE = "vocab.json"
LAKE_FILE = "lake.json"
PROFILES_FILE = "profiles.json"
SCORES_DIRNAME = "scores"


@dataclass
class LoadedSnapshot:
    """Everything a snapshot load rehydrates, ready for an index.

    ``graph`` holds mmap-backed CSR arrays when the load used
    ``mmap=True`` (the default): the snapshot directory must then
    outlive the graph.  ``responses`` are the pre-warmed score-cache
    entries, each carrying its originating request.
    """

    path: Path
    manifest: Dict[str, object]
    lake: DataLake
    graph: BipartiteGraph
    graph_seconds: float
    prune_candidates: bool
    responses: List[DetectResponse] = field(default_factory=list)


def _write_json(path: Path, payload: object) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, sort_keys=True), encoding="utf-8"
    )


def build_snapshot(
    target: Union[str, os.PathLike],
    lake: DataLake,
    graph: BipartiteGraph,
    prune_candidates: bool,
    graph_seconds: float = 0.0,
    responses: Sequence[DetectResponse] = (),
) -> Dict[str, object]:
    """Write one snapshot atomically; returns the published manifest.

    ``responses`` become the pre-warmed score cache; entries without
    an embedded request are skipped (they could not be re-keyed on
    load).  The runtime ``jobs/`` area is created so a server pointed
    at the snapshot can spill job results immediately — and when the
    snapshot replaces an earlier one at the same path, the previous
    spill files are carried over (best-effort), so re-publishing a
    served snapshot never discards the async jobs a restarted server
    would otherwise restore.

    The replication ``oplog.jsonl`` a primary may have appended next
    to the previous snapshot is deliberately *not* carried over:
    every logged mutation is already baked into the republished
    artifacts, so the republish starts a fresh oplog epoch and
    replicas re-bootstrap from the new snapshot instead of replaying
    a stale log (see ``docs/cluster.md``).
    """
    import shutil
    import time

    from .. import __version__

    kept = [r for r in responses if r.request is not None]

    def stage(staging: Path) -> Dict[str, object]:
        (staging / "graph").mkdir()
        np.save(staging / INDPTR_FILE, graph.indptr)
        np.save(staging / INDICES_FILE, graph.indices)
        _write_json(staging / VOCAB_FILE, {
            "values": graph.value_names,
            "attributes": graph.attribute_names,
        })
        _write_json(staging / LAKE_FILE, {
            "tables": [
                {
                    "name": table.name,
                    "columns": list(table.columns),
                    "rows": [list(row) for row in table.rows],
                }
                for table in lake
            ],
        })
        _write_json(staging / PROFILES_FILE, [
            {
                "qualified_name": profile.qualified_name,
                "table_name": profile.table_name,
                "column_name": profile.column_name,
                "num_rows": profile.num_rows,
                "num_distinct": profile.num_distinct,
                "num_empty": profile.num_empty,
                "kind": profile.kind,
            }
            for profile in profile_attributes(lake)
        ])
        for position, response in enumerate(kept):
            _write_json(
                staging / SCORES_DIRNAME / f"{position:04d}.json",
                response.to_dict(),
            )
        jobs_staging = staging / JOBS_DIRNAME
        jobs_staging.mkdir()
        previous_jobs = Path(target) / JOBS_DIRNAME
        if previous_jobs.is_dir():
            for spill in sorted(previous_jobs.glob("*.json")):
                try:
                    shutil.copy2(spill, jobs_staging / spill.name)
                except OSError:  # pragma: no cover - best effort
                    pass
        return {
            "library_version": __version__,
            "created_at": time.time(),
            "prune_candidates": bool(prune_candidates),
            "graph": {
                "num_values": graph.num_values,
                "num_attributes": graph.num_attributes,
                "num_edges": graph.num_edges,
                "graph_seconds": float(graph_seconds),
            },
            "scores": len(kept),
        }

    return write_snapshot(target, stage)


def _load_array(
    path: Path, relative: str, mmap: bool
) -> np.ndarray:
    """One CSR array, mmap-backed or copied, frozen either way."""
    try:
        array = np.load(path, mmap_mode="r" if mmap else None)
    except (OSError, ValueError) as error:
        raise SnapshotCorruptionError(
            f"snapshot array {relative!r} cannot be loaded: {error}"
        ) from None
    if array.ndim != 1 or array.dtype != np.int64:
        raise SnapshotCorruptionError(
            f"snapshot array {relative!r} has shape {array.shape} and "
            f"dtype {array.dtype}; expected one-dimensional int64"
        )
    # mmap_mode="r" arrays are born read-only; freeze copies too so
    # the PR-2 writeable=False invariant holds on every load path.
    array.flags.writeable = False
    return array


def _load_json(root: Path, relative: str) -> object:
    try:
        return json.loads(
            (root / relative).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotCorruptionError(
            f"snapshot artifact {relative!r} cannot be parsed: {error}"
        ) from None


def _load_lake(root: Path) -> DataLake:
    payload = _load_json(root, LAKE_FILE)
    try:
        tables = [
            Table(
                name=entry["name"],
                columns=list(entry["columns"]),
                rows=[list(row) for row in entry["rows"]],
            )
            for entry in payload["tables"]
        ]
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotCorruptionError(
            f"snapshot artifact {LAKE_FILE!r} does not describe a "
            f"lake: {error}"
        ) from None
    return DataLake(tables)


def _load_responses(root: Path, count: int) -> List[DetectResponse]:
    responses = []
    for position in range(count):
        relative = f"{SCORES_DIRNAME}/{position:04d}.json"
        payload = _load_json(root, relative)
        try:
            response = DetectResponse.from_dict(payload)
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotCorruptionError(
                f"snapshot score entry {relative!r} is not a "
                f"DetectResponse payload: {error}"
            ) from None
        if response.request is None:
            raise SnapshotCorruptionError(
                f"snapshot score entry {relative!r} carries no "
                f"request; it cannot be re-keyed into the cache"
            )
        responses.append(response)
    return responses


def load_snapshot(
    path: Union[str, os.PathLike],
    verify: bool = True,
    mmap: bool = True,
) -> LoadedSnapshot:
    """Rehydrate one snapshot directory into live objects.

    ``verify=True`` (default) checks every manifested file's sha256
    before anything is parsed; ``mmap=True`` maps the CSR arrays
    read-only instead of copying them into memory.  All failures
    raise :class:`~repro.snapshot.store.SnapshotError` subclasses.
    """
    root = Path(path)
    manifest = load_manifest(root, verify=verify)
    graph_meta = manifest.get("graph")
    if not isinstance(graph_meta, dict):
        raise SnapshotCorruptionError(
            f"snapshot manifest at {root} carries no 'graph' block"
        )
    vocab = _load_json(root, VOCAB_FILE)
    try:
        value_names = [str(name) for name in vocab["values"]]
        attribute_names = [str(name) for name in vocab["attributes"]]
    except (KeyError, TypeError) as error:
        raise SnapshotCorruptionError(
            f"snapshot artifact {VOCAB_FILE!r} is not a vocabulary: "
            f"{error}"
        ) from None
    indptr = _load_array(root / INDPTR_FILE, INDPTR_FILE, mmap)
    indices = _load_array(root / INDICES_FILE, INDICES_FILE, mmap)
    try:
        graph = BipartiteGraph.from_csr(
            value_names, attribute_names, indptr, indices
        )
    except ValueError as error:
        raise SnapshotCorruptionError(
            f"snapshot CSR arrays are inconsistent with the "
            f"vocabulary: {error}"
        ) from None
    expected = (
        graph_meta.get("num_values"),
        graph_meta.get("num_attributes"),
        graph_meta.get("num_edges"),
    )
    actual = (graph.num_values, graph.num_attributes, graph.num_edges)
    if expected != actual:
        raise SnapshotCorruptionError(
            f"snapshot graph at {root} is "
            f"{actual[0]} values / {actual[1]} attributes / "
            f"{actual[2]} edges; manifest expects "
            f"{expected[0]} / {expected[1]} / {expected[2]}"
        )
    score_count = manifest.get("scores")
    if not isinstance(score_count, int) or score_count < 0:
        raise SnapshotCorruptionError(
            f"snapshot manifest at {root} carries an invalid "
            f"'scores' count: {score_count!r}"
        )
    return LoadedSnapshot(
        path=root,
        manifest=manifest,
        lake=_load_lake(root),
        graph=graph,
        graph_seconds=float(graph_meta.get("graph_seconds", 0.0)),
        prune_candidates=bool(manifest.get("prune_candidates", True)),
        responses=_load_responses(root, score_count),
    )


def jobs_dir(path: Union[str, os.PathLike]) -> Optional[Path]:
    """The runtime job-spill directory inside a snapshot, if usable.

    Creates ``<snapshot>/jobs`` when the snapshot exists but the area
    does not (older snapshots); returns ``None`` for paths that are
    not snapshot directories.
    """
    root = Path(path)
    from .store import is_snapshot

    if not is_snapshot(root):
        return None
    area = root / JOBS_DIRNAME
    try:
        area.mkdir(exist_ok=True)
    except OSError:
        return None
    return area


def oplog_path(path: Union[str, os.PathLike]) -> Optional[Path]:
    """Where a primary's replication oplog lives inside a snapshot.

    Returns ``<snapshot>/oplog.jsonl`` (the file itself may not exist
    yet — :class:`~repro.cluster.MutationLog` creates it), or ``None``
    for paths that are not snapshot directories.  Like ``jobs/``, the
    oplog is runtime state: it is excluded from manifest hashing and
    is *not* carried over when the snapshot is republished.
    """
    root = Path(path)
    from .store import is_snapshot

    if not is_snapshot(root):
        return None
    return root / OPLOG_NAME
