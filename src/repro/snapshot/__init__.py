"""Snapshot persistence: versioned on-disk lake artifacts.

Rebuilding a served lake from CSVs — re-profiling, re-normalizing,
re-building the bipartite graph, re-scoring — costs minutes at TUS
scale; a restart or a new replica should not pay it.  This package
turns a built :class:`~repro.api.HomographIndex` into a directory of
versioned artifacts and back:

* :mod:`repro.snapshot.store` — the container: atomic directory
  publication (staging dir + fsync + rename), a ``manifest.json``
  with format version, library version, and sha256 content hashes,
  and the typed :class:`SnapshotError` surface loaders raise instead
  of raw numpy/OS errors;
* :mod:`repro.snapshot.artifacts` — the payload: CSR arrays saved
  with :func:`numpy.save` and mapped back with
  ``np.load(mmap_mode="r")``, vocabularies, the full lake, attribute
  profiles, and the serialized score cache.

The high-level entry points live on the API objects::

    index.save("snapshots/zoo")                  # build + publish
    index = HomographIndex.load("snapshots/zoo")  # mmap, no rebuild
    workspace.attach("zoo", "snapshots/zoo")      # auto-detected

and the CLI mirrors them as ``domainnet snapshot build`` /
``domainnet serve --snapshot``.  See ``docs/persistence.md`` for the
format and the zero-downtime restart recipe.
"""

from .artifacts import (
    LoadedSnapshot,
    build_snapshot,
    jobs_dir,
    load_snapshot,
    oplog_path,
)
from .store import (
    FORMAT_VERSION,
    OPLOG_NAME,
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotVersionError,
    is_snapshot,
    load_manifest,
    write_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "LoadedSnapshot",
    "OPLOG_NAME",
    "SnapshotCorruptionError",
    "SnapshotError",
    "SnapshotVersionError",
    "build_snapshot",
    "is_snapshot",
    "jobs_dir",
    "load_manifest",
    "load_snapshot",
    "oplog_path",
    "write_snapshot",
]
