"""On-disk snapshot store: atomic directory writes, verified loads.

A snapshot is a plain directory whose contents are described — and
integrity-protected — by a ``manifest.json`` at its root.  This module
owns the *container* concerns so :mod:`repro.snapshot.artifacts` can
deal purely in lake artifacts:

* the typed error surface (:class:`SnapshotError` and friends) —
  loaders never leak raw :class:`OSError` / numpy ``ValueError`` /
  ``KeyError`` at a corrupt snapshot, they raise these instead;
* :func:`write_snapshot`, the atomic publisher: artifacts are staged
  into a temp directory next to the target, every file (and the
  directory itself) is fsynced, the manifest is written last, and one
  ``os.rename`` makes the snapshot visible — a crash mid-build leaves
  either the old snapshot or none, never a torn one;
* :func:`load_manifest`, the verified reader: format-version gate
  (a snapshot from a *newer* library raises
  :class:`SnapshotVersionError` instead of misparsing) and sha256
  content-hash verification of every manifested file.

The manifest schema (format 1)::

    {
      "format": 1,
      "library_version": "1.6.0",
      "created_at": 1723111200.0,
      "prune_candidates": true,
      "graph": {"num_values": ..., "num_attributes": ...,
                "num_edges": ..., "graph_seconds": ...},
      "scores": 2,
      "files": {"graph/indptr.npy": {"bytes": N, "sha256": "..."}, ...}
    }

``files`` covers every artifact the loader reads.  Two pieces of
*runtime* state live inside a snapshot directory and are therefore
never manifested — they may mutate after the build without breaking
verification:

* ``jobs/`` — the :class:`~repro.serving.jobs.JobManager` spill area;
* ``oplog.jsonl`` — the replication mutation log a primary appends to
  (see :mod:`repro.cluster.replicate`).  Republishing a snapshot via
  :func:`write_snapshot` swaps the whole directory, so the oplog is
  intentionally *not* carried over: the republished artifacts already
  contain every logged mutation, and replicas detect the fresh epoch
  and re-bootstrap.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Dict, Union

#: Snapshot layout version understood by this build.  Bumped on
#: incompatible layout changes; loaders reject anything newer.
FORMAT_VERSION = 1

#: The manifest file name; its presence marks a directory as a snapshot.
MANIFEST_NAME = "manifest.json"

#: Runtime subdirectory excluded from manifest hashing (job spill area).
JOBS_DIRNAME = "jobs"

#: Runtime replication log excluded from manifest hashing: the primary
#: appends every applied mutation here (see repro.cluster.replicate).
OPLOG_NAME = "oplog.jsonl"


class SnapshotError(RuntimeError):
    """Base class for every snapshot build/load failure."""


class SnapshotCorruptionError(SnapshotError):
    """A snapshot exists but cannot be trusted.

    Raised for missing or truncated artifact files, content-hash
    mismatches, and unparseable manifests — anything where the bytes
    on disk do not match what the manifest promised.
    """


class SnapshotVersionError(SnapshotError):
    """The snapshot's format version is newer than this build reads."""


def is_snapshot(path: Union[str, os.PathLike]) -> bool:
    """Whether ``path`` looks like a snapshot directory.

    True when it is a directory containing a ``manifest.json`` — the
    cheap dispatch test :meth:`repro.Workspace.attach` uses to decide
    between the snapshot loader and the CSV lake loader.  No
    verification happens here.
    """
    try:
        return Path(path).joinpath(MANIFEST_NAME).is_file()
    except OSError:
        return False


def file_sha256(path: Path) -> str:
    """Streaming sha256 of one file (hex digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _fsync_path(path: Path) -> None:
    """fsync one file or directory, ignoring filesystems that refuse.

    Directory fsync is required for the rename to be durable on POSIX;
    some filesystems (and platforms) reject ``os.open`` on
    directories, in which case the write is still atomic, just not
    crash-durable — the best the platform offers.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def hash_tree(root: Path) -> Dict[str, Dict[str, object]]:
    """The manifest ``files`` table for a staged snapshot directory.

    Walks every regular file under ``root`` except the manifest
    itself, anything under the runtime ``jobs/`` area, and the
    runtime ``oplog.jsonl`` replication log; keys are ``/``-separated
    relative paths so manifests are portable across platforms.
    """
    table: Dict[str, Dict[str, object]] = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(root)
        if relative.name == MANIFEST_NAME and len(relative.parts) == 1:
            continue
        if relative.name == OPLOG_NAME and len(relative.parts) == 1:
            continue
        if relative.parts and relative.parts[0] == JOBS_DIRNAME:
            continue
        table[relative.as_posix()] = {
            "bytes": path.stat().st_size,
            "sha256": file_sha256(path),
        }
    return table


def write_snapshot(
    target: Union[str, os.PathLike],
    stage: Callable[[Path], Dict[str, object]],
) -> Dict[str, object]:
    """Build a snapshot at ``target`` atomically; returns its manifest.

    ``stage`` is called with an empty temporary directory (created
    next to ``target``, so the final rename never crosses a
    filesystem) and must write every artifact file into it, returning
    the manifest *header* — everything except ``format`` and
    ``files``, which this function fills in after hashing the staged
    tree.  Publication order: artifact files → manifest → fsync of
    every file and the staged directory → rename into place (an
    existing snapshot at ``target`` is swapped out and deleted only
    after the new one is visible).
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(tempfile.mkdtemp(
        prefix=f".{target.name}.staging-", dir=target.parent
    ))
    try:
        header = stage(staging)
        manifest: Dict[str, object] = dict(header)
        manifest["format"] = FORMAT_VERSION
        manifest["files"] = hash_tree(staging)
        manifest_path = staging / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        for path in sorted(staging.rglob("*")):
            if path.is_file():
                _fsync_path(path)
        _fsync_path(staging)
        previous = None
        if target.exists():
            # os.rename cannot replace a non-empty directory: swap the
            # old snapshot aside first, remove it once the new one is
            # in place.
            previous = Path(tempfile.mkdtemp(
                prefix=f".{target.name}.previous-", dir=target.parent
            ))
            os.rename(target, previous / "snapshot")
        os.rename(staging, target)
        _fsync_path(target.parent)
        if previous is not None:
            shutil.rmtree(previous, ignore_errors=True)
        return manifest
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise


def load_manifest(
    path: Union[str, os.PathLike], verify: bool = True
) -> Dict[str, object]:
    """Read (and optionally hash-verify) a snapshot's manifest.

    Raises :class:`SnapshotCorruptionError` when the directory or
    manifest is missing/unparseable or a manifested file is absent,
    resized, or fails its sha256 check, and
    :class:`SnapshotVersionError` when the snapshot was written by a
    newer format than this build reads.  ``verify=False`` skips the
    (full-content) hash pass — the format and structural checks still
    run.
    """
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    try:
        raw = manifest_path.read_text(encoding="utf-8")
    except OSError as error:
        raise SnapshotCorruptionError(
            f"no readable snapshot manifest at {manifest_path}: {error}"
        ) from None
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as error:
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path} is not valid JSON: "
            f"{error}"
        ) from None
    if not isinstance(manifest, dict):
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path} must be a JSON object"
        )
    fmt = manifest.get("format")
    if not isinstance(fmt, int):
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path} carries no integer "
            f"'format' field"
        )
    if fmt > FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot at {root} uses format {fmt}, but this build "
            f"reads format <= {FORMAT_VERSION}; upgrade the library "
            f"or rebuild the snapshot"
        )
    files = manifest.get("files")
    if not isinstance(files, dict):
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path} carries no 'files' table"
        )
    for relative, meta in files.items():
        artifact = root / relative
        if not artifact.is_file():
            raise SnapshotCorruptionError(
                f"snapshot artifact {relative!r} is missing from {root}"
            )
        expected_bytes = meta.get("bytes")
        actual_bytes = artifact.stat().st_size
        if actual_bytes != expected_bytes:
            raise SnapshotCorruptionError(
                f"snapshot artifact {relative!r} is {actual_bytes} "
                f"bytes; manifest expects {expected_bytes} (truncated "
                f"or overwritten?)"
            )
        if verify:
            actual = file_sha256(artifact)
            if actual != meta.get("sha256"):
                raise SnapshotCorruptionError(
                    f"snapshot artifact {relative!r} fails its content "
                    f"hash: manifest {meta.get('sha256')!r}, actual "
                    f"{actual!r}"
                )
    return manifest
