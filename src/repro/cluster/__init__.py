"""Replicated serving: one snapshot, N server processes, one URL.

A single ``domainnet serve`` process scales until one box saturates;
this package scales *reads* horizontally and survives process death
without dropping them:

* :mod:`repro.cluster.replicate` — the consistency substrate: the
  primary records every applied mutation in a durable
  ``oplog.jsonl`` inside the snapshot (:class:`MutationLog`), and
  :class:`OplogFollower` replays the tail into replicas through the
  ordinary mutation routes, converging them bit-identically;
* :mod:`repro.cluster.supervisor` — :class:`ReplicaSupervisor` owns
  the processes: spawn from one snapshot, version-check, health-probe,
  restart with capped backoff, resync, rolling restart;
* :mod:`repro.cluster.router` — :class:`ClusterRouter` is the front
  door: reads balance least-in-flight across healthy replicas, writes
  pin to the primary, ``/jobs/<id>`` sticks to the accepting replica,
  and a dead fleet answers a structured 503 ``no-healthy-replica``.

The CLI ties them together::

    domainnet snapshot build lake/ snapshots/zoo
    domainnet cluster snapshots/zoo --replicas 3 --port 8080

and any existing :class:`~repro.serving.client.HomographClient`
pointed at the router works unchanged.  See ``docs/cluster.md``.
"""

from typing import Optional, Tuple

from .replicate import (
    OPLOG_FORMAT,
    MutationLog,
    OplogError,
    OplogFollower,
    replay_entry,
)
from .router import (
    ClusterRouter,
    Replica,
    ReplicaSet,
    RouterRequestHandler,
    start_router,
)
from .supervisor import ReplicaSupervisor, ReplicaVersionMismatch

__all__ = [
    "ClusterRouter",
    "MutationLog",
    "OPLOG_FORMAT",
    "OplogError",
    "OplogFollower",
    "Replica",
    "ReplicaSet",
    "ReplicaSupervisor",
    "ReplicaVersionMismatch",
    "RouterRequestHandler",
    "replay_entry",
    "start_cluster",
    "start_router",
]


def start_cluster(
    snapshot_dir,
    replicas: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    token: Optional[str] = None,
    **supervisor_options,
) -> Tuple[ReplicaSupervisor, ClusterRouter]:
    """Spawn a fleet over ``snapshot_dir`` and a router in front of it.

    Returns ``(supervisor, router)`` with the fleet healthy and the
    router accepting on ``router.url``.  Extra keyword arguments go to
    :class:`ReplicaSupervisor`.  Shutdown order is router first, then
    supervisor::

        supervisor, router = start_cluster("snapshots/zoo", replicas=3)
        try:
            ...  # point HomographClient at router.url
        finally:
            router.drain()
            supervisor.stop()
    """
    supervisor = ReplicaSupervisor(
        snapshot_dir, replicas=replicas, host=host, token=token,
        **supervisor_options,
    )
    supervisor.start()
    try:
        router = start_router(
            supervisor.replicas,
            host=host,
            port=port,
            fleet_stats=supervisor.stats,
        )
    except BaseException:
        supervisor.stop()
        raise
    return supervisor, router
