"""Process supervision for a replicated serving fleet.

A :class:`ReplicaSupervisor` turns one snapshot directory into N
``domainnet serve`` *processes* sharing it read-mostly:

* the **primary** is spawned with ``--record-oplog`` — every mutation
  it applies lands in the snapshot's ``oplog.jsonl`` and is offered
  back over ``GET /lakes/<name>/oplog``;
* the **replicas** are vanilla ``serve`` processes over the same
  snapshot; the supervisor's sync loop runs one
  :class:`~repro.cluster.replicate.OplogFollower` per (replica, lake)
  and replays the primary's tail through each replica's ordinary
  mutation routes — the server-side delta splice makes replayed state
  bit-identical to the primary's.

Around that it provides the boring-but-critical operational loop:
banner parsing for ephemeral ports, ``/version`` fingerprint checks
before a process joins the fleet (mixed builds raise
:class:`ReplicaVersionMismatch` instead of silently diverging),
``/healthz`` probing, restart-on-death with capped exponential
backoff, re-bootstrap of replicas that fall too far behind (or cross
an oplog epoch boundary after a republish), and
:meth:`rolling_restart` — drain, respawn, resync, re-admit, one
process at a time, replicas before the primary, so a fleet upgrade
drops no reads.

The supervisor owns the :class:`~repro.cluster.router.ReplicaSet`; a
:class:`~repro.cluster.router.ClusterRouter` constructed over the same
set (see :func:`repro.cluster.start_cluster` and the
``domainnet cluster`` CLI) picks up health transitions immediately.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..serving.client import (
    HomographClient,
    ServiceError,
    ServiceUnavailable,
)
from .replicate import OplogFollower
from .router import Replica, ReplicaSet

#: Pattern the ``domainnet serve`` startup banner matches; group 1 is
#: the bound port (the child is spawned with ``--port 0``).
BANNER_PATTERN = re.compile(r"http://[^\s/]+:(\d+)")


class ReplicaVersionMismatch(RuntimeError):
    """Two fleet members answered ``GET /version`` incompatibly.

    Replicas replay the primary's mutations and must produce
    bit-identical rankings; a fleet mixing library or snapshot-format
    versions cannot promise that, so startup refuses it outright.
    """

    def __init__(self, expected: Dict, actual: Dict, name: str) -> None:
        super().__init__(
            f"replica {name!r} runs {actual!r}; the primary runs "
            f"{expected!r} — a fleet must be version-homogeneous"
        )
        self.expected = expected
        self.actual = actual
        self.replica = name


class _ServeProcess:
    """One spawned ``domainnet serve`` child and its stdout reader."""

    def __init__(self, command: List[str], env: Dict[str, str]) -> None:
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.url: Optional[str] = None
        self.banner = threading.Event()
        self.tail: "deque[str]" = deque(maxlen=50)
        self.reader = threading.Thread(
            target=self._read_stdout,
            name=f"domainnet-replica-log-{self.process.pid}",
            daemon=True,
        )
        self.reader.start()

    def _read_stdout(self) -> None:
        stream = self.process.stdout
        if stream is None:  # pragma: no cover - PIPE above
            return
        try:
            for line in stream:
                self.tail.append(line.rstrip("\n"))
                if not self.banner.is_set():
                    match = BANNER_PATTERN.search(line)
                    if match:
                        self.url = (
                            f"http://127.0.0.1:{match.group(1)}"
                        )
                        self.banner.set()
        except (OSError, ValueError):  # pragma: no cover - dying pipe
            pass
        finally:
            self.banner.set()
            try:
                stream.close()
            except OSError:  # pragma: no cover
                pass

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self, timeout: float = 10.0) -> None:
        """Stop the child (SIGTERM, then SIGKILL) and join the reader."""
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait(timeout=timeout)
        self.reader.join(timeout=timeout)


class ReplicaSupervisor:
    """Spawn, probe, heal, and resync a fleet over one snapshot.

    Parameters
    ----------
    snapshot_dir:
        The published snapshot every fleet member serves.  The
        primary's oplog lives inside it.
    replicas:
        Total fleet size including the primary (>= 1).
    host:
        Interface the children bind (127.0.0.1 by default).
    base_port:
        0 (default) lets every child pick an ephemeral port, parsed
        from its startup banner; a non-zero value assigns
        ``base_port + i`` to member *i* and keeps it across restarts.
    token:
        Optional bearer token: passed to every child's
        ``--auth-token`` and used by the supervisor's own probes.
    serve_args:
        Extra ``domainnet serve`` flags appended to every spawn
        (e.g. ``["--max-concurrent", "8"]``).
    health_interval / sync_interval:
        Cadence of the health-probe and oplog-sync loops, seconds.
    backoff_base / backoff_cap:
        Restart backoff after repeated child deaths: the k-th
        consecutive failure waits ``min(cap, base * 2**k)`` seconds.
    max_lag:
        A replica whose oplog lag exceeds this re-bootstraps (restart
        from the snapshot) instead of replaying the tail.
    startup_timeout:
        Seconds to wait for a child's banner + first healthy probe.
    """

    def __init__(
        self,
        snapshot_dir: Union[str, os.PathLike],
        replicas: int = 2,
        host: str = "127.0.0.1",
        base_port: int = 0,
        token: Optional[str] = None,
        serve_args: Sequence[str] = (),
        health_interval: float = 0.5,
        sync_interval: float = 0.2,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        max_lag: int = 1000,
        startup_timeout: float = 30.0,
    ) -> None:
        if replicas < 1:
            raise ValueError(
                f"a fleet needs at least one member, got {replicas}"
            )
        self.snapshot_dir = Path(snapshot_dir)
        if not self.snapshot_dir.is_dir():
            raise ValueError(
                f"snapshot directory {self.snapshot_dir} does not exist"
            )
        self.host = host
        self.base_port = base_port
        self.token = token
        self.serve_args = list(serve_args)
        self.health_interval = health_interval
        self.sync_interval = sync_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_lag = max_lag
        self.startup_timeout = startup_timeout
        members = [
            Replica(
                name="primary" if i == 0 else f"replica-{i}",
                role="primary" if i == 0 else "replica",
            )
            for i in range(replicas)
        ]
        self.replicas = ReplicaSet(members)
        self._processes: Dict[str, _ServeProcess] = {}
        self._clients: Dict[str, HomographClient] = {}
        self._followers: Dict[str, Dict[str, OplogFollower]] = {}
        self._failures: Dict[str, int] = {}
        self._next_restart: Dict[str, float] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lakes: List[str] = []
        self._fingerprint: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the fleet, verify versions, start the control loops."""
        if self._started:
            raise RuntimeError("the supervisor is already started")
        try:
            for replica in self.replicas:
                self._spawn(replica)
            self._check_versions()
            self._discover_lakes()
            for replica in self.replicas:
                if replica.role != "primary":
                    self._build_followers(replica)
        except BaseException:
            self.stop()
            raise
        self._started = True
        for name, target in (
            ("domainnet-fleet-health", self._health_loop),
            ("domainnet-fleet-sync", self._sync_loop),
        ):
            thread = threading.Thread(
                target=target, name=name, daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop the loops and terminate every child.  Idempotent."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads.clear()
        with self._lock:
            processes = list(self._processes.values())
            self._processes.clear()
            self._clients.clear()
            self._followers.clear()
        for process in processes:
            process.terminate()
        self._started = False

    def __enter__(self) -> "ReplicaSupervisor":
        """``with`` entry: start the fleet."""
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        """``with`` exit: stop the fleet."""
        self.stop()

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _port_for(self, replica: Replica) -> int:
        if self.base_port == 0:
            return 0
        index = list(self.replicas).index(replica)
        return self.base_port + index

    def _command(self, replica: Replica) -> List[str]:
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--snapshot", str(self.snapshot_dir),
            "--host", self.host,
            "--port", str(self._port_for(replica)),
        ]
        if replica.role == "primary":
            command.append("--record-oplog")
        if self.token is not None:
            command += ["--auth-token", self.token]
        command += self.serve_args
        return command

    def _env(self) -> Dict[str, str]:
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        return env

    def _spawn(self, replica: Replica) -> None:
        """Start one child and admit it once it serves ``/healthz``."""
        process = _ServeProcess(self._command(replica), self._env())
        if not process.banner.wait(timeout=self.startup_timeout):
            process.terminate()
            raise ServiceUnavailable(
                f"replica {replica.name}", self.startup_timeout
            )
        if process.url is None:
            detail = "\n".join(process.tail)
            process.terminate()
            raise RuntimeError(
                f"replica {replica.name} exited before binding a "
                f"port; output was:\n{detail}"
            )
        client = HomographClient(
            process.url, timeout=30.0, token=self.token
        )
        client.wait_ready(timeout=self.startup_timeout)
        with self._lock:
            self._processes[replica.name] = process
            self._clients[replica.name] = client
        replica.url = process.url
        replica.mark_healthy()
        self._failures[replica.name] = 0

    def client_for(self, replica: Replica) -> Optional[HomographClient]:
        """The supervisor's probe client for one fleet member."""
        with self._lock:
            return self._clients.get(replica.name)

    def _check_versions(self) -> None:
        """Refuse a fleet whose members answer ``/version`` unequally."""
        expected: Optional[Dict[str, object]] = None
        for replica in self.replicas:
            client = self.client_for(replica)
            if client is None:  # pragma: no cover - spawn precedes
                continue
            payload = client.version()
            fingerprint = {
                "library": payload.get("library"),
                "snapshot_format": payload.get("snapshot_format"),
            }
            if expected is None:
                expected = fingerprint
            elif fingerprint != expected:
                raise ReplicaVersionMismatch(
                    expected, fingerprint, replica.name
                )
        self._fingerprint = expected

    def _discover_lakes(self) -> None:
        primary = self.client_for(self.replicas.primary)
        assert primary is not None
        listing = primary.lakes()
        names = [
            str(entry["name"]) if isinstance(entry, dict) else str(entry)
            for entry in listing.get("lakes", [])
        ]
        self._lakes = names

    def _build_followers(self, replica: Replica) -> None:
        """One follower per lake the primary records an oplog for."""
        primary = self.client_for(self.replicas.primary)
        client = self.client_for(replica)
        if primary is None or client is None:
            return
        followers: Dict[str, OplogFollower] = {}
        for lake in self._lakes:
            try:
                primary.lake(lake).oplog(since=0)
            except ServiceError as error:
                if error.code == "no-oplog":
                    continue
                raise
            followers[lake] = OplogFollower(
                primary.lake(lake), client.lake(lake)
            )
        with self._lock:
            self._followers[replica.name] = followers

    # ------------------------------------------------------------------
    # Health loop
    # ------------------------------------------------------------------
    def _health_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            for replica in self.replicas:
                if self._stop.is_set():
                    return
                if replica.draining:
                    continue
                try:
                    self._probe(replica)
                except Exception:  # noqa: BLE001 - loop must survive
                    pass

    def _probe(self, replica: Replica) -> None:
        with self._lock:
            process = self._processes.get(replica.name)
        if process is None or not process.alive():
            replica.mark_unhealthy()
            self._maybe_restart(replica)
            return
        client = self.client_for(replica)
        if client is None:  # pragma: no cover - paired with process
            return
        try:
            client.healthz()
        except ServiceError:
            # Reachable but refusing (e.g. draining): keep it out of
            # the pool without burning a restart.
            replica.mark_unhealthy()
        except (ConnectionError, OSError):
            replica.mark_unhealthy()
        else:
            replica.mark_healthy()
            self._failures[replica.name] = 0

    def _maybe_restart(self, replica: Replica) -> None:
        """Respawn a dead child, honoring the exponential backoff."""
        now = time.monotonic()
        due = self._next_restart.get(replica.name, 0.0)
        if now < due:
            return
        failures = self._failures.get(replica.name, 0)
        delay = min(
            self.backoff_cap, self.backoff_base * (2 ** failures)
        )
        self._failures[replica.name] = failures + 1
        self._next_restart[replica.name] = now + delay
        self._restart(replica)

    def _restart(self, replica: Replica) -> bool:
        """Tear one member down and bring a fresh child up in place."""
        with self._lock:
            process = self._processes.pop(replica.name, None)
            self._clients.pop(replica.name, None)
            self._followers.pop(replica.name, None)
        if process is not None:
            process.terminate()
        try:
            self._spawn(replica)
        except Exception:  # noqa: BLE001 - backoff covers retries
            replica.mark_unhealthy()
            return False
        replica.restarts += 1
        replica.applied_seq = 0
        replica.oplog_lag = 0
        if replica.role != "primary":
            try:
                self._build_followers(replica)
            except Exception:  # noqa: BLE001 - next sync pass retries
                pass
        self._next_restart.pop(replica.name, None)
        return True

    # ------------------------------------------------------------------
    # Oplog sync loop
    # ------------------------------------------------------------------
    def _sync_loop(self) -> None:
        while not self._stop.wait(self.sync_interval):
            for replica in self.replicas:
                if self._stop.is_set():
                    return
                if replica.role == "primary" or replica.draining:
                    continue
                try:
                    self._sync_replica(replica)
                except Exception:  # noqa: BLE001 - loop must survive
                    pass

    def _sync_replica(self, replica: Replica) -> None:
        with self._lock:
            followers = dict(self._followers.get(replica.name, {}))
        if not followers:
            return
        worst_lag = 0
        applied_floor: Optional[int] = None
        for follower in followers.values():
            try:
                report = follower.sync_once()
            except ServiceError:
                return  # replica or primary mid-restart; next pass
            except (ConnectionError, OSError):
                return
            if report["needs_bootstrap"] or (
                report["lag"] > self.max_lag
            ):
                # Epoch change (republish) or hopelessly behind:
                # replaying is wrong or too slow — reload the replica
                # from the published snapshot instead.
                self._restart(replica)
                return
            worst_lag = max(worst_lag, int(report["lag"]))
            seq = int(report["applied_seq"])
            applied_floor = (
                seq if applied_floor is None
                else min(applied_floor, seq)
            )
        replica.oplog_lag = worst_lag
        replica.applied_seq = applied_floor or 0

    def sync_now(self, replica: Replica) -> int:
        """Drive one member's followers until lag reaches 0.

        Returns the number of entries replayed; used by tests and the
        rolling restart to re-admit a member only once it has caught
        up.
        """
        with self._lock:
            followers = dict(self._followers.get(replica.name, {}))
        replayed = 0
        for follower in followers.values():
            while True:
                report = follower.sync_once()
                replayed += int(report["applied"])
                if report["needs_bootstrap"]:
                    raise RuntimeError(
                        f"replica {replica.name} crossed an oplog "
                        f"epoch; restart it instead of syncing"
                    )
                if report["lag"] == 0:
                    break
        self._sync_replica(replica)
        return replayed

    # ------------------------------------------------------------------
    # Rolling restart
    # ------------------------------------------------------------------
    def rolling_restart(self, drain_timeout: float = 30.0) -> None:
        """Restart every member one at a time without dropping reads.

        Each member is drained (the router stops picking it, in-flight
        requests finish), terminated, respawned from the snapshot,
        probed healthy, resynced to oplog lag 0, and only then
        re-admitted.  Replicas go first; the primary last, so the
        write path moves exactly once.
        """
        ordered = [r for r in self.replicas if r.role != "primary"]
        ordered.append(self.replicas.primary)
        for replica in ordered:
            replica.draining = True
            try:
                deadline = time.monotonic() + drain_timeout
                while (
                    replica.in_flight > 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                if not self._restart(replica):
                    raise RuntimeError(
                        f"rolling restart could not respawn "
                        f"{replica.name}"
                    )
                if replica.role != "primary":
                    self.sync_now(replica)
            finally:
                replica.draining = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``supervisor`` block of ``GET /cluster/stats``."""
        with self._lock:
            pids = {
                name: process.process.pid
                for name, process in self._processes.items()
            }
        return {
            "snapshot": str(self.snapshot_dir),
            "lakes": list(self._lakes),
            "fingerprint": self._fingerprint,
            "pids": pids,
            "restarts": {
                replica.name: replica.restarts
                for replica in self.replicas
            },
        }
