"""Mutation replay: the durable oplog and the follower that drains it.

Replication in this stack is *replay from artifact*: a replica loads
the same published snapshot the primary serves (PR 6), then converges
onto the primary's live state by replaying the primary's recorded
mutations through the ordinary ``POST /tables`` / ``DELETE
/tables/<t>`` routes — which run the delta-aware splice path (PR 7)
whose bit-exact parity with a full rebuild is the correctness oracle.
Two pieces implement it:

* :class:`MutationLog` — the primary-side oplog.  A JSONL file next
  to the snapshot (``<snapshot>/oplog.jsonl``), one fsync'd line per
  applied mutation, carrying a monotonically increasing ``seq`` and
  the *exact* mutation payload the primary applied.  The file opens
  with an epoch header; a republished snapshot starts a fresh file
  (and epoch), which followers detect and answer with a
  re-bootstrap.  The HTTP server records into it under its lock (see
  ``HomographHTTPServer``'s ``oplogs`` option) so log order equals
  application order.
* :class:`OplogFollower` — the replica-side sync loop step.  Polls
  the primary's ``GET /oplog?since=<applied>`` and replays each entry
  onto the replica via its mutation routes.  Replay is idempotent
  (a re-delivered ``add`` of an existing table, or ``remove`` of a
  missing one, counts as already applied), so a crash between apply
  and acknowledge cannot wedge the sync.

The oplog is intentionally *not* a write-ahead log: the primary
appends after the mutation is applied, under the same lock.  A crash
between apply and append loses at most the crashing request (its
client never got a 2xx), and the primary itself recovers its
in-memory state on restart by replaying the log over the snapshot
(``domainnet serve --record-oplog`` does this before serving).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..datalake.table import Table
from ..serving.client import HomographClient, ServiceError

#: Oplog file-format version (the header line's ``"format"`` field).
OPLOG_FORMAT = 1


class OplogError(RuntimeError):
    """A structurally broken oplog (bad header, non-monotonic seq)."""


class MutationLog:
    """A durable, fsync'd JSONL log of applied table mutations.

    The file starts with a header line::

        {"format": 1, "epoch": "<random hex>", "seq": 0}

    followed by one entry per applied mutation::

        {"seq": 1, "op": "add", "table": "t", "columns": {...}}
        {"seq": 2, "op": "remove", "table": "t"}

    ``epoch`` is minted when the file is created; a republished
    snapshot drops the old file (see
    :func:`repro.snapshot.build_snapshot`), so a changed epoch tells
    followers their replayed prefix is meaningless and they must
    re-bootstrap from the new snapshot.  ``seq`` is contiguous from 1
    within an epoch.

    Opening an existing file recovers the epoch and last sequence
    number; a torn final line (crash mid-append) is truncated away.
    Appends flush and ``fsync`` before returning, so an acknowledged
    mutation survives power loss.  Instances are thread-safe; use
    :meth:`exclusive` to bracket an apply-then-append pair so log
    order equals application order.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self._path = Path(path)
        self._lock = threading.RLock()
        self._closed = False
        if self._path.exists():
            self._epoch, self._last_seq = self._recover()
        else:
            self._epoch = uuid.uuid4().hex
            self._last_seq = 0
            self._path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "format": OPLOG_FORMAT,
                "epoch": self._epoch,
                "seq": 0,
            }
            with open(self._path, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(header, sort_keys=True) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            # Make the file's *existence* durable too.
            with contextlib.suppress(OSError):
                fd = os.open(self._path.parent, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
        self._file = open(self._path, "a", encoding="utf-8")

    def _recover(self) -> "tuple[str, int]":
        """Re-open an existing log: validate, truncate a torn tail."""
        raw = self._path.read_bytes()
        lines = raw.split(b"\n")
        # A well-formed file ends with "\n": the final split piece is
        # empty.  Anything else is a torn append to discard.
        complete, torn = lines[:-1], lines[-1]
        entries: List[dict] = []
        good_bytes = 0
        for line in complete:
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                torn = line  # treat the rest as torn
                break
            if not isinstance(entry, dict) or "seq" not in entry:
                torn = line
                break
            entries.append(entry)
            good_bytes += len(line) + 1
        if not entries:
            raise OplogError(
                f"oplog {self._path} carries no valid header line"
            )
        header = entries[0]
        if (
            header.get("format") != OPLOG_FORMAT
            or not isinstance(header.get("epoch"), str)
        ):
            raise OplogError(
                f"oplog {self._path} header is not format "
                f"{OPLOG_FORMAT}: {header!r}"
            )
        last_seq = 0
        for position, entry in enumerate(entries):
            if entry.get("seq") != position:
                raise OplogError(
                    f"oplog {self._path} entry {position} carries "
                    f"seq {entry.get('seq')!r}; the log must be "
                    f"contiguous from 0"
                )
            last_seq = position
        if torn or good_bytes != len(raw):
            with open(self._path, "r+b") as stream:
                stream.truncate(good_bytes)
                stream.flush()
                os.fsync(stream.fileno())
        return header["epoch"], last_seq

    @property
    def path(self) -> Path:
        """Where the log lives on disk."""
        return self._path

    @property
    def epoch(self) -> str:
        """The log's epoch identifier (minted at file creation)."""
        return self._epoch

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry (0 = header only)."""
        with self._lock:
            return self._last_seq

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def exclusive(self):
        """The log's re-entrant lock, for apply-then-append brackets."""
        return self._lock

    def append(self, entry: Dict[str, object]) -> int:
        """Durably append one mutation entry; returns its ``seq``.

        ``entry`` is the exact mutation payload (``{"op": "add",
        "table": ..., "columns": ...}`` or ``{"op": "remove",
        "table": ...}``); the sequence number is assigned here.
        """
        with self._lock:
            if self._closed:
                raise OplogError(f"oplog {self._path} is closed")
            seq = self._last_seq + 1
            record = dict(entry)
            record["seq"] = seq
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
            self._last_seq = seq
            return seq

    def entries(self, since: int = 0) -> List[Dict[str, object]]:
        """Every entry with ``seq > since``, oldest first.

        Reads from disk (not an in-memory mirror) so a fresh
        :class:`MutationLog` over an existing file — the primary
        recovering at startup — sees the full history.
        """
        with self._lock:
            out: List[Dict[str, object]] = []
            with open(self._path, "r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail beyond our recovered prefix
                    seq = entry.get("seq")
                    if not isinstance(seq, int) or seq <= since:
                        continue
                    if seq > self._last_seq:
                        break
                    out.append(entry)
            return out

    def read_since(self, since: int = 0) -> Dict[str, object]:
        """The ``GET /oplog`` response payload for ``?since=N``."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "last_seq": self._last_seq,
                "since": since,
                "entries": self.entries(since),
            }

    def close(self) -> None:
        """Close the append handle (idempotent; reads keep working)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.close()

    def __enter__(self) -> "MutationLog":
        """Enter a ``with`` block; the log itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the append handle on ``with``-block exit."""
        self.close()


def replay_entry(index, entry: Dict[str, object]) -> bool:
    """Apply one oplog entry directly to a local index; True if applied.

    The in-process twin of :meth:`OplogFollower.sync_once`'s HTTP
    replay — ``domainnet serve --record-oplog`` uses it to recover
    the primary's in-memory state from its own log before serving.
    Replay is idempotent: an ``add`` of a table that already exists,
    or a ``remove`` of one that does not, returns ``False`` instead
    of raising.
    """
    from ..datalake.lake import LakeError

    op = entry.get("op")
    table = entry.get("table")
    if op == "add":
        try:
            index.add_table(
                Table.from_columns(str(table), entry.get("columns"))
            )
        except LakeError:
            return False
        return True
    if op == "remove":
        try:
            index.remove_table(str(table))
        except LakeError:
            return False
        return True
    raise OplogError(f"unknown oplog op {op!r} in entry {entry!r}")


class OplogFollower:
    """Replays a primary lake's oplog onto one replica, over HTTP.

    One follower per (replica, lake).  Each :meth:`sync_once` polls
    the primary's ``GET /oplog?since=<applied>`` and replays the
    returned entries onto the replica through its ordinary mutation
    routes — server-side those run the delta-aware splice path, so
    after a drained sync the replica's rankings are byte-identical to
    the primary's (PR 7's parity guarantee).

    An epoch change (the primary republished its snapshot, or
    restarted onto a fresh one) resets ``applied_seq`` and reports
    ``needs_bootstrap``: the caller must restart the replica from the
    new snapshot before syncing further — the supervisor does exactly
    that.

    Parameters
    ----------
    primary / replica:
        :class:`~repro.serving.client.HomographClient` handles scoped
        to the same lake on the primary and the replica.  The
        follower owns neither; close them yourself (the supervisor
        does).
    """

    def __init__(
        self, primary: HomographClient, replica: HomographClient
    ) -> None:
        self.primary = primary
        self.replica = replica
        self.applied_seq = 0
        self.epoch: Optional[str] = None
        self.replayed = 0
        self.skipped = 0

    def lag(self) -> int:
        """Entries the primary has that this follower has not applied."""
        feed = self.primary.oplog(since=self.applied_seq)
        return max(0, int(feed["last_seq"]) - self.applied_seq)

    def sync_once(self) -> Dict[str, object]:
        """One poll-and-replay step; returns a progress report.

        The report carries ``applied`` (entries replayed this step),
        ``applied_seq`` (total applied so far), ``last_seq`` (the
        primary's newest), ``lag``, and ``needs_bootstrap`` (the
        primary's epoch changed; nothing was replayed and the replica
        must be re-bootstrapped from the current snapshot).
        """
        feed = self.primary.oplog(since=self.applied_seq)
        epoch = str(feed["epoch"])
        last_seq = int(feed["last_seq"])
        if self.epoch is None:
            self.epoch = epoch
        elif epoch != self.epoch:
            self.epoch = epoch
            self.applied_seq = 0
            return {
                "applied": 0,
                "applied_seq": 0,
                "last_seq": last_seq,
                "lag": last_seq,
                "needs_bootstrap": True,
            }
        applied = 0
        for entry in feed.get("entries", []):
            seq = int(entry["seq"])
            if seq <= self.applied_seq:
                continue
            if self._replay(entry):
                self.replayed += 1
            else:
                self.skipped += 1
            self.applied_seq = seq
            applied += 1
        return {
            "applied": applied,
            "applied_seq": self.applied_seq,
            "last_seq": last_seq,
            "lag": max(0, last_seq - self.applied_seq),
            "needs_bootstrap": False,
        }

    def _replay(self, entry: Dict[str, object]) -> bool:
        """Apply one entry to the replica; False = already applied."""
        op = entry.get("op")
        table = entry.get("table")
        if op == "add":
            try:
                self.replica.add_table(
                    Table.from_columns(str(table), entry.get("columns"))
                )
            except ServiceError as error:
                if error.code == "duplicate-table":
                    return False
                raise
            return True
        if op == "remove":
            try:
                self.replica.remove_table(str(table))
            except ServiceError as error:
                if error.code == "unknown-table":
                    return False
                raise
            return True
        raise OplogError(f"unknown oplog op {op!r} in entry {entry!r}")
