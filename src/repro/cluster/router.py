"""The cluster front door: one URL over a fleet of replica servers.

A :class:`ClusterRouter` is a reverse proxy built on the same
keep-alive transport base as the workspace server
(:class:`~repro.serving.http.DrainingThreadingHTTPServer`), speaking
the *identical* wire protocol — existing :class:`HomographClient`
instances and ``repro.bench.loadgen`` drive it unchanged.  Routing
policy:

* **Reads** (``POST /detect``, ``GET /ranking``, lake/stats/health
  GETs) load-balance across healthy replicas: least-in-flight first,
  round-robin among ties.  A read that dies on a replica mid-flight
  (connection refused/reset — the replica was killed) is
  transparently retried **once** on a different healthy replica; the
  failed replica is passively marked unhealthy for the supervisor to
  heal.
* **Writes** (``POST``/``DELETE`` on ``/tables`` and ``/lakes``) pin
  to the **primary** — the one replica recording the oplog — so
  there is a single mutation order for replicas to replay.
* **Jobs**: a 202 from an async ``/detect`` records which replica
  accepted it, and later ``/jobs/<id>`` polls stick to that replica
  (only it knows the job).  Unknown job ids fall back to the primary.
* A fleet with no healthy target answers a structured 503
  ``no-healthy-replica`` with ``Retry-After`` — the same shape as the
  admission 503s, so client retry loops handle a dark fleet for free.
* ``GET /cluster/stats`` is served by the router itself: per-replica
  health / in-flight / restarts / oplog lag plus router counters.

The router holds no lake state; it can be constructed standalone over
a hand-built :class:`ReplicaSet` (the protocol tests do) or attached
to a :class:`~repro.cluster.supervisor.ReplicaSupervisor`, which owns
the replica processes and keeps the set's health flags fresh.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from typing import Callable, Dict, List, Optional, Tuple

from ..serving.http import (
    DEFAULT_RETRY_AFTER,
    DrainingThreadingHTTPServer,
    KeepAliveRequestHandler,
    _HTTPProblem,
)

#: Cap on proxied request bodies (memory bound, not a protocol limit;
#: backends enforce their own max_body_bytes below this).
DEFAULT_PROXY_BODY_BYTES = 64 * 1024 * 1024

#: Most recent async jobs whose accepting replica the router remembers.
DEFAULT_JOB_STICKINESS = 4096

#: Request headers that are hop-by-hop (or recomputed) and must not be
#: forwarded to a backend.
_HOP_HEADERS = frozenset({
    "connection", "keep-alive", "proxy-authenticate",
    "proxy-authorization", "proxy-connection", "te", "trailers",
    "transfer-encoding", "upgrade", "host", "content-length",
})

#: Response headers the router recomputes or owns.
_SKIP_RESPONSE_HEADERS = frozenset({
    "connection", "keep-alive", "transfer-encoding", "content-length",
    "server", "date",
})


class Replica:
    """One backend server in the fleet, as the router sees it.

    Thread-safe value object shared between the router (health reads,
    in-flight accounting) and the supervisor (health writes, restart
    and oplog-lag bookkeeping).  ``url`` may start as ``None`` — the
    supervisor fills it in once the subprocess prints its bound port.
    """

    def __init__(
        self,
        name: str,
        url: Optional[str] = None,
        role: str = "replica",
    ) -> None:
        if role not in ("primary", "replica"):
            raise ValueError(
                f"invalid role {role!r}: expected 'primary' or 'replica'"
            )
        self.name = name
        self.role = role
        self._lock = threading.Lock()
        self._url = url
        self._healthy = url is not None
        self._draining = False
        self._in_flight = 0
        self.restarts = 0
        self.applied_seq = 0
        self.oplog_lag = 0

    @property
    def url(self) -> Optional[str]:
        """Base URL of the backend (``None`` until it is spawned)."""
        with self._lock:
            return self._url

    @url.setter
    def url(self, value: Optional[str]) -> None:
        """Record the backend's URL once the supervisor spawns it."""
        with self._lock:
            self._url = value

    @property
    def healthy(self) -> bool:
        """Whether the router may send this replica traffic."""
        with self._lock:
            return self._healthy and not self._draining

    def mark_healthy(self) -> None:
        """Admit the replica to the routing pool."""
        with self._lock:
            self._healthy = True

    def mark_unhealthy(self) -> None:
        """Remove the replica from the routing pool."""
        with self._lock:
            self._healthy = False

    @property
    def draining(self) -> bool:
        """Whether a rolling restart is draining this replica."""
        with self._lock:
            return self._draining

    @draining.setter
    def draining(self, value: bool) -> None:
        """Toggle drain mode (set by the supervisor's rolling restart)."""
        with self._lock:
            self._draining = bool(value)

    @property
    def in_flight(self) -> int:
        """Requests this replica is serving through the router now."""
        with self._lock:
            return self._in_flight

    def begin_request(self) -> None:
        """Count one proxied request entering this replica."""
        with self._lock:
            self._in_flight += 1

    def end_request(self) -> None:
        """Count one proxied request leaving this replica."""
        with self._lock:
            self._in_flight -= 1

    def snapshot(self) -> Dict[str, object]:
        """One ``/cluster/stats`` row."""
        with self._lock:
            return {
                "name": self.name,
                "role": self.role,
                "url": self._url,
                "healthy": self._healthy and not self._draining,
                "draining": self._draining,
                "in_flight": self._in_flight,
                "restarts": self.restarts,
                "applied_seq": self.applied_seq,
                "oplog_lag": self.oplog_lag,
            }


class ReplicaSet:
    """The fleet membership the router balances over.

    Immutable membership (replicas are restarted in place, never
    re-registered) with thread-safe per-replica state.  Exactly one
    replica should carry the ``primary`` role; writes pin to it.
    """

    def __init__(self, replicas: List[Replica]) -> None:
        if not replicas:
            raise ValueError("a ReplicaSet needs at least one replica")
        self._replicas = tuple(replicas)
        names = [r.name for r in self._replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate replica names in {names!r}")
        self._rr_lock = threading.Lock()
        self._rr = 0

    def __iter__(self):
        """Iterate the fleet in registration order."""
        return iter(self._replicas)

    def __len__(self) -> int:
        """Fleet size."""
        return len(self._replicas)

    def get(self, name: str) -> Optional[Replica]:
        """The replica registered under ``name`` (or ``None``)."""
        for replica in self._replicas:
            if replica.name == name:
                return replica
        return None

    @property
    def primary(self) -> Replica:
        """The write target: the ``primary``-role replica (or first)."""
        for replica in self._replicas:
            if replica.role == "primary":
                return replica
        return self._replicas[0]

    def healthy(self) -> List[Replica]:
        """Replicas currently admitted to the routing pool."""
        return [r for r in self._replicas if r.healthy and r.url]

    def pick_read(
        self, exclude: Tuple[Replica, ...] = ()
    ) -> Optional[Replica]:
        """The read target: least-in-flight healthy replica.

        Ties break round-robin so equally-loaded replicas share
        traffic instead of the first one taking everything; an
        ``exclude`` list supports retry-on-another-replica.
        """
        candidates = [r for r in self.healthy() if r not in exclude]
        if not candidates:
            return None
        lowest = min(r.in_flight for r in candidates)
        tied = [r for r in candidates if r.in_flight == lowest]
        with self._rr_lock:
            choice = tied[self._rr % len(tied)]
            self._rr += 1
        return choice

    def stats(self) -> List[Dict[str, object]]:
        """Per-replica ``/cluster/stats`` rows, registration order."""
        return [replica.snapshot() for replica in self._replicas]


class ClusterRouter(DrainingThreadingHTTPServer):
    """The HTTP front door load-balancing a :class:`ReplicaSet`.

    Parameters
    ----------
    replicas:
        The fleet to balance over.  The router reads health flags and
        maintains in-flight counters; something else (normally a
        :class:`~repro.cluster.supervisor.ReplicaSupervisor`) owns the
        processes and heals health flags.
    address:
        ``(host, port)`` to bind; port 0 picks an ephemeral port.
    retry_after:
        ``Retry-After`` seconds sent with 503 ``no-healthy-replica``.
    backend_timeout:
        Socket timeout for one proxied backend request.
    request_timeout / quiet:
        As on :class:`~repro.serving.http.HomographHTTPServer`.
    fleet_stats:
        Optional callable merged into ``GET /cluster/stats`` under
        ``"supervisor"`` — the supervisor passes its own counters in.
    """

    background_thread_name = "domainnet-router"

    def __init__(
        self,
        replicas: ReplicaSet,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        retry_after: int = DEFAULT_RETRY_AFTER,
        backend_timeout: float = 60.0,
        request_timeout: float = 60.0,
        quiet: bool = True,
        max_body_bytes: int = DEFAULT_PROXY_BODY_BYTES,
        fleet_stats: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        super().__init__(
            address,
            RouterRequestHandler,
            request_timeout=request_timeout,
            quiet=quiet,
        )
        self.replicas = replicas
        self.retry_after = retry_after
        self.backend_timeout = backend_timeout
        self.max_body_bytes = max_body_bytes
        self.fleet_stats = fleet_stats
        self._jobs_lock = threading.Lock()
        self._jobs: "Dict[str, str]" = {}
        self._counters_lock = threading.Lock()
        self._served = 0
        self._retried = 0
        self._bad_gateway = 0
        self._no_healthy = 0

    # ------------------------------------------------------------------
    # Job stickiness
    # ------------------------------------------------------------------
    def record_job(self, job_id: str, replica: Replica) -> None:
        """Remember which replica accepted an async job (202)."""
        with self._jobs_lock:
            self._jobs[job_id] = replica.name
            while len(self._jobs) > DEFAULT_JOB_STICKINESS:
                self._jobs.pop(next(iter(self._jobs)))

    def job_replica(self, job_id: str) -> Optional[Replica]:
        """The replica sticky for ``job_id`` (or ``None``)."""
        with self._jobs_lock:
            name = self._jobs.get(job_id)
        return None if name is None else self.replicas.get(name)

    # ------------------------------------------------------------------
    # Counters / stats
    # ------------------------------------------------------------------
    def count(self, kind: str) -> None:
        """Bump one router counter (``served``/``retried``/...)."""
        with self._counters_lock:
            if kind == "served":
                self._served += 1
            elif kind == "retried":
                self._retried += 1
            elif kind == "bad_gateway":
                self._bad_gateway += 1
            elif kind == "no_healthy":
                self._no_healthy += 1

    def cluster_stats(self) -> Dict[str, object]:
        """The ``GET /cluster/stats`` payload."""
        with self._counters_lock:
            router = {
                "served": self._served,
                "retried": self._retried,
                "bad_gateway": self._bad_gateway,
                "no_healthy_replica": self._no_healthy,
            }
        with self._jobs_lock:
            router["jobs_tracked"] = len(self._jobs)
        payload: Dict[str, object] = {
            "replicas": self.replicas.stats(),
            "primary": self.replicas.primary.name,
            "router": router,
        }
        if self.fleet_stats is not None:
            try:
                payload["supervisor"] = self.fleet_stats()
            except Exception as error:  # noqa: BLE001 - stats only
                payload["supervisor"] = {"error": str(error)}
        return payload


def start_router(
    replicas: ReplicaSet,
    host: str = "127.0.0.1",
    port: int = 0,
    **options,
) -> ClusterRouter:
    """Construct a router and run its accept loop in the background.

    The mirror of :func:`repro.serving.http.start_server`: the
    returned router is already reachable at ``router.url``; drain it
    (or use it as a context manager) when done.
    """
    router = ClusterRouter(replicas, (host, port), **options)
    router.start_background()
    return router


class RouterRequestHandler(KeepAliveRequestHandler):
    """Proxies one client connection's requests onto the fleet.

    One thread per connection for its whole keep-alive lifetime, with
    a per-connection pool of backend connections (one per replica) so
    a keep-alive client costs one backend socket, not one per
    request.
    """

    server_version = "DomainNetRouter/1.0"

    def setup(self) -> None:
        """Initialize the per-connection backend pool."""
        self._backends: Dict[str, http.client.HTTPConnection] = {}
        super().setup()

    def finish(self) -> None:
        """Close pooled backend connections with the client socket."""
        try:
            for connection in self._backends.values():
                connection.close()
            self._backends.clear()
        finally:
            super().finish()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """Proxy GET requests."""
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Proxy POST requests."""
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        """Proxy DELETE requests."""
        self._route("DELETE")

    # ------------------------------------------------------------------
    # Response plumbing (mirrors the workspace server's error shape)
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload, extra_headers=None):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_problem(self, problem: _HTTPProblem) -> None:
        headers = {"Connection": "close"}
        self.close_connection = True
        if problem.retry_after is not None:
            headers["Retry-After"] = str(problem.retry_after)
        error: Dict[str, object] = {
            "status": problem.status,
            "code": problem.code,
            "message": problem.message,
        }
        if problem.lake is not None:
            error["lake"] = problem.lake
        self._send_json(problem.status, {"error": error}, headers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str) -> None:
        try:
            self._proxy(method)
        except _HTTPProblem as problem:
            try:
                self._send_problem(problem)
            except (ConnectionError, TimeoutError, OSError):
                self.close_connection = True
        except (ConnectionError, TimeoutError):
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - last-resort mapping
            try:
                self._send_problem(_HTTPProblem(
                    500, "internal-error",
                    f"{type(error).__name__}: {error}",
                ))
            except (ConnectionError, TimeoutError, OSError):
                self.close_connection = True

    @staticmethod
    def _classify(method: str, segments: List[str]) -> str:
        """``"write"``, ``"job"``, or ``"read"`` for one request."""
        if segments[:1] == ["jobs"] and len(segments) == 2:
            return "job"
        if method in ("POST", "DELETE"):
            if segments[:1] == ["tables"]:
                return "write"
            if segments[:1] == ["lakes"]:
                if len(segments) <= 2:
                    return "write"  # mount / unmount
                if segments[2] == "tables":
                    return "write"
        return "read"

    def _read_body(self) -> Optional[bytes]:
        """Buffer the request body so a retried read can resend it."""
        if self.headers.get("Transfer-Encoding"):
            raise _HTTPProblem(
                411, "length-required",
                "the router does not speak chunked request bodies; "
                "send a Content-Length",
            )
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            return None
        try:
            length = int(raw_length)
        except ValueError:
            raise _HTTPProblem(
                400, "malformed-json",
                f"invalid Content-Length {raw_length!r}",
            ) from None
        if length < 0:
            raise _HTTPProblem(
                400, "malformed-json",
                f"invalid Content-Length {length}",
            )
        if length > self.server.max_body_bytes:
            raise _HTTPProblem(
                413, "body-too-large",
                f"request body of {length} bytes exceeds the router's "
                f"{self.server.max_body_bytes}-byte limit",
            )
        return self.rfile.read(length) if length else b""

    def _proxy(self, method: str) -> None:
        parts = urllib.parse.urlsplit(self.path)
        segments = [
            urllib.parse.unquote(s) for s in parts.path.split("/") if s
        ]
        if (
            method == "GET"
            and segments == ["cluster", "stats"]
        ):
            return self._send_json(200, self.server.cluster_stats())
        body = self._read_body()
        kind = self._classify(method, segments)
        replicas = self.server.replicas
        retryable = method == "GET" or (
            # A sync or async POST /detect is safe to resend: the body
            # is buffered and a lost first attempt computed nothing
            # the client ever saw.
            method == "POST" and segments and segments[-1] == "detect"
        )
        if kind == "write":
            primary = replicas.primary
            if not primary.healthy or not primary.url:
                raise self._no_healthy_replica("the primary is down")
            self._forward(method, primary, body, retry=None)
            return
        if kind == "job":
            sticky = self.server.job_replica(segments[1])
            target = (
                sticky
                if sticky is not None and sticky.healthy and sticky.url
                else None
            )
            if target is None:
                # Unknown or dead sticky replica: the shared jobs/
                # spill area means a finished job is pollable from the
                # primary; an in-flight one is honestly 404 there.
                target = (
                    replicas.primary
                    if replicas.primary.healthy and replicas.primary.url
                    else replicas.pick_read()
                )
            if target is None:
                raise self._no_healthy_replica("no replica is healthy")
            retry = self._pick_retry(retryable, exclude=(target,))
            self._forward(method, target, body, retry=retry)
            return
        target = replicas.pick_read()
        if target is None:
            raise self._no_healthy_replica("no replica is healthy")
        retry = self._pick_retry(retryable, exclude=(target,))
        self._forward(
            method, target, body, retry=retry,
            record_job=segments[-1:] == ["detect"],
        )

    def _pick_retry(
        self, retryable: bool, exclude: Tuple[Replica, ...]
    ) -> Optional[Callable[[], Optional[Replica]]]:
        """A lazy second-choice picker for idempotent requests."""
        if not retryable:
            return None
        return lambda: self.server.replicas.pick_read(exclude=exclude)

    def _no_healthy_replica(self, detail: str) -> _HTTPProblem:
        self.server.count("no_healthy")
        return _HTTPProblem(
            503, "no-healthy-replica",
            f"the cluster cannot serve this request: {detail}; "
            f"retry shortly",
            retry_after=self.server.retry_after,
        )

    def _forward(
        self,
        method: str,
        replica: Replica,
        body: Optional[bytes],
        retry: Optional[Callable[[], Optional[Replica]]],
        record_job: bool = False,
    ) -> None:
        """Send one request to ``replica``, retrying once if allowed."""
        try:
            status, headers, payload = self._backend_request(
                method, replica, body
            )
        except (http.client.HTTPException, OSError):
            # The replica died under us (kill -9 shows up here as a
            # refused/reset connection).  Quarantine it for the
            # supervisor to heal and retry reads elsewhere.
            replica.mark_unhealthy()
            fallback = None if retry is None else retry()
            if fallback is None:
                if retry is None:
                    self.server.count("bad_gateway")
                    raise _HTTPProblem(
                        502, "bad-gateway",
                        f"replica {replica.name!r} failed mid-request "
                        f"and the request is not retryable",
                    ) from None
                raise self._no_healthy_replica(
                    f"replica {replica.name!r} failed and no other "
                    f"replica is healthy"
                ) from None
            self.server.count("retried")
            try:
                status, headers, payload = self._backend_request(
                    method, fallback, body
                )
                replica = fallback
            except (http.client.HTTPException, OSError):
                fallback.mark_unhealthy()
                self.server.count("bad_gateway")
                raise _HTTPProblem(
                    502, "bad-gateway",
                    f"replicas {replica.name!r} and {fallback.name!r} "
                    f"both failed mid-request",
                ) from None
        if record_job and status == 202:
            try:
                job_id = json.loads(payload.decode("utf-8"))["job"]
            except Exception:  # noqa: BLE001 - non-JSON 202
                job_id = None
            if isinstance(job_id, str):
                self.server.record_job(job_id, replica)
        self.server.count("served")
        self.send_response(status)
        for name, value in headers.items():
            if name.lower() in _SKIP_RESPONSE_HEADERS:
                continue
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("X-DomainNet-Replica", replica.name)
        self.end_headers()
        self.wfile.write(payload)

    def _backend_request(
        self,
        method: str,
        replica: Replica,
        body: Optional[bytes],
    ) -> Tuple[int, "http.client.HTTPMessage", bytes]:
        """One request on the pooled backend connection for ``replica``.

        A failure on a *reused* connection is retried once on a fresh
        dial (the keep-alive race); failures on a fresh connection
        propagate to :meth:`_forward`'s cross-replica policy.
        """
        url = replica.url
        if url is None:
            raise OSError(f"replica {replica.name!r} has no address")
        parts = urllib.parse.urlsplit(url)
        headers = {}
        for name, value in self.headers.items():
            if name.lower() not in _HOP_HEADERS:
                headers[name] = value
        headers["Host"] = parts.netloc
        target = self.path
        replica.begin_request()
        try:
            for attempt in (0, 1):
                connection = self._backends.get(replica.name)
                fresh = connection is None
                if fresh:
                    connection = http.client.HTTPConnection(
                        parts.hostname or "127.0.0.1",
                        parts.port or 80,
                        timeout=self.server.backend_timeout,
                    )
                    self._backends[replica.name] = connection
                try:
                    connection.request(
                        method, target, body=body, headers=headers
                    )
                    response = connection.getresponse()
                    payload = response.read()
                except (http.client.HTTPException, OSError) as error:
                    connection.close()
                    self._backends.pop(replica.name, None)
                    if (
                        fresh or attempt
                        or isinstance(error, TimeoutError)
                    ):
                        raise
                    continue
                if response.will_close:
                    connection.close()
                    self._backends.pop(replica.name, None)
                return response.status, response.msg, payload
            raise OSError("unreachable")  # pragma: no cover
        finally:
            replica.end_request()
