"""Delta-scoped score maintenance for cached detection results.

When a lake mutation is applied as a CSR splice
(:meth:`~repro.core.graph.BipartiteGraph.splice_rows`), the cached
``DetectResponse`` entries do not have to be dropped: each measure's
dependence on the graph is local enough that only a delta-sized part of
its scores can have changed.  This module patches cached entries so
they are **bit-identical** to recomputing the measure from scratch on
the new graph:

* **Affected set** — one BFS closure over the new graph seeded from
  the splice frontiers marks every node whose connected component
  gained or lost structure.  Per-source measures (Brandes betweenness,
  RK path samples) contribute exactly ``+0.0`` across components, so
  scores outside the affected set carry over bitwise.
* **LCC** is 2-hop local (3-hop for the ``value-neighbors`` variant):
  only values adjacent to a spliced attribute (plus one neighbor
  expansion for the literal-Eq.-1 variant) are recomputed, through the
  ``"lcc_subset"`` kernel.
* **Exact betweenness** re-runs Brandes only from affected sources as
  one ordered chunk (:meth:`~repro.perf.ExecutionBackend.map_sources`),
  carries the raw accumulator elsewhere, and renormalizes.  Requires
  the original run to have been a single chunk, so float association
  matches.
* **Sampled betweenness / RK** additionally require stable node ids
  (the RNG draws are replayed against the new graph) and, for RK, an
  unchanged derived sample size.

Every patcher returns ``None`` when its preconditions fail or the
affected fraction exceeds :data:`AFFECTED_FRACTION_LIMIT` — the caller
then evicts the entry and the next detect recomputes it in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Dict, Optional

import numpy as np

from ..core.approx import _approximate_vertex_diameter, sample_size_bound
from ..core.graph import BipartiteGraph, GraphDelta, frontier_edges
from ..core.ranking import HomographRanking
from ..perf.backends import ExecutionBackend
from .requests import DetectResponse

#: Evict (full recompute on next detect) instead of patching when the
#: delta touches more than this fraction of an entry's work items.
AFFECTED_FRACTION_LIMIT = 0.5


@dataclass(frozen=True)
class PatchResult:
    """A successfully patched cache entry.

    ``response`` carries the updated scores/ranking, ``state`` is the
    refreshed maintenance payload for the *next* mutation, and
    ``recomputed`` counts the sources / samples / values actually
    re-scored (the delta-cost evidence surfaced in mutation stats).
    """

    response: DetectResponse
    state: Dict[str, object]
    recomputed: int


def affected_nodes(
    graph: BipartiteGraph, delta: GraphDelta
) -> np.ndarray:
    """Boolean mask over new-graph nodes whose component changed.

    Seeds are the splice frontiers — surviving endpoints of removed
    edges (mapped into the new id space) plus endpoints of inserted
    edges — expanded to their full connected components in the new
    graph.  Everything outside the mask has a component whose edge set
    is untouched, so traversal-based scores there are bitwise equal to
    the pre-splice run.
    """
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mapped_old = delta.node_map[delta.frontier_old]
    seeds = np.concatenate(
        [mapped_old[mapped_old >= 0], delta.frontier_new]
    )
    if seeds.size == 0:
        return mask
    mask[seeds] = True
    frontier = np.flatnonzero(mask)
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        _src, dst = frontier_edges(frontier, indptr, indices)
        fresh = dst[~mask[dst]]
        if fresh.size == 0:
            break
        mask[fresh] = True
        frontier = np.unique(fresh)
    return mask


def patch_entry(
    response: DetectResponse,
    state: object,
    graph: BipartiteGraph,
    delta: GraphDelta,
    mask: np.ndarray,
    backend: ExecutionBackend,
    limit: float = AFFECTED_FRACTION_LIMIT,
) -> Optional[PatchResult]:
    """Patch one cached response onto the spliced graph, or ``None``.

    ``state`` is the maintenance payload captured when the entry was
    computed (``MeasureOutput.state``); entries without one — custom
    measures, snapshot-loaded responses — are not patchable.  ``mask``
    is :func:`affected_nodes` for this splice, shared across entries.
    """
    if not isinstance(state, dict):
        return None
    kind = state.get("kind")
    try:
        if kind == "lcc":
            return _patch_lcc(response, state, graph, delta, mask,
                              backend, limit)
        if kind == "brandes":
            return _patch_brandes(response, state, graph, delta, mask,
                                  backend, limit)
        if kind == "rk":
            return _patch_rk(response, state, graph, delta, mask,
                             backend, limit)
    except (KeyError, ValueError, TypeError):
        return None
    return None


def _rebuild(
    response: DetectResponse, scores: Dict[str, float]
) -> DetectResponse:
    """A response copy with re-ranked scores (same shape as a compute)."""
    ranking = HomographRanking(
        scores, descending=response.descending, measure=response.measure
    )
    return dataclass_replace(
        response,
        ranking=ranking,
        scores={entry.value: entry.score for entry in ranking},
    )


def _value_frontiers(delta: GraphDelta) -> np.ndarray:
    """New-space ids of value nodes whose own row the splice rewrote."""
    nv_old = delta.num_values_old
    nv_new = delta.num_values_new
    old_values = delta.frontier_old[delta.frontier_old < nv_old]
    mapped = delta.node_map[old_values]
    new_values = delta.frontier_new[delta.frontier_new < nv_new]
    return np.concatenate([mapped[mapped >= 0], new_values])


def _attr_frontiers(delta: GraphDelta) -> np.ndarray:
    """New-space ids of attribute nodes the splice rewrote."""
    nv_old = delta.num_values_old
    nv_new = delta.num_values_new
    old_attrs = delta.frontier_old[delta.frontier_old >= nv_old]
    mapped = delta.node_map[old_attrs]
    new_attrs = delta.frontier_new[delta.frontier_new >= nv_new]
    return np.concatenate([mapped[mapped >= 0], new_attrs])


def _patch_lcc(
    response: DetectResponse,
    state: Dict[str, object],
    graph: BipartiteGraph,
    delta: GraphDelta,
    mask: np.ndarray,
    backend: ExecutionBackend,
    limit: float,
) -> Optional[PatchResult]:
    """Recompute LCC only for values whose 2-hop neighborhood changed.

    ``LCC(u)`` reads ``u``'s adjacency row and the rows of ``u``'s
    attributes, so it changes iff ``u``'s row was rewritten or ``u``
    is adjacent to a rewritten attribute.  The ``value-neighbors``
    variant also reads ``N(v)`` for every value neighbor ``v``, adding
    one more expansion hop.  Per-value independence makes the subset
    recompute bit-identical to the same slots of a full sweep.
    """
    variant = state["variant"]
    nv = graph.num_values
    indptr, indices = graph.indptr, graph.indices

    attr_frontier = np.unique(_attr_frontiers(delta))
    affected = [_value_frontiers(delta)]
    if attr_frontier.size:
        _src, dst = frontier_edges(attr_frontier, indptr, indices)
        affected.append(dst)
    base = np.unique(np.concatenate(affected)) if affected else (
        np.empty(0, dtype=np.int64)
    )
    if variant == "value-neighbors" and base.size:
        # One more hop: values sharing an attribute with the base set.
        _s, attrs = frontier_edges(base, indptr, indices)
        attrs = np.unique(attrs)
        _s, neighbors = frontier_edges(attrs, indptr, indices)
        base = np.unique(np.concatenate([base, neighbors]))
    affected_values = base[base < nv] if base.size else base

    if nv and affected_values.size > limit * nv:
        return None

    patched = np.zeros(affected_values.size, dtype=np.float64)
    if affected_values.size:
        payloads = [
            affected_values[lo:hi]
            for lo, hi in backend.spans(affected_values.size)
        ]
        partials = backend.map_chunks(
            graph, "lcc_subset", payloads, {"variant": variant}
        )
        position = {int(v): i for i, v in enumerate(affected_values)}
        for ids, segment in partials:
            for v, score in zip(ids, segment):
                patched[position[int(v)]] = score

    affected_set = set(int(v) for v in affected_values)
    old_scores = response.scores
    scores: Dict[str, float] = {}
    cursor = 0
    for v in range(nv):
        name = graph.value_name(v)
        if v in affected_set:
            scores[name] = float(patched[cursor])
            cursor += 1
        else:
            carried = old_scores.get(name)
            if carried is None:
                return None  # should be unreachable; stay safe
            scores[name] = carried
    return PatchResult(
        response=_rebuild(response, scores),
        state={"kind": "lcc", "variant": variant},
        recomputed=int(affected_values.size),
    )


def _patch_brandes(
    response: DetectResponse,
    state: Dict[str, object],
    graph: BipartiteGraph,
    delta: GraphDelta,
    mask: np.ndarray,
    backend: ExecutionBackend,
    limit: float,
) -> Optional[PatchResult]:
    """Re-run Brandes only from sources in affected components.

    A source outside every affected component has a BFS DAG identical
    (under the monotonic id map) to its pre-splice run, and its
    dependency vector is exactly zero on affected components — so the
    raw accumulator carries over bitwise and only affected sources are
    replayed, in their original order, as one chunk.
    """
    request = response.request
    if request is None:
        return None
    if state["chunks"] != 1 or state.get("strategy") != "uniform":
        return None
    n = graph.num_nodes
    nv = graph.num_values
    if n == 0:
        return None
    eligible = (
        np.arange(n, dtype=np.int64)
        if request.endpoints == "all"
        else np.arange(nv, dtype=np.int64)
    )
    sample_size = request.sample_size
    would_sample = (
        sample_size is not None and sample_size < eligible.size
    )
    if would_sample != bool(state["sampled"]):
        return None
    if would_sample:
        # Replaying the identical choice() draw needs the identical
        # population: same ids, same eligible count.
        if not delta.ids_stable or state["eligible"] != eligible.size:
            return None
        rng = np.random.default_rng(request.seed)
        sources = rng.choice(eligible, size=sample_size, replace=False)
        weights = np.full(sample_size, eligible.size / sample_size)
    else:
        sources = eligible
        weights = np.ones(eligible.size, dtype=np.float64)

    source_mask = mask[sources]
    affected_sources = sources[source_mask]
    if sources.size and affected_sources.size > limit * sources.size:
        return None

    raw_old = state["raw_values"]
    if raw_old.shape != (delta.num_values_old,):
        return None
    raw_new = np.zeros(nv, dtype=np.float64)
    value_map = delta.value_map
    survivors = np.flatnonzero(value_map >= 0)
    raw_new[value_map[survivors]] = raw_old[survivors]
    patch = backend.map_sources(
        graph, "brandes", affected_sources, weights[source_mask],
        {"endpoints": request.endpoints},
    )
    affected_values = np.flatnonzero(mask[:nv])
    raw_new[affected_values] = patch[:nv][affected_values]

    if state["normalized"]:
        pairs = (eligible.size - 1) * (eligible.size - 2)
        values = raw_new / pairs if pairs > 0 else np.zeros_like(raw_new)
    else:
        values = raw_new / 2.0
    scores = {
        graph.value_name(v): float(values[v]) for v in range(nv)
    }
    return PatchResult(
        response=_rebuild(response, scores),
        state={
            "kind": "brandes",
            "raw_values": raw_new,
            "chunks": 1,
            "eligible": int(eligible.size),
            "sampled": would_sample,
            "strategy": "uniform",
            "normalized": state["normalized"],
        },
        recomputed=int(affected_sources.size),
    )


def _patch_rk(
    response: DetectResponse,
    state: Dict[str, object],
    graph: BipartiteGraph,
    delta: GraphDelta,
    mask: np.ndarray,
    backend: ExecutionBackend,
    limit: float,
) -> Optional[PatchResult]:
    """Replay only the RK path samples whose pair touches the delta.

    The RNG schedule is re-derived against the new graph: the diameter
    probes consume the same number of draws, so if the derived sample
    count matches, the (u, v) pairs and per-sample walk seeds are
    identical — and a sample whose endpoints lie outside every
    affected component walks a bitwise-identical path.
    """
    if state["chunks"] != 1 or not delta.ids_stable:
        return None
    n = graph.num_nodes
    nv = graph.num_values
    if state["nodes"] != n or n < 3:
        return None
    params = response.parameters
    epsilon = float(params["epsilon"])
    confidence_delta = float(params["delta"])
    c = float(params["c"])
    max_samples = params.get("max_samples")
    seed = params.get("seed")

    rng = np.random.default_rng(seed)
    diameter = _approximate_vertex_diameter(graph, rng)
    r = sample_size_bound(epsilon, confidence_delta, diameter, c=c)
    if max_samples is not None:
        r = min(r, int(max_samples))
    if r != state["samples"] or r <= 0:
        return None
    pairs = rng.integers(0, n, size=(r, 2))
    walk_seeds = np.random.SeedSequence(seed).spawn(r)

    sample_mask = mask[pairs[:, 0]] | mask[pairs[:, 1]]
    affected_count = int(np.count_nonzero(sample_mask))
    if affected_count > limit * r:
        return None

    acc_old = state["acc_values"]
    if acc_old.shape != (nv,):
        return None
    acc_new = acc_old.copy()
    affected_values = np.flatnonzero(mask[:nv])
    if affected_count:
        seeds_subset = [
            s for s, m in zip(walk_seeds, sample_mask) if m
        ]
        partials = backend.map_chunks(
            graph, "rk", [(pairs[sample_mask], seeds_subset)],
            {"inv_r": 1.0 / r},
        )
        patch = partials[0]
        acc_new[affected_values] = patch[:nv][affected_values]
    else:
        acc_new[affected_values] = 0.0

    values = acc_new * (n / (n - 2))
    scores = {
        graph.value_name(v): float(values[v]) for v in range(nv)
    }
    return PatchResult(
        response=_rebuild(response, scores),
        state={
            "kind": "rk",
            "acc_values": acc_new,
            "chunks": 1,
            "samples": r,
            "nodes": n,
        },
        recomputed=affected_count,
    )
