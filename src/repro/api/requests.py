"""Typed request/response objects for the detection API.

Detection used to be configured through a growing pile of keyword
arguments (``measure=``, ``sample_size=``, ``lcc_variant=``, ...).
:class:`DetectRequest` gathers them into one immutable, hashable value
object that doubles as the score-cache key, and :class:`DetectResponse`
carries the outcome with ``to_dict``/``to_json``/``from_json``
round-trip serialization so results can cross process boundaries (CLI
``--json``, services, result stores).

Custom measures registered via :func:`repro.api.register_measure` read
their extra knobs from ``request.options`` (see
:meth:`DetectRequest.option`); the built-in fields cover the paper's
two measures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.ranking import HomographRanking, RankedValue
from ..perf.config import ExecutionConfig

#: Serialization schema version, bumped on incompatible layout changes.
SCHEMA_VERSION = 1


def _hashable_option(value: object) -> object:
    """Normalize an option value so requests stay hashable and stable.

    JSON turns tuples into lists; canonicalizing sequences to tuples
    (and mappings to sorted pair tuples) keeps a request equal to its
    serialized round-trip and keeps ``cache_key`` hashable.
    """
    if isinstance(value, Mapping):
        return tuple(
            sorted((str(k), _hashable_option(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_hashable_option(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_hashable_option(v) for v in value))
    return value


@dataclass(frozen=True)
class DetectRequest:
    """Configuration of one detection run.

    Parameters
    ----------
    measure:
        Registered measure name (``"betweenness"``, ``"lcc"``, or any
        third-party registration).
    sample_size:
        Betweenness only: number of sampled sources for approximate BC;
        ``None`` computes exactly.  The paper finds ~1% of nodes
        sufficient (§5.4).
    seed:
        RNG seed for the sampled approximation.
    lcc_variant:
        LCC only: ``"attribute-jaccard"`` (paper implementation) or
        ``"value-neighbors"`` (literal Eq. 1).
    endpoints:
        Betweenness only: ``"all"`` (paper) or ``"values"`` (footnote-2
        variant).
    options:
        Free-form extra knobs for custom measures, stored as a sorted
        tuple of ``(name, value)`` pairs so the request stays hashable.
        A mapping passed here is normalized automatically.
    execution:
        Optional :class:`~repro.perf.ExecutionConfig` choosing the
        execution backend (serial / multi-process, per-call or
        persistent pool) for the built-in measures.  Execution changes
        *how* scores are computed, never *what* they are, so it is
        deliberately excluded from :attr:`cache_key` — a parallel run
        can be served from a cached serial result and vice versa, and
        identical requests differing only in execution coalesce into
        one in-flight computation on a serving index.
    """

    measure: str = "betweenness"
    sample_size: Optional[int] = None
    seed: Optional[int] = None
    lcc_variant: str = "attribute-jaccard"
    endpoints: str = "all"
    options: Tuple[Tuple[str, object], ...] = ()
    execution: Optional[ExecutionConfig] = None

    def __post_init__(self) -> None:
        pairs = (
            self.options.items()
            if isinstance(self.options, Mapping)
            else self.options
        )
        normalized = tuple(
            sorted((str(k), _hashable_option(v)) for k, v in pairs)
        )
        object.__setattr__(self, "options", normalized)
        if isinstance(self.execution, Mapping):
            object.__setattr__(
                self, "execution", ExecutionConfig.from_dict(self.execution)
            )

    def option(self, name: str, default: object = None) -> object:
        """Value of an extra knob, for custom measures."""
        for key, value in self.options:
            if key == name:
                return value
        return default

    def with_overrides(self, **overrides) -> "DetectRequest":
        """A copy with some fields replaced."""
        return replace(self, **overrides)

    @property
    def cache_key(self) -> Tuple:
        """Hashable identity of this configuration for score caching."""
        return (
            self.measure,
            self.sample_size,
            self.seed,
            self.lcc_variant,
            self.endpoints,
            self.options,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; inverse of :meth:`from_dict`."""
        return {
            "measure": self.measure,
            "sample_size": self.sample_size,
            "seed": self.seed,
            "lcc_variant": self.lcc_variant,
            "endpoints": self.endpoints,
            "options": dict(self.options),
            "execution": (
                self.execution.to_dict() if self.execution else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DetectRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        execution = payload.get("execution")
        return cls(
            measure=str(payload.get("measure", "betweenness")),
            sample_size=payload.get("sample_size"),
            seed=payload.get("seed"),
            lcc_variant=str(payload.get("lcc_variant", "attribute-jaccard")),
            endpoints=str(payload.get("endpoints", "all")),
            options=payload.get("options") or (),
            execution=(
                ExecutionConfig.from_dict(execution) if execution else None
            ),
        )


@dataclass
class DetectResponse:
    """Outcome of one detection run, serializable end to end.

    ``ranking`` orders every scored value (best candidate first) and
    ``scores`` is the same data as a map.  ``cached`` marks responses
    served from a :class:`~repro.api.index.HomographIndex` score cache
    without recomputation; their timings are those of the original run.
    """

    measure: str
    ranking: HomographRanking
    scores: Dict[str, float]
    descending: bool
    graph_seconds: float
    measure_seconds: float
    parameters: Dict[str, object] = field(default_factory=dict)
    cached: bool = False
    request: Optional[DetectRequest] = None

    def top(self, k: int) -> List[RankedValue]:
        """The best ``k`` ranked entries (rank, value, score)."""
        return self.ranking.top(k)

    def top_values(self, k: int) -> List[str]:
        """The best ``k`` value names only."""
        return self.ranking.top_values(k)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, top: Optional[int] = None) -> Dict[str, object]:
        """JSON-safe representation; inverse of :meth:`from_dict`.

        ``top`` truncates the serialized ranking to its best ``top``
        entries (the CLI's ``--json`` uses this to keep payloads small);
        ``None`` serializes everything.
        """
        entries = self.ranking.top(top) if top is not None else list(
            self.ranking
        )
        return {
            "schema": SCHEMA_VERSION,
            "measure": self.measure,
            "descending": self.descending,
            "graph_seconds": self.graph_seconds,
            "measure_seconds": self.measure_seconds,
            "cached": self.cached,
            "parameters": dict(self.parameters),
            "request": self.request.to_dict() if self.request else None,
            "ranking": [
                {"rank": e.rank, "value": e.value, "score": e.score}
                for e in entries
            ],
        }

    def to_json(self, indent: Optional[int] = None,
                top: Optional[int] = None) -> str:
        """Serialize :meth:`to_dict` as deterministic (sorted) JSON."""
        return json.dumps(self.to_dict(top=top), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DetectResponse":
        """Rebuild a response from :meth:`to_dict` output.

        Rejects payloads whose ``schema`` does not match this build's
        :data:`SCHEMA_VERSION`.
        """
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported DetectResponse schema {schema!r}; "
                f"this build reads schema {SCHEMA_VERSION}"
            )
        entries = [
            RankedValue(
                rank=int(e["rank"]),
                value=str(e["value"]),
                score=float(e["score"]),
            )
            for e in payload["ranking"]
        ]
        descending = bool(payload["descending"])
        measure = str(payload["measure"])
        request_payload = payload.get("request")
        return cls(
            measure=measure,
            ranking=HomographRanking.from_entries(
                entries, descending=descending, measure=measure
            ),
            scores={e.value: e.score for e in entries},
            descending=descending,
            graph_seconds=float(payload["graph_seconds"]),
            measure_seconds=float(payload["measure_seconds"]),
            parameters=dict(payload.get("parameters") or {}),
            cached=bool(payload.get("cached", False)),
            request=(
                DetectRequest.from_dict(request_payload)
                if request_payload
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "DetectResponse":
        """Parse a :meth:`to_json` payload back into a response."""
        return cls.from_dict(json.loads(text))
