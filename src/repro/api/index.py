"""The stateful :class:`HomographIndex` — construct once, query many.

The one-shot ``DomainNet.from_lake(...).detect(...)`` surface rebuilds
and rescores from scratch on every use; a service cannot afford that.
The index keeps the lake, builds the bipartite graph lazily, caches
scores per ``(measure, config)``, and supports incremental
``add_table``/``remove_table``/``replace_table`` that *splice* the
delta into the built graph and patch the cached scores in place —
O(delta) per mutation, bit-identical to a from-scratch rebuild — with
full invalidation as the always-correct fallback::

    from repro import DetectRequest, HomographIndex

    index = HomographIndex(lake)
    response = index.detect(DetectRequest(measure="betweenness",
                                          sample_size=1000, seed=7))
    index.detect(measure="betweenness", sample_size=1000, seed=7)  # cache hit
    index.add_table(new_table)       # CSR splice + scoped score patch
    index.detect(measure="lcc")      # served from the patched cache
    index.last_mutation              # delta stats of the add

Graph construction is deferred until a query (or the ``graph``
property) needs it, so a burst of ``add_table`` calls costs one
rebuild, not N.

The index is a *serving* object: :meth:`detect` is thread-safe, and
concurrent calls for the same ``(measure, config)`` are coalesced into
one computation (single-flight) — the first caller computes, the rest
block and share the result.  When constructed with a persistent
execution config (``ExecutionConfig(n_jobs=4, persistent=True)``) the
index owns one long-lived worker pool shared by every query, which
must be released through the explicit lifecycle::

    with HomographIndex(lake, execution=cfg) as index:
        index.detect(measure="betweenness")   # forks the pool
        index.detect(measure="lcc")           # reuses the warm pool
    # pool and shared-memory export released here

:meth:`asubmit` and :meth:`detect_many` queue requests onto that
shared pool from background threads instead of spinning machinery per
call.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.builder import build_graph
from ..core.communities import MeaningEstimate, estimate_meanings
from ..core.delta import LakeLedger, plan_mutation, table_column_counts
from ..core.errors import HomographClassification, classify_homographs
from ..core.graph import BipartiteGraph
from ..core.ranking import HomographRanking
from ..datalake.lake import DataLake
from ..datalake.table import Table
from ..perf.backends import (
    ExecutionBackend,
    SerialBackend,
    backend_stats,
    resolve_backend,
    use_backend,
)
from ..perf.config import ExecutionConfig
# Submodule import (not the package) keeps repro.api importable from
# repro.serving.http / .client, which import this package in turn.
from ..serving.singleflight import SingleFlight
from .maintenance import affected_nodes, patch_entry
from .measures import run_measure
from .requests import DetectRequest, DetectResponse

#: Threads used by :meth:`HomographIndex.asubmit`/``detect_many`` to
#: drive requests concurrently.  Kernel work happens in the worker
#: *processes*; these threads only orchestrate, so a small pool is
#: plenty.
_DISPATCH_THREADS = 4


@dataclass(frozen=True)
class CacheInfo:
    """Score-cache statistics, in the spirit of ``functools.lru_cache``.

    ``coalesced`` counts calls that joined another caller's in-flight
    computation (single-flight followers); they are neither hits nor
    misses — no cached entry existed yet, but nothing was recomputed.
    """

    hits: int
    misses: int
    size: int
    coalesced: int = 0


@dataclass
class _CacheEntry:
    """One stored score-cache slot.

    ``generation`` records which graph generation the response was
    computed (or last patched) against — the eager-eviction invariant
    is that every live entry's generation equals the index's.
    ``state`` is the measure's opaque maintenance payload
    (``MeasureOutput.state``), ``None`` for snapshot-loaded entries
    and custom measures, which delta mutation therefore evicts.
    """

    response: DetectResponse
    generation: int
    state: Optional[object] = None


def execute_request(
    graph: BipartiteGraph,
    request: DetectRequest,
    graph_seconds: float = 0.0,
    state_out: Optional[Dict] = None,
) -> DetectResponse:
    """Run one detection request against a pre-built graph (no caching).

    The stateless core of :meth:`HomographIndex.detect`, also used by
    the legacy ``DomainNet`` shim.  ``state_out``, when given, receives
    the measure's maintenance payload under ``"state"`` so a caching
    caller can patch the result across lake mutations.
    """
    start = time.perf_counter()
    output = run_measure(graph, request)
    measure_seconds = time.perf_counter() - start
    if state_out is not None:
        state_out["state"] = output.state
    ranking = HomographRanking(
        output.scores, descending=output.descending, measure=request.measure
    )
    return DetectResponse(
        measure=request.measure,
        ranking=ranking,
        scores={entry.value: entry.score for entry in ranking},
        descending=output.descending,
        graph_seconds=graph_seconds,
        measure_seconds=measure_seconds,
        parameters=dict(output.parameters),
        cached=False,
        request=request,
    )


class HomographIndex:
    """A queryable homograph index over a (mutable) data lake.

    Parameters
    ----------
    lake:
        The lake to index; an empty one is created when omitted.  The
        index holds a reference (not a copy): mutate through
        :meth:`add_table`/:meth:`remove_table` so caches stay honest,
        or call :meth:`invalidate` after mutating the lake directly.
    prune_candidates:
        ``True`` (default) applies the paper's preprocessing — drop
        values occurring only once in the whole lake.  ``False`` keeps
        every value node (Example 3.6 reproduction).
    execution:
        Default :class:`~repro.perf.ExecutionConfig` applied to every
        :meth:`detect` call whose request does not carry its own.
        ``None`` (default) scores serially.  ``ExecutionConfig(
        n_jobs=4)`` fans score computations across worker processes
        (one pool per call); add ``persistent=True`` and the index
        keeps one warm pool plus the shared-memory graph export alive
        across calls — release it with :meth:`close` or by using the
        index as a context manager.  Execution never changes scores,
        so it does not participate in the score-cache key.
    backend:
        An externally-owned :class:`~repro.perf.ExecutionBackend` the
        index routes its queries through instead of resolving its own
        from ``execution``.  The owner (e.g. a multi-lake
        :class:`~repro.api.Workspace` sharing one pool across
        indexes) keeps the backend's lifecycle: :meth:`close` releases
        this index's shared-memory graph export but never tears the
        backend down.

    Thread safety
    -------------
    :meth:`detect`, the mutation methods, and the cache accessors may
    be called from multiple threads.  Concurrent ``detect`` calls with
    the same cache key coalesce into a single computation; distinct
    keys run independently (and share the persistent pool, when one is
    configured).
    """

    def __init__(
        self,
        lake: Optional[DataLake] = None,
        prune_candidates: bool = True,
        execution: Optional[ExecutionConfig] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self._lake = lake if lake is not None else DataLake()
        self._prune_candidates = prune_candidates
        self._execution = execution
        self._graph: Optional[BipartiteGraph] = None
        self._graph_seconds = 0.0
        self._unpruned_graph: Optional[BipartiteGraph] = None
        self._score_cache: Dict[Tuple, _CacheEntry] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._coalesced = 0
        # Delta-mutation state: the lake ledger (occurrence counts +
        # rebuild-order ranks) is built lazily before the first delta
        # splice and maintained in O(delta) afterwards; it is dropped
        # whenever the graph is (invalidate / fallback).  The last
        # mutation's delta statistics are kept for stats()/serving.
        self._ledger: Optional[LakeLedger] = None
        self._last_mutation: Optional[Dict[str, object]] = None
        # Serving state: one reentrant lock guards every mutable field
        # above; the single-flight group deduplicates concurrent
        # computations; generation stamps detect() runs so a result
        # computed against a lake that mutated mid-flight is served to
        # its waiters but never stored.
        self._lock = threading.RLock()
        self._singleflight = SingleFlight()
        self._generation = 0
        self._backend: Optional[ExecutionBackend] = backend
        # A backend handed in from outside stays the owner's: the
        # index uses it but must never close it (only release its own
        # graph export on invalidation / close).
        self._owns_backend = backend is None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Set by :meth:`load`: the snapshot directory whose mmap-backed
        # CSR arrays the graph may hold views over.  close() drops the
        # graph then, so the directory's file handles are released and
        # the snapshot can be deleted even on strict filesystems.
        self._snapshot_path = None
        # Admission control: detect() calls that passed the closed
        # check are counted here; close() rejects new calls, then
        # waits on `_drained` for the admitted ones to finish before
        # tearing the backend down under them.
        self._active = 0
        self._drained = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_lake(
        cls, lake: DataLake, prune_candidates: bool = True
    ) -> "HomographIndex":
        """Mirror of the legacy ``DomainNet.from_lake`` spelling."""
        return cls(lake, prune_candidates=prune_candidates)

    @classmethod
    def from_directory(
        cls, directory, prune_candidates: bool = True
    ) -> "HomographIndex":
        """Index every ``*.csv`` table under ``directory``."""
        from ..datalake.csv_io import load_lake

        return cls(load_lake(directory), prune_candidates=prune_candidates)

    # ------------------------------------------------------------------
    # Snapshot persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Dict[str, object]:
        """Publish this index as an on-disk snapshot; returns its manifest.

        Writes the lake, the (lazily built, if needed) CSR graph, the
        vocabularies, attribute profiles, and every cached
        ``(measure, config)`` response into ``path`` atomically — a
        staging directory is hashed, manifested, fsynced, and renamed
        into place, so a crash never leaves a torn snapshot.  Load it
        back with :meth:`load` (or mount it via
        ``Workspace.attach(name, path)``) to skip the graph build and
        serve the cached configurations with ``cached=True``
        immediately.
        """
        from ..snapshot.artifacts import build_snapshot

        with self._lock:
            graph = self.graph  # built lazily under the same RLock
            graph_seconds = self._graph_seconds
            lake = self._lake
            prune = self._prune_candidates
            responses = [
                entry.response for entry in self._score_cache.values()
            ]
        return build_snapshot(
            path,
            lake=lake,
            graph=graph,
            prune_candidates=prune,
            graph_seconds=graph_seconds,
            responses=responses,
        )

    @classmethod
    def load(
        cls,
        path,
        execution: Optional[ExecutionConfig] = None,
        backend: Optional[ExecutionBackend] = None,
        verify: bool = True,
        mmap: bool = True,
    ) -> "HomographIndex":
        """Rehydrate an index from a :meth:`save` snapshot.

        The graph build is skipped: with ``mmap=True`` (default) the
        CSR arrays are mapped read-only straight from the snapshot
        files, so a cold start costs a manifest check plus two mmaps
        instead of a full rebuild.  The score cache is pre-warmed with
        every stored response — repeating a stored configuration
        answers ``cached=True`` with byte-identical payloads.
        ``verify=False`` skips the sha256 content-hash pass (format
        and structural checks still run); ``execution``/``backend``
        mirror the constructor.  Raises a typed
        :class:`~repro.snapshot.SnapshotError` subclass on any
        corrupt, truncated, or future-format snapshot.
        """
        from ..snapshot.artifacts import load_snapshot

        loaded = load_snapshot(path, verify=verify, mmap=mmap)
        index = cls(
            loaded.lake,
            prune_candidates=loaded.prune_candidates,
            execution=execution,
            backend=backend,
        )
        index._graph = loaded.graph
        index._graph_seconds = loaded.graph_seconds
        for response in loaded.responses:
            # Snapshot responses carry no maintenance state (it never
            # serializes), so the first delta mutation evicts them.
            index._score_cache[response.request.cache_key] = _CacheEntry(
                response=response, generation=0, state=None
            )
        index._snapshot_path = loaded.path
        return index

    @property
    def snapshot_path(self):
        """The snapshot directory this index was loaded from, if any."""
        return self._snapshot_path

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def lake(self) -> DataLake:
        """The underlying data lake (held by reference)."""
        return self._lake

    @property
    def prune_candidates(self) -> bool:
        """Whether the paper's min-occurrence pruning is applied."""
        return self._prune_candidates

    @property
    def execution(self) -> Optional[ExecutionConfig]:
        """The index-level default execution configuration."""
        return self._execution

    @property
    def graph(self) -> BipartiteGraph:
        """The bipartite graph, built lazily on first access."""
        with self._lock:
            if self._graph is None:
                start = time.perf_counter()
                self._graph = build_graph(
                    self._lake,
                    min_occurrences=2 if self._prune_candidates else 1,
                )
                self._graph_seconds = time.perf_counter() - start
            return self._graph

    @property
    def graph_seconds(self) -> float:
        """Build time of the current graph (0.0 until first build)."""
        return self._graph_seconds

    @property
    def unpruned_graph(self) -> BipartiteGraph:
        """The full graph with every value node, for error triage.

        Identical to :attr:`graph` when ``prune_candidates=False``;
        otherwise built once on demand and cached until the lake
        changes.
        """
        if not self._prune_candidates:
            return self.graph
        with self._lock:
            if self._unpruned_graph is None:
                self._unpruned_graph = build_graph(self._lake)
            return self._unpruned_graph

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Add a table, splicing the delta into graph and score caches.

        With a built graph the mutation is O(delta): the CSR arrays are
        patched via :meth:`~repro.core.graph.BipartiteGraph.splice_rows`
        and cached scores are maintained in place (bit-identical to a
        rebuild) instead of dropped.  Without one — or when the delta
        planner declines — the caches invalidate as before and the next
        query rebuilds.  :attr:`last_mutation` reports which path ran.
        """
        with self._lock:
            if self._graph is None:
                self._lake.add_table(table)
                self._mutate_fallback("add", table.name, "graph-unbuilt")
                return
            self._ensure_ledger()
            added = table_column_counts(table)
            self._lake.add_table(table)
            self._delta_mutate("add", table.name, [], added)

    def remove_table(self, name: str) -> Table:
        """Remove and return a table; delta semantics of :meth:`add_table`."""
        with self._lock:
            if self._graph is None:
                table = self._lake.remove_table(name)
                self._mutate_fallback("remove", name, "graph-unbuilt")
                return table
            self._ensure_ledger()
            table = self._lake.remove_table(name)
            removed = table_column_counts(table)
            self._delta_mutate("remove", name, removed, [])
            return table

    def replace_table(self, table: Table) -> None:
        """Replace the same-named table; delta semantics of :meth:`add_table`.

        The replace is normalized to "all old columns removed, all new
        columns added" — same-named columns may still differ in content.
        """
        with self._lock:
            if self._graph is None:
                self._lake.replace_table(table)
                self._mutate_fallback("replace", table.name, "graph-unbuilt")
                return
            self._ensure_ledger()
            old = self._lake.table(table.name)
            removed = table_column_counts(old)
            added = table_column_counts(table)
            self._lake.replace_table(table)
            self._delta_mutate("replace", table.name, removed, added)

    @property
    def last_mutation(self) -> Optional[Dict[str, object]]:
        """Delta statistics of the most recent table mutation.

        ``None`` until the first mutation; otherwise a JSON-safe dict
        with ``op``, ``table``, ``delta_values``, ``delta_edges``,
        ``recomputed_sources``, ``splice_seconds``, ``patched_entries``,
        ``evicted_entries``, ``generation``, and ``fallback`` (``None``
        when the splice path ran, else the reason the mutation fell
        back to full invalidation).
        """
        with self._lock:
            return dict(self._last_mutation) if self._last_mutation else None

    def _min_occurrences(self) -> int:
        """The graph build threshold this index uses."""
        return 2 if self._prune_candidates else 1

    def _ensure_ledger(self) -> None:
        """Build the lake ledger (pre-mutation state) if absent."""
        if self._ledger is None:
            self._ledger = LakeLedger.from_lake(self._lake)

    def _patch_backend(self) -> ExecutionBackend:
        """The backend score maintenance runs on.

        A live persistent backend serves the delta recomputes from its
        warm pool and keyed export; otherwise maintenance runs serially
        — the recompute is shipped as a single ordered chunk either
        way, so the backend choice never changes the bits.
        """
        backend = self._backend
        if backend is not None and getattr(backend, "persistent", False):
            return backend
        return SerialBackend()

    def _mutate_fallback(self, op: str, name: str, reason: str) -> None:
        """Record a mutation served by full invalidation (caller locked)."""
        self._ledger = None
        self.invalidate()
        self._last_mutation = {
            "op": op,
            "table": name,
            "fallback": reason,
            "delta_values": None,
            "delta_edges": None,
            "recomputed_sources": None,
            "splice_seconds": None,
            "patched_entries": 0,
            "evicted_entries": 0,
            "generation": self._generation,
        }

    def _delta_mutate(
        self, op: str, name: str, removed: list, added: list
    ) -> None:
        """Splice one applied lake mutation into graph + score caches.

        Called under the lock with the lake already mutated and the
        ledger still describing the pre-mutation state.  Plans the
        splice, patches every cached entry that supports maintenance
        (evicting the rest — including any entry from a superseded
        generation, so a churning lake cannot grow the cache), and
        commits graph, caches, and generation atomically.  Any failure
        degrades to :meth:`_mutate_fallback`, which is always correct.
        """
        start = time.perf_counter()
        try:
            spec = plan_mutation(
                self._graph, self._ledger, self._lake,
                removed, added, self._min_occurrences(),
            )
            if spec is None:
                self._mutate_fallback(op, name, "planner")
                return
            new_graph, delta = self._graph.splice_rows(spec)
        except Exception:
            self._mutate_fallback(op, name, "splice")
            return
        splice_seconds = time.perf_counter() - start

        try:
            mask = affected_nodes(new_graph, delta)
            backend = self._patch_backend()
            new_cache: Dict[Tuple, _CacheEntry] = {}
            patched = evicted = recomputed = 0
            for key, entry in self._score_cache.items():
                if entry.generation != self._generation:
                    evicted += 1  # stale generation: evict eagerly
                    continue
                result = patch_entry(
                    entry.response, entry.state, new_graph, delta,
                    mask, backend,
                )
                if result is None:
                    evicted += 1
                    continue
                new_cache[key] = _CacheEntry(
                    response=result.response,
                    generation=self._generation + 1,
                    state=result.state,
                )
                patched += 1
                recomputed += result.recomputed
        except Exception:
            self._mutate_fallback(op, name, "maintenance")
            return

        old_graph = self._graph
        self._generation += 1
        self._graph = new_graph
        self._graph_seconds = splice_seconds
        self._unpruned_graph = None
        self._score_cache = new_cache
        if self._backend is not None:
            # Only the superseded graph's keyed export is dropped; the
            # pool (and siblings' exports on a shared backend) stay.
            self._backend.invalidate_export(old_graph)
        self._last_mutation = {
            "op": op,
            "table": name,
            "fallback": None,
            "delta_values": delta.delta_values,
            "delta_edges": delta.delta_edges,
            "recomputed_sources": recomputed,
            "splice_seconds": splice_seconds,
            "patched_entries": patched,
            "evicted_entries": evicted,
            "generation": self._generation,
        }

    def invalidate(self) -> None:
        """Drop the graph and score caches (call after direct lake edits).

        Also releases the persistent backend's shared-memory graph
        export, if one is live — the worker pool itself stays warm and
        re-attaches to the next build's export on the next query.
        In-flight :meth:`detect` calls still return to their callers;
        a result is cached only if the graph it scored is still
        current when it lands.
        """
        with self._lock:
            old_graph, self._graph = self._graph, None
            self._graph_seconds = 0.0
            self._unpruned_graph = None
            self._score_cache.clear()
            self._ledger = None
            self._generation += 1
            if self._backend is not None:
                if self._owns_backend:
                    self._backend.invalidate_export()
                elif old_graph is not None:
                    # A shared backend holds sibling indexes' exports
                    # too: drop only the graph this index published.
                    self._backend.invalidate_export(old_graph)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the serving resources this index owns (idempotent).

        New :meth:`detect`/:meth:`asubmit` calls are rejected with
        :class:`RuntimeError` immediately; calls already admitted
        finish normally (close waits for them).  Queued
        :meth:`asubmit` futures that have not started are cancelled —
        one caught starting in the same instant fails with
        :class:`RuntimeError` instead, so batch callers racing close
        should expect either.  Then the dispatch threads and the
        persistent worker pool shut down (unlinking the pool's
        shared-memory segments).  An externally-owned backend is left
        running — only this index's graph export is released.  Cached
        state and the lake itself remain readable afterwards.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        # Cancel queued futures before draining, so the dispatcher
        # does not keep starting work that the closed flag would only
        # reject one task at a time.  (A future the dispatcher picks
        # up in the instant before cancellation lands fails with
        # RuntimeError instead of CancelledError — see the docs.)
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            while self._active > 0:
                self._drained.wait()
            backend, self._backend = self._backend, None
            graph = self._graph
        if executor is not None:
            executor.shutdown(wait=True)
        if backend is not None:
            if self._owns_backend:
                backend.close()
            elif graph is not None:
                backend.invalidate_export(graph)
        if self._snapshot_path is not None:
            # A snapshot-mounted graph holds mmap views over files in
            # the snapshot directory; drop them so the open file
            # handles are released and the directory can be deleted
            # even on Windows-style strict filesystems.  The lake and
            # cached responses stay readable, and the graph would
            # rebuild losslessly from the lake if accessed again.
            with self._lock:
                self._graph = None
                self._unpruned_graph = None

    def __enter__(self) -> "HomographIndex":
        """Enter a ``with`` block; the index itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the index (pool, dispatch threads) on block exit."""
        self.close()

    def _serving_backend(self) -> Optional[ExecutionBackend]:
        """The long-lived backend for the index default config, if any.

        Reached from admitted :meth:`detect` calls and the
        :meth:`asubmit` warm-up; :meth:`close` waits for admitted
        calls to drain before releasing the backend, and the guard
        below rejects creation once that drain has completed.
        """
        if self._execution is None and self._owns_backend:
            return None
        with self._lock:
            # Creating a backend is legal while admitted calls are
            # draining (close() will still collect it at swap time),
            # but after the drain completes close() has already taken
            # the backend — creating one then would leak it.
            if self._closed and self._active == 0:
                raise RuntimeError("HomographIndex is closed")
            if self._backend is None:
                self._backend = resolve_backend(self._execution)
            return self._backend

    def _dispatcher(self) -> ThreadPoolExecutor:
        """The lazy thread pool behind :meth:`asubmit`/``detect_many``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("HomographIndex is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=_DISPATCH_THREADS,
                    thread_name_prefix="homograph-index",
                )
            return self._executor

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _coerce_request(
        self, request: Optional[DetectRequest], overrides: Dict
    ) -> DetectRequest:
        """Normalize the ``detect`` calling conventions to one request."""
        if request is None:
            request = DetectRequest(**overrides)
        elif overrides:
            request = request.with_overrides(**overrides)
        return request

    def detect(
        self,
        request: Optional[DetectRequest] = None,
        **overrides,
    ) -> DetectResponse:
        """Score and rank every value node.

        Accepts a :class:`DetectRequest`, keyword overrides applied on
        top of one, or keywords alone (``detect(measure="lcc")``).
        Responses are cached per ``(measure, config)``: a repeat call
        with the same configuration returns the stored scores with
        ``cached=True`` and does not recompute.

        Thread-safe with single-flight semantics: when several threads
        request the same configuration concurrently, one computes and
        the others block until it finishes, then share its result
        (``cached=True`` for the coalesced callers).
        """
        request = self._coerce_request(request, overrides)
        use_default = request.execution is None and (
            self._execution is not None or not self._owns_backend
        )
        if use_default and self._execution is not None:
            request = request.with_overrides(execution=self._execution)

        with self._lock:
            if self._closed:
                raise RuntimeError("HomographIndex is closed")
            generation = self._generation
            hit = self._score_cache.get(request.cache_key)
            if hit is not None:
                self._cache_hits += 1
                return self._serve(hit.response, cached=True)
            # Admitted: close() now waits for this call to finish
            # instead of tearing the backend down underneath it.
            self._active += 1

        try:
            return self._detect_admitted(request, generation, use_default)
        finally:
            with self._lock:
                self._active -= 1
                if self._active == 0:
                    self._drained.notify_all()

    def _detect_admitted(
        self,
        request: DetectRequest,
        generation: int,
        use_default: bool,
    ) -> DetectResponse:
        """The post-admission body of :meth:`detect`."""
        served_from_cache = [False]

        def compute() -> DetectResponse:
            # The pre-flight cache check and singleflight.do are not
            # atomic: a previous leader may have landed (and been
            # forgotten) in between, so re-check before computing.
            with self._lock:
                hit = self._score_cache.get(request.cache_key)
                if hit is not None:
                    self._cache_hits += 1
                    served_from_cache[0] = True
                    return hit.response
            with self._lock:
                graph = self.graph  # built once, lazily
                # Stamp the generation the graph was *built* under (a
                # mutation between the pre-check and here gives us the
                # fresh graph, whose result is perfectly cacheable).
                built_generation = self._generation
                # Snapshot under the same lock: a mutation racing this
                # read would otherwise pair the old graph with the new
                # (zeroed) build time.
                graph_seconds = self._graph_seconds
            backend = self._serving_backend() if use_default else None
            scope = use_backend(backend) if backend is not None \
                else nullcontext()
            state_box: Dict[str, object] = {}
            with scope:
                response = execute_request(
                    graph, request, graph_seconds=graph_seconds,
                    state_out=state_box,
                )
            with self._lock:
                self._cache_misses += 1
                # A mutation may have landed while we computed; serve
                # the (then-stale) result but never cache it.
                if self._generation == built_generation:
                    self._score_cache[request.cache_key] = _CacheEntry(
                        response=response,
                        generation=built_generation,
                        state=state_box.get("state"),
                    )
            return response

        response, leader = self._singleflight.do(
            (generation, request.cache_key), compute
        )
        if leader and not served_from_cache[0]:
            return self._serve(response, cached=False)
        if not leader:
            with self._lock:
                self._coalesced += 1
        return self._serve(response, cached=True)

    def is_warm(
        self,
        request: Optional[DetectRequest] = None,
        **overrides,
    ) -> bool:
        """Whether this request would serve without fresh pool work.

        ``True`` when the configuration's response is already cached,
        or when an identical computation is in flight right now — a
        :meth:`detect` call would coalesce onto it as a single-flight
        follower instead of computing.  A snapshot, not a reservation:
        the admission gate uses it as a scheduling hint (warm requests
        are admitted ahead of fresh computations under overload), so a
        rare stale answer costs one mis-prioritized request, nothing
        more.  ``False`` once the index is closed.
        """
        request = self._coerce_request(request, overrides)
        with self._lock:
            if self._closed:
                return False
            if request.cache_key in self._score_cache:
                return True
            generation = self._generation
        return self._singleflight.contains(
            (generation, request.cache_key)
        )

    def asubmit(
        self,
        request: Optional[DetectRequest] = None,
        **overrides,
    ) -> "Future[DetectResponse]":
        """Submit a detection asynchronously; returns a future.

        The request is queued onto the index's dispatch threads and
        executed through :meth:`detect`, so it participates in the
        score cache, single-flight coalescing, and the shared
        persistent pool.  Call ``.result()`` on the returned
        :class:`concurrent.futures.Future` to wait for the response.
        """
        request = self._coerce_request(request, overrides)
        with self._lock:
            if self._closed:
                raise RuntimeError("HomographIndex is closed")
        if request.execution is None:
            # This request will use the index pool: fork it (if
            # persistent and not yet started) on *this* thread, before
            # the dispatcher threads exist — forking from a thread
            # pool risks cloning a sibling's held locks into the
            # child.  A request carrying its own execution never
            # touches the index pool, so don't fork one for it.
            backend = self._serving_backend()
            if backend is not None:
                ensure = getattr(backend, "ensure_started", None)
                if ensure is not None:
                    ensure()
        return self._dispatcher().submit(self.detect, request)

    def detect_many(
        self,
        requests: Sequence[DetectRequest],
    ) -> List[DetectResponse]:
        """Run a batch of requests on the shared machinery.

        Requests are dispatched concurrently (duplicates coalesce via
        single-flight; distinct configurations queue onto the one
        persistent pool when configured) and the responses come back
        aligned with the input order.
        """
        futures = [self.asubmit(request) for request in requests]
        return [future.result() for future in futures]

    @staticmethod
    def _serve(stored: DetectResponse, cached: bool) -> DetectResponse:
        """Copy the mutable parts so callers cannot poison the cache.

        The ranking is shared: its entries are frozen and it is treated
        as immutable throughout.
        """
        return replace(
            stored,
            scores=dict(stored.scores),
            parameters=dict(stored.parameters),
            cached=cached,
        )

    # ------------------------------------------------------------------
    # Analysis conveniences (fold the one-off helpers callers grew)
    # ------------------------------------------------------------------
    def estimate_meanings(
        self, value: str, threshold: float = 0.25
    ) -> MeaningEstimate:
        """Cluster a value's attributes into meanings (§6 direction 1)."""
        return estimate_meanings(self.graph, value, threshold=threshold)

    def classify_errors(
        self, values: Iterable[str], **kwargs
    ) -> Dict[str, HomographClassification]:
        """Genuine-vs-error triage (§6 direction 2).

        Uses the index's cached unpruned graph, replacing the old CLI
        pattern of rebuilding the whole graph per call.
        """
        return classify_homographs(
            self._lake, values, graph=self.unpruned_graph, **kwargs
        )

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One JSON-safe snapshot of the index's serving state.

        Collects what an operator dashboard (or ``GET /stats`` on the
        HTTP front-end) needs in a single locked read: lake size,
        whether the graph is built, the score-cache counters, the
        admission state, and the execution-pool health.  The ``pool``
        block reports ``configured=False`` for serial indexes; for a
        persistent :class:`~repro.perf.ProcessBackend` it includes
        whether the worker pool is alive and how many shared-memory
        segments are exported.
        """
        with self._lock:
            backend = self._backend
            pool: Dict[str, object] = backend_stats(
                backend,
                configured=(
                    self._execution is not None or not self._owns_backend
                ),
            )
            if backend is not None:
                pool["shared"] = not self._owns_backend
                if not self._owns_backend:
                    # Count only this index's export on a shared
                    # backend — siblings' segments are theirs.
                    export_names_for = getattr(
                        backend, "export_names_for", None
                    )
                    names = (
                        export_names_for(self._graph)
                        if export_names_for is not None
                        and self._graph is not None
                        else ()
                    )
                    pool["segments"] = len(names)
            return {
                "tables": len(self._lake),
                "snapshot": (
                    None if self._snapshot_path is None
                    else str(self._snapshot_path)
                ),
                "graph_built": self._graph is not None,
                "graph_seconds": self._graph_seconds,
                "generation": self._generation,
                "closed": self._closed,
                "active_detections": self._active,
                "in_flight_keys": self._singleflight.in_flight(),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "size": len(self._score_cache),
                    "coalesced": self._coalesced,
                },
                "mutation": (
                    dict(self._last_mutation)
                    if self._last_mutation else None
                ),
                "pool": pool,
            }

    def cache_info(self) -> CacheInfo:
        """Hit/miss/coalesce counters (cumulative) and cache size."""
        with self._lock:
            return CacheInfo(
                hits=self._cache_hits,
                misses=self._cache_misses,
                size=len(self._score_cache),
                coalesced=self._coalesced,
            )

    def clear_cache(self) -> None:
        """Drop cached scores without touching the graph."""
        with self._lock:
            self._score_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = "unbuilt" if self._graph is None else repr(self._graph)
        return (
            f"HomographIndex(tables={len(self._lake)}, "
            f"prune={self._prune_candidates}, graph={built}, "
            f"cached_results={len(self._score_cache)})"
        )
