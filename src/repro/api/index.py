"""The stateful :class:`HomographIndex` — construct once, query many.

The one-shot ``DomainNet.from_lake(...).detect(...)`` surface rebuilds
and rescores from scratch on every use; a service cannot afford that.
The index keeps the lake, builds the bipartite graph lazily, caches
scores per ``(measure, config)``, and supports incremental
``add_table``/``remove_table`` that invalidate instead of forcing the
caller to re-instantiate::

    from repro import DetectRequest, HomographIndex

    index = HomographIndex(lake)
    response = index.detect(DetectRequest(measure="betweenness",
                                          sample_size=1000, seed=7))
    index.detect(measure="betweenness", sample_size=1000, seed=7)  # cache hit
    index.add_table(new_table)       # invalidates graph + score cache
    index.detect(measure="lcc")      # recomputed on the updated lake

Graph construction is deferred until a query (or the ``graph``
property) needs it, so a burst of ``add_table`` calls costs one
rebuild, not N.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.builder import build_graph
from ..core.communities import MeaningEstimate, estimate_meanings
from ..core.errors import HomographClassification, classify_homographs
from ..core.graph import BipartiteGraph
from ..core.ranking import HomographRanking
from ..datalake.lake import DataLake
from ..datalake.table import Table
from ..perf.config import ExecutionConfig
from .measures import run_measure
from .requests import DetectRequest, DetectResponse


@dataclass(frozen=True)
class CacheInfo:
    """Score-cache statistics, in the spirit of ``functools.lru_cache``."""

    hits: int
    misses: int
    size: int


def execute_request(
    graph: BipartiteGraph,
    request: DetectRequest,
    graph_seconds: float = 0.0,
) -> DetectResponse:
    """Run one detection request against a pre-built graph (no caching).

    The stateless core of :meth:`HomographIndex.detect`, also used by
    the legacy ``DomainNet`` shim.
    """
    start = time.perf_counter()
    output = run_measure(graph, request)
    measure_seconds = time.perf_counter() - start
    ranking = HomographRanking(
        output.scores, descending=output.descending, measure=request.measure
    )
    return DetectResponse(
        measure=request.measure,
        ranking=ranking,
        scores={entry.value: entry.score for entry in ranking},
        descending=output.descending,
        graph_seconds=graph_seconds,
        measure_seconds=measure_seconds,
        parameters=dict(output.parameters),
        cached=False,
        request=request,
    )


class HomographIndex:
    """A queryable homograph index over a (mutable) data lake.

    Parameters
    ----------
    lake:
        The lake to index; an empty one is created when omitted.  The
        index holds a reference (not a copy): mutate through
        :meth:`add_table`/:meth:`remove_table` so caches stay honest,
        or call :meth:`invalidate` after mutating the lake directly.
    prune_candidates:
        ``True`` (default) applies the paper's preprocessing — drop
        values occurring only once in the whole lake.  ``False`` keeps
        every value node (Example 3.6 reproduction).
    execution:
        Default :class:`~repro.perf.ExecutionConfig` applied to every
        :meth:`detect` call whose request does not carry its own.
        ``None`` (default) scores serially; pass e.g.
        ``ExecutionConfig(n_jobs=4)`` to fan score computations across
        worker processes.  Execution never changes scores, so it does
        not participate in the score-cache key.
    """

    def __init__(
        self,
        lake: Optional[DataLake] = None,
        prune_candidates: bool = True,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        self._lake = lake if lake is not None else DataLake()
        self._prune_candidates = prune_candidates
        self._execution = execution
        self._graph: Optional[BipartiteGraph] = None
        self._graph_seconds = 0.0
        self._unpruned_graph: Optional[BipartiteGraph] = None
        self._score_cache: Dict[Tuple, DetectResponse] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_lake(
        cls, lake: DataLake, prune_candidates: bool = True
    ) -> "HomographIndex":
        """Mirror of the legacy ``DomainNet.from_lake`` spelling."""
        return cls(lake, prune_candidates=prune_candidates)

    @classmethod
    def from_directory(
        cls, directory, prune_candidates: bool = True
    ) -> "HomographIndex":
        """Index every ``*.csv`` table under ``directory``."""
        from ..datalake.csv_io import load_lake

        return cls(load_lake(directory), prune_candidates=prune_candidates)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def lake(self) -> DataLake:
        return self._lake

    @property
    def prune_candidates(self) -> bool:
        return self._prune_candidates

    @property
    def execution(self) -> Optional[ExecutionConfig]:
        """The index-level default execution configuration."""
        return self._execution

    @property
    def graph(self) -> BipartiteGraph:
        """The bipartite graph, built lazily on first access."""
        if self._graph is None:
            start = time.perf_counter()
            self._graph = build_graph(
                self._lake,
                min_occurrences=2 if self._prune_candidates else 1,
            )
            self._graph_seconds = time.perf_counter() - start
        return self._graph

    @property
    def graph_seconds(self) -> float:
        """Build time of the current graph (0.0 until first build)."""
        return self._graph_seconds

    @property
    def unpruned_graph(self) -> BipartiteGraph:
        """The full graph with every value node, for error triage.

        Identical to :attr:`graph` when ``prune_candidates=False``;
        otherwise built once on demand and cached until the lake
        changes.
        """
        if not self._prune_candidates:
            return self.graph
        if self._unpruned_graph is None:
            self._unpruned_graph = build_graph(self._lake)
        return self._unpruned_graph

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Add a table; graph and score caches are invalidated lazily."""
        self._lake.add_table(table)
        self.invalidate()

    def remove_table(self, name: str) -> Table:
        """Remove and return a table, invalidating caches."""
        table = self._lake.remove_table(name)
        self.invalidate()
        return table

    def replace_table(self, table: Table) -> None:
        """Replace the same-named table, invalidating caches."""
        self._lake.replace_table(table)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop the graph and score caches (call after direct lake edits)."""
        self._graph = None
        self._graph_seconds = 0.0
        self._unpruned_graph = None
        self._score_cache.clear()

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detect(
        self,
        request: Optional[DetectRequest] = None,
        **overrides,
    ) -> DetectResponse:
        """Score and rank every value node.

        Accepts a :class:`DetectRequest`, keyword overrides applied on
        top of one, or keywords alone (``detect(measure="lcc")``).
        Responses are cached per ``(measure, config)``: a repeat call
        with the same configuration returns the stored scores with
        ``cached=True`` and does not recompute.
        """
        if request is None:
            request = DetectRequest(**overrides)
        elif overrides:
            request = request.with_overrides(**overrides)
        if request.execution is None and self._execution is not None:
            request = request.with_overrides(execution=self._execution)

        key = request.cache_key
        hit = self._score_cache.get(key)
        if hit is not None:
            self._cache_hits += 1
            return self._serve(hit, cached=True)
        self._cache_misses += 1
        response = execute_request(
            self.graph, request, graph_seconds=self._graph_seconds
        )
        self._score_cache[key] = response
        return self._serve(response, cached=False)

    @staticmethod
    def _serve(stored: DetectResponse, cached: bool) -> DetectResponse:
        """Copy the mutable parts so callers cannot poison the cache.

        The ranking is shared: its entries are frozen and it is treated
        as immutable throughout.
        """
        return replace(
            stored,
            scores=dict(stored.scores),
            parameters=dict(stored.parameters),
            cached=cached,
        )

    # ------------------------------------------------------------------
    # Analysis conveniences (fold the one-off helpers callers grew)
    # ------------------------------------------------------------------
    def estimate_meanings(
        self, value: str, threshold: float = 0.25
    ) -> MeaningEstimate:
        """Cluster a value's attributes into meanings (§6 direction 1)."""
        return estimate_meanings(self.graph, value, threshold=threshold)

    def classify_errors(
        self, values: Iterable[str], **kwargs
    ) -> Dict[str, HomographClassification]:
        """Genuine-vs-error triage (§6 direction 2).

        Uses the index's cached unpruned graph, replacing the old CLI
        pattern of rebuilding the whole graph per call.
        """
        return classify_homographs(
            self._lake, values, graph=self.unpruned_graph, **kwargs
        )

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Hit/miss counters (cumulative) and current cache size."""
        return CacheInfo(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._score_cache),
        )

    def clear_cache(self) -> None:
        """Drop cached scores without touching the graph."""
        self._score_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = "unbuilt" if self._graph is None else repr(self._graph)
        return (
            f"HomographIndex(tables={len(self._lake)}, "
            f"prune={self._prune_candidates}, graph={built}, "
            f"cached_results={len(self._score_cache)})"
        )
