"""The multi-lake :class:`Workspace` — one process, many lakes, one pool.

A single :class:`~repro.api.HomographIndex` serves one lake.  A
deployment rarely has one lake: the paper's benchmarks alone are three
(SB, TUS, TUS-I), and the ROADMAP's north star is a server hosting many
tenants.  ``Workspace`` owns a set of *named* indexes and makes them
share one persistent execution backend, so N lakes cost one worker
pool — not N pools — while each lake keeps its own shared-memory CSR
export, score cache, and incremental mutation surface::

    from repro import ExecutionConfig, Workspace

    workspace = Workspace(
        execution=ExecutionConfig(n_jobs=4, persistent=True))
    workspace.attach("zoo", zoo_lake)
    workspace.attach("cars", "path/to/cars/csvs")      # or a directory

    workspace.get("zoo").detect(measure="betweenness")  # shared pool
    workspace.get("cars").detect(measure="lcc")         # same pool
    workspace.close()   # closes every index, then the one pool

The first attached lake is the *default* lake — the one legacy
un-prefixed HTTP routes resolve to.  ``detach`` closes an index and
releases its export without disturbing siblings; ``close`` (or a
``with`` block) drains everything and finally tears the shared backend
down.  All methods are thread-safe.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple, Union

from ..datalake.lake import DataLake
from ..perf.backends import (
    ExecutionBackend,
    backend_stats,
    resolve_backend,
)
from ..perf.config import ExecutionConfig
from .index import HomographIndex

#: Lake names must be URL-path-safe: they become ``/lakes/<name>/...``
#: route segments on the HTTP front-end.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class WorkspaceError(RuntimeError):
    """Base class for workspace lifecycle and naming errors."""


class UnknownLakeError(WorkspaceError, KeyError):
    """Raised when a lake name is not attached to the workspace."""

    def __str__(self) -> str:
        """Render like a RuntimeError, not KeyError's quoted repr."""
        return self.args[0] if self.args else ""


class DuplicateLakeError(WorkspaceError):
    """Raised when attaching a lake under a name already in use."""


def validate_lake_quota(quota: Optional[int]) -> Optional[int]:
    """Check that ``quota`` is a legal per-lake admission quota.

    ``None`` (no explicit quota — the server derives one) passes
    through; anything else must be an ``int >= 1``.  Returns the value
    unchanged; raises :class:`ValueError` otherwise.  ``bool`` is
    rejected explicitly — ``True`` is an ``int`` to ``isinstance`` but
    never a sane quota.
    """
    if quota is None:
        return None
    if isinstance(quota, bool) or not isinstance(quota, int) or quota < 1:
        raise ValueError(
            f"invalid lake quota {quota!r}: expected an integer >= 1 "
            "(or None for the server-derived default)"
        )
    return quota


def validate_lake_name(name: str) -> str:
    """Check that ``name`` is a legal (URL-safe) lake name.

    Returns the name unchanged; raises :class:`ValueError` otherwise.
    Legal names start with an alphanumeric and continue with
    alphanumerics, dots, underscores, or dashes (max 64 characters).
    """
    # fullmatch, not match: '$' would tolerate a trailing newline,
    # producing a mounted lake no URL path could ever reach.
    if not isinstance(name, str) or not _NAME_PATTERN.fullmatch(name):
        raise ValueError(
            f"invalid lake name {name!r}: expected 1-64 characters of "
            "[A-Za-z0-9._-] starting with a letter or digit"
        )
    return name


class Workspace:
    """A named set of :class:`HomographIndex` instances sharing one pool.

    Parameters
    ----------
    execution:
        The :class:`~repro.perf.ExecutionConfig` every attached index
        inherits.  When it resolves to a process backend, **one**
        backend instance is created lazily and shared across all
        indexes — each index publishes its own graph export into the
        shared backend's export table, and only the workspace closes
        the backend.  ``None`` (default) scores serially with no
        shared machinery.
    prune_candidates:
        Default for :class:`HomographIndex` construction; ``attach``
        can override per lake.

    Thread safety
    -------------
    ``attach``/``detach``/``get``/``names``/``stats``/``close`` may be
    called concurrently with each other and with queries running on
    the member indexes.
    """

    def __init__(
        self,
        execution: Optional[ExecutionConfig] = None,
        prune_candidates: bool = True,
    ) -> None:
        self._execution = execution
        self._prune_candidates = prune_candidates
        self._lock = threading.RLock()
        self._indexes: "OrderedDict[str, HomographIndex]" = OrderedDict()
        # Explicit per-lake admission quotas (lakes without an entry
        # get the server-derived share); see quota()/set_quota().
        self._quotas: Dict[str, int] = {}
        self._backend: Optional[ExecutionBackend] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Shared backend
    # ------------------------------------------------------------------
    @property
    def execution(self) -> Optional[ExecutionConfig]:
        """The execution configuration shared by every attached index."""
        return self._execution

    @property
    def backend(self) -> Optional[ExecutionBackend]:
        """The shared backend, if one has been created yet."""
        with self._lock:
            return self._backend

    def _shared_backend(self) -> Optional[ExecutionBackend]:
        """Resolve the one workspace-scoped backend (lazily)."""
        if self._execution is None:
            return None
        with self._lock:
            if self._closed:
                # Resolving a backend after close would fork a pool
                # nothing will ever tear down again.
                raise WorkspaceError("Workspace is closed")
            if self._backend is None:
                self._backend = resolve_backend(self._execution)
            return self._backend

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def attach(
        self,
        name: str,
        lake: Union[DataLake, str, "object"],
        prune_candidates: Optional[bool] = None,
        quota: Optional[int] = None,
    ) -> HomographIndex:
        """Mount a lake under ``name``; returns its new index.

        ``lake`` is a :class:`~repro.datalake.DataLake`, a directory
        (``str`` / ``os.PathLike``) of ``*.csv`` tables to load, or a
        snapshot directory written by :meth:`HomographIndex.save`
        (auto-detected by its ``manifest.json``) — the latter mounts
        via :meth:`HomographIndex.load`, skipping the graph build and
        pre-warming the score cache.  Either way the index rides the
        workspace's execution config and shared backend, so its
        queries share the one pool.  ``quota`` optionally pins this
        lake's admission quota (see :meth:`set_quota`) atomically with
        the mount.
        """
        validate_lake_name(name)
        validate_lake_quota(quota)
        prune = (
            self._prune_candidates
            if prune_candidates is None
            else prune_candidates
        )
        index: Optional[HomographIndex] = None
        if not isinstance(lake, DataLake):
            from ..snapshot.store import is_snapshot

            if is_snapshot(lake):
                # The snapshot records its own prune setting; loading
                # happens before the membership lock so a slow load
                # (hash verification) never stalls sibling lookups.
                index = HomographIndex.load(
                    lake,
                    execution=self._execution,
                    backend=self._shared_backend(),
                )
            else:
                from ..datalake.csv_io import load_lake

                lake = load_lake(lake)
        preloaded = index
        try:
            with self._lock:
                if self._closed:
                    raise WorkspaceError("Workspace is closed")
                if name in self._indexes:
                    raise DuplicateLakeError(
                        f"lake {name!r} is already attached"
                    )
                if index is None:
                    index = HomographIndex(
                        lake,
                        prune_candidates=prune,
                        execution=self._execution,
                        backend=self._shared_backend(),
                    )
                self._indexes[name] = index
                if quota is not None:
                    self._quotas[name] = quota
                return index
        except BaseException:
            # A snapshot index that lost the membership race holds
            # mmap handles over its directory: release them instead
            # of leaking them until GC.
            if preloaded is not None:
                preloaded.close()
            raise

    def attach_index(
        self,
        name: str,
        index: HomographIndex,
        quota: Optional[int] = None,
    ) -> None:
        """Mount an existing index under ``name``.

        The index keeps whatever execution machinery it was built
        with (it does *not* join the shared pool); the workspace takes
        over its lifecycle — ``detach``/``close`` will close it.  This
        is the adoption path the HTTP server uses for the legacy
        single-index constructor.  ``quota`` pins the lake's admission
        quota, as :meth:`attach` documents.
        """
        validate_lake_name(name)
        validate_lake_quota(quota)
        with self._lock:
            if self._closed:
                raise WorkspaceError("Workspace is closed")
            if name in self._indexes:
                raise DuplicateLakeError(
                    f"lake {name!r} is already attached"
                )
            self._indexes[name] = index
            if quota is not None:
                self._quotas[name] = quota

    def detach(self, name: str) -> HomographIndex:
        """Unmount ``name``: close its index, release its export.

        Siblings and the shared backend are untouched (the index's
        ``close`` only drops its own graph export on a shared
        backend).  Any explicit admission quota for the name is
        forgotten with it.  Returns the closed index — its lake and
        cached state remain readable.
        """
        with self._lock:
            index = self._indexes.pop(name, None)
            self._quotas.pop(name, None)
        if index is None:
            raise UnknownLakeError(f"no lake named {name!r}")
        index.close()
        return index

    def quota(self, name: str) -> Optional[int]:
        """The explicit admission quota for ``name``, or ``None``.

        ``None`` means no override was set: the HTTP server derives
        the lake's share of the global gate instead (see
        ``docs/serving.md``).  Unknown names also answer ``None`` —
        quotas are advisory scheduling state, not membership.
        """
        with self._lock:
            return self._quotas.get(name)

    def set_quota(self, name: str, quota: Optional[int]) -> None:
        """Pin (or clear, with ``None``) the admission quota of a lake.

        The quota caps how many compute requests the HTTP front-end
        admits concurrently for this lake; the workspace only stores
        it.  Raises :class:`UnknownLakeError` for unattached names and
        :class:`ValueError` for quotas that are not ``None`` or an
        ``int >= 1``.
        """
        validate_lake_quota(quota)
        with self._lock:
            if name not in self._indexes:
                raise UnknownLakeError(f"no lake named {name!r}")
            if quota is None:
                self._quotas.pop(name, None)
            else:
                self._quotas[name] = quota

    def get(self, name: str) -> HomographIndex:
        """The index mounted at ``name`` (raises UnknownLakeError)."""
        with self._lock:
            index = self._indexes.get(name)
        if index is None:
            raise UnknownLakeError(f"no lake named {name!r}")
        return index

    def names(self) -> Tuple[str, ...]:
        """Attached lake names, in attachment order."""
        with self._lock:
            return tuple(self._indexes)

    @property
    def default_name(self) -> Optional[str]:
        """The first attached lake's name (legacy-route target)."""
        with self._lock:
            return next(iter(self._indexes), None)

    def default_index(self) -> Optional[HomographIndex]:
        """The first attached lake's index, or ``None`` when empty."""
        with self._lock:
            return next(iter(self._indexes.values()), None)

    def __len__(self) -> int:
        """Number of attached lakes."""
        with self._lock:
            return len(self._indexes)

    def __contains__(self, name: object) -> bool:
        """Whether a lake of that name is attached."""
        with self._lock:
            return name in self._indexes

    def __iter__(self) -> Iterator[str]:
        """Iterate over attached lake names (attachment order)."""
        return iter(self.names())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def stats(self) -> Dict[str, object]:
        """One JSON-safe snapshot of the whole workspace.

        ``lakes`` maps each name to its index's
        :meth:`HomographIndex.stats` snapshot; ``pool`` reports the
        shared backend (worker count, liveness, total exported
        segments across all lakes).
        """
        with self._lock:
            members = list(self._indexes.items())
            quotas = dict(self._quotas)
            backend = self._backend
            closed = self._closed
            default = next(iter(self._indexes), None)
        return {
            "lakes": {name: index.stats() for name, index in members},
            "default_lake": default,
            "closed": closed,
            "quotas": quotas,
            "pool": backend_stats(
                backend, configured=self._execution is not None
            ),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every attached index, then the shared backend.

        Idempotent.  Indexes drain their admitted calls as
        :meth:`HomographIndex.close` documents; the shared backend —
        the one worker pool and any remaining shared-memory
        segments — is torn down last, once no index can reach it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            members = list(self._indexes.values())
            backend, self._backend = self._backend, None
        for index in members:
            index.close()
        if backend is not None:
            backend.close()

    def __enter__(self) -> "Workspace":
        """Enter a ``with`` block; the workspace itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the workspace (indexes, then pool) on block exit."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace(lakes={list(self.names())!r}, "
            f"closed={self._closed})"
        )
