"""Pluggable centrality-measure registry.

The detection pipeline is agnostic about *which* per-value score it
ranks; the paper evaluates two (betweenness centrality, Hypothesis 3.5,
and the local clustering coefficient, Hypothesis 3.4) but §6 explicitly
invites others.  This module turns the measure choice into a registry
so third-party centralities slot in without touching the core:

    from repro.api import MeasureOutput, register_measure

    @register_measure("degree")
    def degree_measure(graph, request):
        scores = {
            graph.value_name(v): float(graph.degree(v))
            for v in range(graph.num_values)
        }
        return MeasureOutput(scores=scores, descending=True)

    HomographIndex(lake).detect(measure="degree")

A measure is any callable ``(graph, request) -> MeasureOutput`` (the
:class:`Measure` protocol).  ``descending`` states the direction in
which "more homograph-like" points: ``True`` for betweenness-style
scores (high = suspicious), ``False`` for LCC-style scores (low =
suspicious).  Returning a plain mapping is also accepted and treated as
a descending score map with no parameters.

The two paper measures are registered as built-ins on import, under
their historical names ``"betweenness"`` and ``"lcc"``, alongside
``"rk"`` — the Riondato–Kornaropoulos sampled betweenness (§3.3) with
its knobs carried in ``request.options`` — and
``"skeleton_betweenness"``, the adversarial variant that scores
betweenness over confusable-skeleton classes
(:mod:`repro.core.confusables`) so forged homoglyph collisions become
graph-visible.  On a lake whose values are all their own skeletons the
quotient is the identity and the measure delegates to plain
``"betweenness"``, keeping clean-lake rankings bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..core.betweenness import betweenness_score_map
from ..core.graph import BipartiteGraph
from ..core.lcc import lcc_score_map

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .requests import DetectRequest


class MeasureError(ValueError):
    """Base class for measure-registry failures."""


class UnknownMeasureError(MeasureError):
    """Raised when dispatching to a measure name nobody registered."""


class DuplicateMeasureError(MeasureError):
    """Raised when registering a name that is already taken."""


@dataclass(frozen=True)
class MeasureOutput:
    """What a measure hands back to the pipeline.

    ``scores`` maps each value name to its score; ``descending`` is the
    ranking direction (``True``: high score = more homograph-like);
    ``parameters`` records the knobs that produced the scores so results
    stay reproducible once serialized.  ``state`` is an optional opaque
    maintenance payload (raw accumulators, chunk counts) that lets delta
    mutation patch a cached result instead of recomputing it — it never
    serializes and is dropped on snapshot save/load.
    """

    scores: Mapping[str, float]
    descending: bool = True
    parameters: Dict[str, object] = field(default_factory=dict)
    state: Optional[object] = None


@runtime_checkable
class Measure(Protocol):
    """A per-value scoring function over the bipartite graph."""

    def __call__(
        self, graph: BipartiteGraph, request: "DetectRequest"
    ) -> MeasureOutput: ...


_REGISTRY: Dict[str, Measure] = {}


def register_measure(
    name: str,
    fn: Optional[Measure] = None,
    *,
    replace: bool = False,
) -> Callable:
    """Register ``fn`` under ``name``; usable as a decorator.

    Registering an existing name raises :class:`DuplicateMeasureError`
    unless ``replace=True``.  Returns ``fn`` so the decorator form
    leaves the function usable directly.
    """
    if fn is None:
        return lambda f: register_measure(name, f, replace=replace)
    if not callable(fn):
        raise TypeError(f"measure {name!r} must be callable, got {fn!r}")
    if name in _REGISTRY and not replace:
        raise DuplicateMeasureError(
            f"measure {name!r} is already registered; "
            f"pass replace=True to override"
        )
    _REGISTRY[name] = fn
    return fn


def unregister_measure(name: str) -> Measure:
    """Remove and return a registered measure (built-ins included)."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownMeasureError(
            f"unknown measure {name!r}; "
            f"registered measures: {available_measures()}"
        ) from None


def get_measure(name: str) -> Measure:
    """Look up a measure, raising :class:`UnknownMeasureError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMeasureError(
            f"unknown measure {name!r}; "
            f"registered measures: {available_measures()}"
        ) from None


def available_measures() -> Tuple[str, ...]:
    """Registered measure names, sorted."""
    return tuple(sorted(_REGISTRY))


def run_measure(
    graph: BipartiteGraph, request: "DetectRequest"
) -> MeasureOutput:
    """Dispatch ``request`` to its measure and normalize the output."""
    output = get_measure(request.measure)(graph, request)
    if isinstance(output, MeasureOutput):
        return output
    if isinstance(output, Mapping):
        return MeasureOutput(scores=output)
    raise TypeError(
        f"measure {request.measure!r} returned {type(output).__name__}; "
        f"expected MeasureOutput or a score mapping"
    )


# ---------------------------------------------------------------------
# Built-ins: the two measures evaluated in the paper.
# ---------------------------------------------------------------------
@register_measure("betweenness")
def _betweenness_measure(
    graph: BipartiteGraph, request: "DetectRequest"
) -> MeasureOutput:
    """Betweenness centrality (Hypothesis 3.5): homographs score HIGH."""
    state: Dict[str, object] = {}
    scores = betweenness_score_map(
        graph,
        sample_size=request.sample_size,
        seed=request.seed,
        endpoints=request.endpoints,
        execution=request.execution,
        state_out=state,
    )
    return MeasureOutput(
        scores=scores,
        descending=True,
        parameters={
            "sample_size": request.sample_size,
            "seed": request.seed,
            "endpoints": request.endpoints,
        },
        state=state or None,
    )


@register_measure("skeleton_betweenness")
def _skeleton_betweenness_measure(
    graph: BipartiteGraph, request: "DetectRequest"
) -> MeasureOutput:
    """Betweenness over confusable-skeleton classes: homographs score HIGH.

    Values folding to the same skeleton (``repro.core.confusables``)
    are merged into one quotient node before centrality runs, so a
    forged ``ΡARIS`` inherits the bridging position of the class it
    visually imitates.  Every member of a class receives the class
    score; ranking ties then break lexicographically as usual.

    When skeletonization is the identity on the graph's value set the
    measure delegates to the plain ``"betweenness"`` built-in, which
    makes clean-lake rankings bit-for-bit identical.  The quotient
    graph is ephemeral, so the non-identity path always computes
    serially instead of exporting a throwaway graph to a persistent
    worker pool; ``state`` stays ``None`` either way because the
    Brandes delta-patch accumulators describe the quotient, not the
    lake's own graph — a mutation simply evicts and recomputes.
    """
    from ..core.confusables import skeleton

    names = list(graph.value_names)
    skels = [skeleton(name) for name in names]
    if skels == names:
        output = _betweenness_measure(graph, request)
        parameters = dict(output.parameters)
        parameters["skeleton_classes"] = len(names)
        parameters["skeleton_collisions"] = 0
        return MeasureOutput(
            scores=output.scores,
            descending=True,
            parameters=parameters,
            state=None,
        )

    import numpy as np

    from ..perf.backends import SerialBackend, use_backend

    class_ids: Dict[str, int] = {}
    class_names: list = []
    member_class = np.empty(len(names), dtype=np.int64)
    for v, skel in enumerate(skels):
        cid = class_ids.get(skel)
        if cid is None:
            cid = len(class_names)
            class_ids[skel] = cid
            class_names.append(skel)
        member_class[v] = cid

    num_values = graph.num_values
    indptr = graph.indptr
    counts = np.diff(indptr[: num_values + 1])
    rows = np.repeat(member_class, counts)
    cols = graph.indices[: indptr[num_values]] - num_values
    quotient = BipartiteGraph(
        class_names,
        list(graph.attribute_names),
        np.stack([rows, cols], axis=1),
    )

    with use_backend(SerialBackend()):
        class_scores = betweenness_score_map(
            quotient,
            sample_size=request.sample_size,
            seed=request.seed,
            endpoints=request.endpoints,
            execution=None,
        )
    scores = {
        name: class_scores[skel] for name, skel in zip(names, skels)
    }
    class_sizes = np.bincount(member_class)
    return MeasureOutput(
        scores=scores,
        descending=True,
        parameters={
            "sample_size": request.sample_size,
            "seed": request.seed,
            "endpoints": request.endpoints,
            "skeleton_classes": len(class_names),
            "skeleton_collisions": int((class_sizes >= 2).sum()),
        },
        state=None,
    )


@register_measure("lcc")
def _lcc_measure(
    graph: BipartiteGraph, request: "DetectRequest"
) -> MeasureOutput:
    """Local clustering coefficient (Hypothesis 3.4): homographs score LOW."""
    scores = lcc_score_map(
        graph, variant=request.lcc_variant, execution=request.execution
    )
    return MeasureOutput(
        scores=scores,
        descending=False,
        parameters={"variant": request.lcc_variant},
        state={"kind": "lcc", "variant": request.lcc_variant},
    )


@register_measure("rk")
def _rk_measure(
    graph: BipartiteGraph, request: "DetectRequest"
) -> MeasureOutput:
    """Riondato–Kornaropoulos sampled betweenness (§3.3's alternative).

    Knobs ride in ``request.options`` (``epsilon``, ``delta``, ``c``,
    ``max_samples``); the seed is the request seed.  Scores are on the
    exact-betweenness normalized scale, so homographs score HIGH.
    """
    from ..core.approx import riondato_kornaropoulos_bc

    epsilon = float(request.option("epsilon", 0.05))
    delta = float(request.option("delta", 0.1))
    c = float(request.option("c", 0.5))
    max_samples = request.option("max_samples", None)
    if max_samples is not None:
        max_samples = int(max_samples)
    state: Dict[str, object] = {}
    scores = riondato_kornaropoulos_bc(
        graph,
        epsilon=epsilon,
        delta=delta,
        c=c,
        seed=request.seed,
        max_samples=max_samples,
        execution=request.execution,
        state_out=state,
    )
    score_map = {
        graph.value_name(v): float(scores[v])
        for v in range(graph.num_values)
    }
    return MeasureOutput(
        scores=score_map,
        descending=True,
        parameters={
            "epsilon": epsilon,
            "delta": delta,
            "c": c,
            "seed": request.seed,
            "max_samples": max_samples,
        },
        state=state or None,
    )
