"""Service-ready detection API: stateful index, registry, typed configs.

This package is the public entry point for applications.  It wraps the
batch pipeline in :mod:`repro.core` with the three things a serving
layer needs:

* :class:`HomographIndex` — construct once from a lake, serve many
  queries with per-``(measure, config)`` score caching, single-flight
  coalescing of concurrent duplicate requests, incremental
  ``add_table``/``remove_table``, and an explicit ``close()`` /
  context-manager lifecycle for the persistent worker pool;
* :class:`Workspace` — a named set of indexes (one per lake) sharing
  one persistent worker pool, the in-process core of multi-lake
  serving;
* a pluggable measure registry (:func:`register_measure`) with
  betweenness and LCC as built-ins;
* typed :class:`DetectRequest`/:class:`DetectResponse` objects with
  ``to_json``/``from_json`` round-trip serialization.

The legacy ``DomainNet`` class remains as a thin shim over this API.
See ``docs/serving.md`` for the serving guide and ``docs/api.md`` for
the full reference.
"""

from .index import CacheInfo, HomographIndex, execute_request
from .measures import (
    DuplicateMeasureError,
    Measure,
    MeasureError,
    MeasureOutput,
    UnknownMeasureError,
    available_measures,
    get_measure,
    register_measure,
    run_measure,
    unregister_measure,
)
from .requests import SCHEMA_VERSION, DetectRequest, DetectResponse
from .workspace import (
    DuplicateLakeError,
    UnknownLakeError,
    Workspace,
    WorkspaceError,
    validate_lake_name,
    validate_lake_quota,
)

__all__ = [
    "CacheInfo",
    "DetectRequest",
    "DetectResponse",
    "DuplicateLakeError",
    "DuplicateMeasureError",
    "HomographIndex",
    "Measure",
    "MeasureError",
    "MeasureOutput",
    "SCHEMA_VERSION",
    "UnknownLakeError",
    "UnknownMeasureError",
    "Workspace",
    "WorkspaceError",
    "available_measures",
    "execute_request",
    "get_measure",
    "register_measure",
    "run_measure",
    "unregister_measure",
    "validate_lake_name",
    "validate_lake_quota",
]
