"""D4 phases 3-5: column expansion, local domains, strong domains.

* **Column expansion** adds a term to a column when most of the term's
  robust signature already lives there — recovering domain members that
  a particular table happens to be missing.
* **Local domain discovery** clusters the (expanded) terms of each
  column: terms are connected when each appears in the other's robust
  signature, and connected components form the column's local domains.
* **Strong domain consolidation** merges local domains that overlap
  heavily across columns; consolidated domains supported by at least
  ``min_support`` distinct columns survive.  These are the "domains"
  the DomainNet paper counts in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .signatures import TermIndex


@dataclass
class LocalDomain:
    """A cluster of terms discovered within one column."""

    column_id: int
    term_ids: Set[int]


@dataclass
class StrongDomain:
    """A consolidated domain with the columns supporting it."""

    term_ids: Set[int]
    column_ids: Set[int]
    members: List[LocalDomain] = field(default_factory=list)


def expand_columns(
    index: TermIndex,
    signatures: Sequence[Set[int]],
    threshold: float = 0.5,
) -> List[Set[int]]:
    """Expanded term sets per column.

    A term joins a foreign column when at least ``threshold`` of its
    robust signature is already in that column.  Terms with empty
    signatures never expand.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    expanded: List[Set[int]] = [
        set(int(t) for t in index.column_terms[c])
        for c in range(index.num_columns)
    ]
    for term_id in range(index.num_terms):
        signature = signatures[term_id]
        if not signature:
            continue
        counts: Dict[int, int] = {}
        for other in signature:
            for column_id in index.term_columns[other]:
                counts[int(column_id)] = counts.get(int(column_id), 0) + 1
        own = set(int(c) for c in index.term_columns[term_id])
        needed = threshold * len(signature)
        for column_id, count in counts.items():
            if column_id not in own and count >= needed:
                expanded[column_id].add(term_id)
    return expanded


def local_domains(
    index: TermIndex,
    signatures: Sequence[Set[int]],
    expanded_columns: Sequence[Set[int]],
) -> List[LocalDomain]:
    """Cluster each column's terms into local domains.

    Terms are linked by *mutual* robust-signature membership; the
    connected components of that link graph within one column are the
    column's local domains.  Singleton components are kept — a column
    of unrelated identifiers legitimately has one domain per term only
    if nothing links them; they rarely survive consolidation.
    """
    domains: List[LocalDomain] = []
    for column_id, terms in enumerate(expanded_columns):
        if not terms:
            continue
        parent = {t: t for t in terms}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for t in terms:
            for other in signatures[t]:
                if other in parent and t in signatures[other]:
                    ra, rb = find(t), find(other)
                    if ra != rb:
                        parent[ra] = rb

        clusters: Dict[int, Set[int]] = {}
        for t in terms:
            clusters.setdefault(find(t), set()).add(t)
        for cluster in clusters.values():
            domains.append(LocalDomain(column_id=column_id,
                                       term_ids=cluster))
    return domains


def strong_domains(
    locals_: Sequence[LocalDomain],
    overlap_threshold: float = 0.4,
    min_support: int = 2,
    min_size: int = 2,
) -> List[StrongDomain]:
    """Consolidate local domains into strong domains.

    Two local domains group when their *bidirectional containment* is
    at least ``overlap_threshold``: ``|A∩B| / max(|A|, |B|)``, i.e. the
    overlap must be large relative to both sets.  (A min-based overlap
    coefficient would absorb every small cluster into any superset —
    including the mini-clusters formed by same-class homographs, which
    must stay separate for the multi-domain homograph signal to exist.)
    Groups survive when supported by at least ``min_support`` distinct
    columns and at least ``min_size`` terms.
    """
    if not 0.0 < overlap_threshold <= 1.0:
        raise ValueError("overlap_threshold must be in (0, 1]")
    candidates = [d for d in locals_ if len(d.term_ids) >= min_size]
    n = len(candidates)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    # Invert: term -> candidate local domains, to avoid O(n^2) pairs.
    by_term: Dict[int, List[int]] = {}
    for i, domain in enumerate(candidates):
        for t in domain.term_ids:
            by_term.setdefault(t, []).append(i)

    checked: Set[Tuple[int, int]] = set()
    for indices in by_term.values():
        for a_pos, i in enumerate(indices):
            for j in indices[a_pos + 1:]:
                key = (min(i, j), max(i, j))
                if key in checked:
                    continue
                checked.add(key)
                a, b = candidates[i].term_ids, candidates[j].term_ids
                overlap = len(a & b) / max(len(a), len(b))
                if overlap >= overlap_threshold:
                    ra, rb = find(i), find(j)
                    if ra != rb:
                        parent[ra] = rb

    groups: Dict[int, List[LocalDomain]] = {}
    for i, domain in enumerate(candidates):
        groups.setdefault(find(i), []).append(domain)

    result: List[StrongDomain] = []
    for members in groups.values():
        columns = {d.column_id for d in members}
        if len(columns) < min_support:
            continue
        terms: Set[int] = set()
        for d in members:
            terms |= d.term_ids
        if len(terms) < min_size:
            continue
        result.append(
            StrongDomain(term_ids=terms, column_ids=columns,
                         members=list(members))
        )
    result.sort(key=lambda d: (-len(d.term_ids), min(d.column_ids)))
    return result
