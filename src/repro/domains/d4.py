"""The D4 pipeline and its homograph-detection adaptation.

This is the baseline of the DomainNet paper's §5.1 and the subject of
its §5.5 robustness study: an unsupervised domain-discovery algorithm
(Ota et al., PVLDB 2020) reimplemented from its published description.
D4 assigns *domains* (sets of values of one semantic type) to the
string columns of a lake; following the DomainNet paper, a value that
belongs to more than one discovered domain is predicted to be a
homograph.

The pipeline: term index -> context signatures -> robust signatures
(steepest-drop trimming) -> column expansion -> per-column local
domains -> strong-domain consolidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..datalake.lake import DataLake
from .discovery import (
    LocalDomain,
    StrongDomain,
    expand_columns,
    local_domains,
    strong_domains,
)
from .signatures import TermIndex, all_robust_signatures, build_term_index


@dataclass(frozen=True)
class D4Config:
    """Defaults calibrated on SB against the paper's §5.1 numbers.

    The liberal steepest-drop cut (keep down to the last drop) with
    support >= 2 reproduces the published D4-baseline behaviour on SB:
    a handful of multi-column domains (paper: 4, ours: ~7) and top-55
    homograph precision ~0.35 (paper: 0.38).
    """

    trim_variant: str = "liberal"
    expansion_threshold: float = 0.5
    expand: bool = True
    overlap_threshold: float = 0.4
    min_support: int = 2
    min_domain_size: int = 2


@dataclass
class D4Result:
    """Discovered domains plus the derived per-column statistics."""

    index: TermIndex
    domains: List[StrongDomain]
    local: List[LocalDomain] = field(default_factory=list)

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def domain_terms(self, i: int) -> Set[str]:
        """Terms of the i-th domain, as value strings."""
        return {
            self.index.terms[t] for t in self.domains[i].term_ids
        }

    def domains_per_column(self) -> Dict[str, int]:
        """Number of strong domains assigned to each column.

        A domain is assigned to the columns that supported one of its
        member local domains.  Columns with no domain get 0.
        """
        counts = {name: 0 for name in self.index.columns}
        for domain in self.domains:
            for column_id in domain.column_ids:
                counts[self.index.columns[column_id]] += 1
        return counts

    def max_domains_per_column(self) -> int:
        counts = self.domains_per_column()
        return max(counts.values()) if counts else 0

    def avg_domains_per_column(self) -> float:
        counts = self.domains_per_column()
        assigned = [c for c in counts.values()]
        return sum(assigned) / len(assigned) if assigned else 0.0

    def columns_with_domains(self) -> int:
        return sum(1 for c in self.domains_per_column().values() if c > 0)

    # ------------------------------------------------------------------
    # Homograph baseline (the DomainNet paper's adaptation)
    # ------------------------------------------------------------------
    def term_domain_counts(self) -> Dict[str, int]:
        """Number of strong domains each term belongs to."""
        counts: Dict[int, int] = {}
        for domain in self.domains:
            for t in domain.term_ids:
                counts[t] = counts.get(t, 0) + 1
        return {self.index.terms[t]: c for t, c in counts.items()}

    def predicted_homographs(self) -> Set[str]:
        """Values assigned to more than one discovered domain."""
        return {
            term for term, count in self.term_domain_counts().items()
            if count >= 2
        }

    def ranked_homographs(self) -> List[str]:
        """Predicted homographs, most-domains first (deterministic)."""
        counts = self.term_domain_counts()
        predicted = [(v, c) for v, c in counts.items() if c >= 2]
        predicted.sort(key=lambda item: (-item[1], item[0]))
        return [v for v, _ in predicted]


def run_d4(lake: DataLake, config: D4Config = D4Config()) -> D4Result:
    """Run the full D4 pipeline over the text columns of a lake."""
    index = build_term_index(lake)
    signatures = all_robust_signatures(index, variant=config.trim_variant)

    if config.expand:
        expanded = expand_columns(
            index, signatures, threshold=config.expansion_threshold
        )
    else:
        expanded = [
            set(int(t) for t in index.column_terms[c])
            for c in range(index.num_columns)
        ]

    locals_ = local_domains(index, signatures, expanded)
    strong = strong_domains(
        locals_,
        overlap_threshold=config.overlap_threshold,
        min_support=config.min_support,
        min_size=config.min_domain_size,
    )
    return D4Result(index=index, domains=strong, local=locals_)
