"""Term context signatures and robust-signature pruning (D4 phase 1-2).

Reimplementation of the signature machinery of D4 (Ota, Mueller, Freire,
Srivastava: "Data-Driven Domain Discovery for Structured Datasets",
PVLDB 13(7), 2020), the unsupervised domain-discovery baseline the
DomainNet paper compares against (§5.1, §5.5).

* A **term** is a distinct normalized value of a text column.
* The **context signature** of a term ``t`` lists every co-occurring
  term with its similarity to ``t`` — the Jaccard of their column sets.
* The **robust signature** truncates the context signature at its
  *steepest drop*: co-occurring terms are sorted by similarity, and the
  list is cut where consecutive similarities fall the most.  For an
  unambiguous term the head of the list is its domain; for a homograph
  the head captures the dominant meaning — which is exactly why D4
  tends to place homographs in one domain only (the failure mode the
  DomainNet paper demonstrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..core.normalize import normalize_column
from ..datalake.lake import DataLake
from ..datalake.table import infer_column_kind

_TRIM_VARIANTS = ("centrist", "conservative", "liberal")


@dataclass
class TermIndex:
    """Terms of the text columns of a lake, in compact id space."""

    terms: List[str]                      # term id -> name
    term_ids: Dict[str, int]              # name -> term id
    columns: List[str]                    # column id -> qualified name
    column_terms: List[np.ndarray]        # column id -> sorted term ids
    term_columns: List[np.ndarray]        # term id -> sorted column ids

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    @property
    def num_columns(self) -> int:
        return len(self.columns)


def build_term_index(lake: DataLake) -> TermIndex:
    """Index the text columns of a lake (D4 operates on strings only)."""
    terms: List[str] = []
    term_ids: Dict[str, int] = {}
    columns: List[str] = []
    column_term_lists: List[List[int]] = []

    for column in lake.iter_attributes():
        if infer_column_kind(column.values) != "text":
            continue
        ids = []
        for value in normalize_column(column.values):
            tid = term_ids.get(value)
            if tid is None:
                tid = len(terms)
                term_ids[value] = tid
                terms.append(value)
            ids.append(tid)
        columns.append(column.qualified_name)
        column_term_lists.append(ids)

    term_column_lists: List[List[int]] = [[] for _ in terms]
    for cid, ids in enumerate(column_term_lists):
        for tid in ids:
            term_column_lists[tid].append(cid)

    return TermIndex(
        terms=terms,
        term_ids=term_ids,
        columns=columns,
        column_terms=[
            np.array(sorted(ids), dtype=np.int64)
            for ids in column_term_lists
        ],
        term_columns=[
            np.array(sorted(cids), dtype=np.int64)
            for cids in term_column_lists
        ],
    )


def context_signature(
    index: TermIndex, term_id: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Co-occurring terms of ``term_id`` with column-set Jaccard scores.

    Returns ``(term_ids, similarities)`` sorted by descending
    similarity (ties broken by term id for determinism).
    """
    own_columns = index.term_columns[term_id]
    if own_columns.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)

    pieces = [index.column_terms[int(c)] for c in own_columns]
    cooccurring = np.concatenate(pieces)
    neighbor_ids, intersections = np.unique(cooccurring, return_counts=True)
    mask = neighbor_ids != term_id
    neighbor_ids, intersections = neighbor_ids[mask], intersections[mask]
    if neighbor_ids.size == 0:
        return neighbor_ids, np.empty(0, dtype=np.float64)

    degrees = np.array(
        [index.term_columns[int(t)].size for t in neighbor_ids],
        dtype=np.float64,
    )
    unions = own_columns.size + degrees - intersections
    sims = intersections / unions

    order = np.lexsort((neighbor_ids, -sims))
    return neighbor_ids[order], sims[order]


def robust_signature(
    index: TermIndex,
    term_id: int,
    variant: str = "centrist",
) -> Set[int]:
    """Prune a context signature at a drop in similarity.

    ``centrist`` cuts at the globally steepest drop, ``conservative``
    at the first drop (shortest signature), ``liberal`` at the last
    drop (longest).  With fewer than two distinct similarity levels the
    whole signature is kept.
    """
    if variant not in _TRIM_VARIANTS:
        raise ValueError(
            f"unknown trim variant {variant!r}; expected {_TRIM_VARIANTS}"
        )
    neighbor_ids, sims = context_signature(index, term_id)
    if neighbor_ids.size <= 1:
        return set(int(t) for t in neighbor_ids)

    drops = sims[:-1] - sims[1:]
    if not np.any(drops > 1e-12):
        return set(int(t) for t in neighbor_ids)

    if variant == "centrist":
        cut = int(np.argmax(drops))
    elif variant == "conservative":
        cut = int(np.flatnonzero(drops > 1e-12)[0])
    else:  # liberal
        cut = int(np.flatnonzero(drops > 1e-12)[-1])
    return set(int(t) for t in neighbor_ids[:cut + 1])


def all_robust_signatures(
    index: TermIndex, variant: str = "centrist"
) -> List[Set[int]]:
    """Robust signature for every term (dense list by term id)."""
    return [
        robust_signature(index, tid, variant=variant)
        for tid in range(index.num_terms)
    ]
