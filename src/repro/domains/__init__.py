"""D4 baseline: unsupervised domain discovery (Ota et al., PVLDB 2020)."""

from .d4 import D4Config, D4Result, run_d4
from .discovery import (
    LocalDomain,
    StrongDomain,
    expand_columns,
    local_domains,
    strong_domains,
)
from .signatures import (
    TermIndex,
    all_robust_signatures,
    build_term_index,
    context_signature,
    robust_signature,
)

__all__ = [
    "D4Config",
    "D4Result",
    "LocalDomain",
    "StrongDomain",
    "TermIndex",
    "all_robust_signatures",
    "build_term_index",
    "context_signature",
    "expand_columns",
    "local_domains",
    "robust_signature",
    "run_d4",
    "strong_domains",
]
