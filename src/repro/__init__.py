"""DomainNet: homograph detection for data lake disambiguation.

Reproduction of Leventidis et al., EDBT 2021 (arXiv:2103.09940).

Public surface::

    from repro import DataLake, DomainNet, Table

    lake = DataLake([Table.from_columns("zoo", {"name": [...], ...})])
    detector = DomainNet.from_lake(lake)
    result = detector.detect(measure="betweenness")
    print(result.ranking.top_values(10))

Sub-packages
------------
``repro.core``
    Bipartite graph, LCC / betweenness measures, detection pipeline.
``repro.datalake``
    Tables, lakes, CSV I/O, profiling, catalog statistics.
``repro.domains``
    The D4 domain-discovery baseline (Ota et al., PVLDB 2020).
``repro.bench``
    Benchmark generators: SB, TUS-like, TUS-I injection, scale lakes.
``repro.eval``
    Precision/recall metrics and the per-figure experiment runners.
"""

from .core import (
    BipartiteGraph,
    DetectionResult,
    DomainNet,
    HomographRanking,
    RankedValue,
    betweenness_score_map,
    betweenness_scores,
    build_graph,
    build_graph_from_columns,
    lcc_score_map,
    lcc_scores,
    normalize_value,
)
from .datalake import (
    Column,
    DataLake,
    Table,
    dump_lake,
    load_lake,
    read_table,
    write_table,
)

__version__ = "1.0.0"

__all__ = [
    "BipartiteGraph",
    "Column",
    "DataLake",
    "DetectionResult",
    "DomainNet",
    "HomographRanking",
    "RankedValue",
    "Table",
    "betweenness_score_map",
    "betweenness_scores",
    "build_graph",
    "build_graph_from_columns",
    "dump_lake",
    "lcc_score_map",
    "lcc_scores",
    "load_lake",
    "normalize_value",
    "read_table",
    "write_table",
    "__version__",
]
