"""DomainNet: homograph detection for data lake disambiguation.

Reproduction of Leventidis et al., EDBT 2021 (arXiv:2103.09940).

Public surface::

    from repro import DataLake, DetectRequest, HomographIndex, Table

    lake = DataLake([Table.from_columns("zoo", {"name": [...], ...})])
    index = HomographIndex(lake)
    response = index.detect(DetectRequest(measure="betweenness"))
    print(response.ranking.top_values(10))

    index.detect(measure="betweenness")      # served from the score cache
    index.add_table(new_table)               # invalidates graph + caches
    payload = response.to_json()             # round-trips via from_json

Third-party centralities plug in through the measure registry::

    from repro import MeasureOutput, register_measure

    @register_measure("degree")
    def degree(graph, request):
        return MeasureOutput(scores={...}, descending=True)

The legacy one-shot surface (``DomainNet.from_lake(lake).detect(...)``)
still works as a deprecated shim over :class:`HomographIndex`.

Sub-packages
------------
``repro.api``
    Stateful :class:`HomographIndex`, measure registry, typed
    request/response objects with JSON serialization.
``repro.core``
    Bipartite graph, LCC / betweenness measures, detection pipeline.
``repro.perf``
    Parallel compute engine: execution backends (serial /
    shared-memory multi-process, per-call or persistent pools),
    chunking, tree reductions.
``repro.serving``
    Serving primitives: single-flight request coalescing used by
    :class:`HomographIndex` to serve concurrent traffic.
``repro.cluster``
    Replicated serving: oplog-based mutation replay, a replica
    supervisor, and a read-balancing router over one snapshot
    (``domainnet cluster``).
``repro.snapshot``
    Snapshot persistence: versioned on-disk artifacts
    (``index.save`` / ``HomographIndex.load``) for millisecond
    cold-starts and runtime lake mount/unmount.
``repro.datalake``
    Tables, lakes, CSV I/O, profiling, catalog statistics.
``repro.domains``
    The D4 domain-discovery baseline (Ota et al., PVLDB 2020).
``repro.bench``
    Benchmark generators: SB, TUS-like, TUS-I injection, adversarial
    homoglyph forging, scale lakes.
``repro.eval``
    Precision/recall metrics and the per-figure experiment runners.
"""

from .core import (
    BipartiteGraph,
    DetectionResult,
    DomainNet,
    HomographRanking,
    RankedValue,
    RankingPage,
    SkeletonIndex,
    betweenness_score_map,
    betweenness_scores,
    build_graph,
    build_graph_from_columns,
    lcc_score_map,
    lcc_scores,
    normalize_value,
    skeleton,
)
from .datalake import (
    Column,
    DataLake,
    Table,
    dump_lake,
    load_lake,
    read_table,
    write_table,
)
from .api import (
    CacheInfo,
    DetectRequest,
    DetectResponse,
    DuplicateLakeError,
    DuplicateMeasureError,
    HomographIndex,
    Measure,
    MeasureError,
    MeasureOutput,
    UnknownLakeError,
    UnknownMeasureError,
    Workspace,
    WorkspaceError,
    available_measures,
    register_measure,
    unregister_measure,
)
from .perf import (
    ExecutionBackend,
    ExecutionConfig,
    ProcessBackend,
    SerialBackend,
    available_cores,
    resolve_backend,
    use_backend,
)
from .serving import (
    HomographClient,
    HomographHTTPServer,
    JobFailed,
    JobManager,
    JobOverflowError,
    ServiceError,
    ServiceUnavailable,
    SingleFlight,
    UnknownJobError,
    start_server,
)
from .snapshot import (
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotVersionError,
    is_snapshot,
    load_snapshot,
)
from .cluster import (
    ClusterRouter,
    MutationLog,
    OplogError,
    OplogFollower,
    ReplicaSupervisor,
    ReplicaVersionMismatch,
    start_cluster,
)

__version__ = "1.8.0"

__all__ = [
    "BipartiteGraph",
    "CacheInfo",
    "ClusterRouter",
    "Column",
    "DataLake",
    "DetectRequest",
    "DetectResponse",
    "DetectionResult",
    "DomainNet",
    "DuplicateLakeError",
    "DuplicateMeasureError",
    "ExecutionBackend",
    "ExecutionConfig",
    "HomographClient",
    "HomographHTTPServer",
    "HomographIndex",
    "HomographRanking",
    "JobFailed",
    "JobManager",
    "JobOverflowError",
    "Measure",
    "MeasureError",
    "MeasureOutput",
    "MutationLog",
    "OplogError",
    "OplogFollower",
    "ProcessBackend",
    "RankedValue",
    "RankingPage",
    "ReplicaSupervisor",
    "ReplicaVersionMismatch",
    "SerialBackend",
    "ServiceError",
    "ServiceUnavailable",
    "SingleFlight",
    "SkeletonIndex",
    "SnapshotCorruptionError",
    "SnapshotError",
    "SnapshotVersionError",
    "Table",
    "UnknownJobError",
    "UnknownLakeError",
    "UnknownMeasureError",
    "Workspace",
    "WorkspaceError",
    "available_cores",
    "available_measures",
    "betweenness_score_map",
    "betweenness_scores",
    "build_graph",
    "build_graph_from_columns",
    "dump_lake",
    "is_snapshot",
    "lcc_score_map",
    "lcc_scores",
    "load_lake",
    "load_snapshot",
    "normalize_value",
    "read_table",
    "register_measure",
    "resolve_backend",
    "skeleton",
    "start_cluster",
    "start_server",
    "unregister_measure",
    "use_backend",
    "write_table",
    "__version__",
]
