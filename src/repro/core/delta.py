"""Delta planning: lake mutations -> CSR splice specifications.

:func:`~repro.core.builder.build_graph` assigns value ids in
first-encounter order over ``lake.iter_attributes()`` and keeps a value
iff its lake-wide occurrence count clears the threshold.  To splice a
mutation into an existing graph *bit-identically* to a from-scratch
rebuild, the planner must therefore reproduce two things the graph
alone no longer remembers:

* the occurrence count of every value (survivors of the pruning
  threshold can cross it in either direction when a table changes), and
* each value's rebuild-order key — ``(position of its first containing
  attribute, first-appearance rank within that column)`` — which
  decides where a (re)inserted value id lands.

:class:`LakeLedger` keeps both, maintained in O(delta) per mutation
after one O(lake) bootstrap pass.  :func:`plan_mutation` turns one
table-level mutation (add / remove / replace, normalized to "columns
removed + columns added") into a :class:`~repro.core.graph.SpliceSpec`,
treating every touched value as drop-plus-reinsert so the id maps stay
monotonic over untouched survivors.  It returns ``None`` when the
ledger and graph disagree (the caller falls back to a full rebuild,
which is always correct).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datalake.lake import DataLake
from ..datalake.table import Table
from .builder import _occurrence_counts
from .graph import BipartiteGraph, SpliceSpec

#: One value's per-attribute bookkeeping: ``qualified name ->
#: (occurrence count, first-appearance rank within the column)``.
ValueRecord = Dict[str, Tuple[int, int]]


class LakeLedger:
    """Per-value occurrence counts and rebuild-order ranks of a lake.

    The ledger is keyed by *normalized* value, exactly as the graph
    builder normalizes cells, and by qualified attribute name, so it
    stays valid across the attribute-position shifts a mutation
    causes.  It intentionally stores nothing derivable from the graph
    (edges, ids); only what a rebuild would need and a splice cannot
    recover: totals and within-column ranks.
    """

    def __init__(self) -> None:
        self._values: Dict[str, ValueRecord] = {}

    @classmethod
    def from_lake(cls, lake: DataLake) -> "LakeLedger":
        """Bootstrap the ledger with one pass over the lake."""
        ledger = cls()
        for column in lake.iter_attributes():
            ledger.ingest_column(
                column.qualified_name, _occurrence_counts(column.values)
            )
        return ledger

    def ingest_column(
        self, qualified_name: str, counts: Dict[str, int]
    ) -> None:
        """Record one column's (ordered) occurrence counts."""
        for rank, (value, count) in enumerate(counts.items()):
            self._values.setdefault(value, {})[qualified_name] = (
                count, rank,
            )

    def drop_column(
        self, qualified_name: str, counts: Dict[str, int]
    ) -> None:
        """Forget one column's contributions (inverse of ingest)."""
        for value in counts:
            record = self._values.get(value)
            if record is None:
                continue
            record.pop(qualified_name, None)
            if not record:
                del self._values[value]

    def record(self, value: str) -> Optional[ValueRecord]:
        """The per-attribute record of a value (``None`` if absent)."""
        return self._values.get(value)

    def total(self, value: str) -> int:
        """Lake-wide occurrence count of a value (0 if absent)."""
        record = self._values.get(value)
        if not record:
            return 0
        return sum(count for count, _rank in record.values())

    def __len__(self) -> int:
        return len(self._values)


def table_column_counts(table: Table) -> List[Tuple[str, Dict[str, int]]]:
    """``(qualified name, occurrence counts)`` per column of a table."""
    return [
        (column.qualified_name, _occurrence_counts(column.values))
        for column in table.iter_columns()
    ]


def plan_mutation(
    graph: BipartiteGraph,
    ledger: LakeLedger,
    lake: DataLake,
    removed_columns: Sequence[Tuple[str, Dict[str, int]]],
    added_columns: Sequence[Tuple[str, Dict[str, int]]],
    min_occurrences: int,
) -> Optional[SpliceSpec]:
    """Plan one table mutation as a splice against the current graph.

    ``lake`` must already hold the *post-mutation* tables (its
    attribute iteration order defines the new vocabularies), while
    ``graph`` and ``ledger`` still describe the pre-mutation state.
    ``removed_columns`` / ``added_columns`` carry the mutating table's
    columns with their occurrence counts — for a replace, *all* old
    columns are removed and *all* new ones added, even same-named
    ones, since their contents may differ.

    On success the ledger is updated to the post-mutation state and
    the :class:`~repro.core.graph.SpliceSpec` is returned; ``None``
    means the planner detected an inconsistency between graph, ledger,
    and lake, and the caller must fall back to a full rebuild.
    """
    old_attr_names = graph.attribute_names
    new_attr_names = [
        column.qualified_name for column in lake.iter_attributes()
    ]
    if len(set(new_attr_names)) != len(new_attr_names):
        return None
    new_attr_pos = {name: i for i, name in enumerate(new_attr_names)}
    removed_qnames = {qname for qname, _counts in removed_columns}

    # Survivor attributes must keep their relative order (dict-backed
    # lake mutations guarantee it; verify instead of assuming).
    attribute_map = np.full(len(old_attr_names), -1, dtype=np.int64)
    last = -1
    for i, qname in enumerate(old_attr_names):
        if qname in removed_qnames:
            continue
        pos = new_attr_pos.get(qname)
        if pos is None or pos <= last:
            return None
        attribute_map[i] = pos
        last = pos

    # Touched values: everything occurring in a removed or added
    # column.  Each is dropped (if present) and reinserted (if its new
    # total clears the threshold) so untouched ids never move.
    touched: Dict[str, ValueRecord] = {}
    for qname, counts in removed_columns:
        for value in counts:
            if value not in touched:
                record = ledger.record(value)
                if record is None:
                    return None
                touched[value] = dict(record)
    # Drop removed columns *before* layering added ones on top: a
    # replace re-adds same-named columns, and those fresh entries must
    # survive the pop.
    for qname, _counts in removed_columns:
        for record in touched.values():
            record.pop(qname, None)
    for qname, counts in added_columns:
        for rank, (value, count) in enumerate(counts.items()):
            if value not in touched:
                base = dict(ledger.record(value) or {})
                for removed in removed_qnames:
                    base.pop(removed, None)
                touched[value] = base
            touched[value][qname] = (count, rank)

    def rebuild_key(record: ValueRecord) -> Tuple[int, int]:
        """A value's rebuild-order key under the new attribute order."""
        return min(
            (new_attr_pos[qname], rank)
            for qname, (_count, rank) in record.items()
        )

    # Classify each touched value by its post-mutation total.
    reinserted: List[Tuple[Tuple[int, int], str, List[int]]] = []
    value_map = np.arange(graph.num_values, dtype=np.int64)
    for value, record in touched.items():
        was_kept = graph.has_value(value)
        old_total = ledger.total(value)
        if was_kept != (old_total >= min_occurrences):
            return None  # ledger out of sync with the graph
        if was_kept:
            value_map[graph.value_id(value)] = -1
        new_total = sum(count for count, _rank in record.values())
        if new_total >= min_occurrences:
            edges = sorted(new_attr_pos[q] for q in record)
            reinserted.append((rebuild_key(record), value, edges))
    reinserted.sort(key=lambda item: item[0])

    # Merge the reinserted values into the untouched survivors, whose
    # rebuild keys are already in id order: binary-search each
    # insertion point, evaluating survivor keys on demand.
    survivor_ids = np.flatnonzero(value_map >= 0)
    survivor_names = [graph.value_name(int(v)) for v in survivor_ids]

    def survivor_key(index: int) -> Tuple[int, int]:
        record = ledger.record(survivor_names[index])
        if record is None:
            raise LookupError(survivor_names[index])
        return rebuild_key(record)

    insert_points = []
    try:
        for key, _value, _edges in reinserted:
            lo, hi = 0, len(survivor_names)
            while lo < hi:
                mid = (lo + hi) // 2
                if survivor_key(mid) < key:
                    lo = mid + 1
                else:
                    hi = mid
            insert_points.append(lo)
    except LookupError:
        return None  # survivor missing from the ledger

    points = np.asarray(insert_points, dtype=np.int64)
    # insert_points is non-decreasing (reinserted is key-sorted), so
    # survivor j shifts by the count of insertions at or before it and
    # insertion i lands at its point plus the i earlier insertions.
    final_names: List[str] = list(survivor_names)
    new_value_map = np.full(graph.num_values, -1, dtype=np.int64)
    shift = np.searchsorted(points, np.arange(len(survivor_names)),
                            side="right")
    new_value_map[survivor_ids] = (
        np.arange(len(survivor_names), dtype=np.int64) + shift
    )
    edge_list: List[Tuple[int, int]] = []
    for i, (point, (_key, value, edges)) in enumerate(
        zip(points, reinserted)
    ):
        new_id = int(point) + i
        final_names.insert(new_id, value)
        edge_list.extend((new_id, attr) for attr in edges)

    # Commit the ledger to the post-mutation state only once the plan
    # is complete; a ``None`` return leaves it untouched.
    for qname, counts in removed_columns:
        ledger.drop_column(qname, counts)
    for qname, counts in added_columns:
        ledger.ingest_column(qname, counts)

    new_edges = (
        np.asarray(edge_list, dtype=np.int64)
        if edge_list
        else np.empty((0, 2), dtype=np.int64)
    )
    return SpliceSpec(
        value_names=final_names,
        attribute_names=new_attr_names,
        value_map=new_value_map,
        attribute_map=attribute_map,
        new_edges=new_edges,
    )
