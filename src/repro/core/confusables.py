"""Confusable-skeleton normalization — the adversarial variant of §3.2.

The paper's homographs are exact-string collisions after whitespace and
case normalization.  The security literature (ShamFinder's IDN
confusable skeletons, GlyphNet's homoglyph-domain datasets) studies the
adversarial variant: values crafted to *look* identical while comparing
unequal — ``Ρaris`` with a Greek Rho, ``J0HN`` in leetspeak,
``Ｓａｎ Ｄｉｅｇｏ`` in fullwidth forms.  Exact-match normalization
treats each forgery as a fresh low-degree value, so centrality-based
detection never sees the collision.

This module adds a dependency-free *skeleton* layer in the spirit of
Unicode TS #39 (confusable skeletons), restricted to a curated map:

* uppercase Greek letters whose glyphs coincide with Latin capitals;
* uppercase Cyrillic letters whose glyphs coincide with Latin capitals;
* the fullwidth ASCII block ``U+FF01..U+FF5E`` (lowercase forms are
  unreachable after :func:`~repro.core.normalize.normalize_value`
  upper-cases them, so only case-stable entries are kept);
* common leetspeak digit substitutions (``0→O``, ``3→E``, ...), folded
  only when the digit sits *between* two ASCII letters so genuinely
  numeric values (``"12.34"``, ``"2021"``) keep their spelling.

:func:`skeleton` composes with ``normalize_value`` and is idempotent:
``skeleton(skeleton(x)) == skeleton(x)`` for every string, and a pure
ASCII value without letter-flanked digits is its own skeleton — which
is what keeps the skeleton-aware measure a bit-for-bit no-op on clean
lakes.  :class:`SkeletonIndex` groups a lake's distinct normalized
values by shared skeleton so forged collisions become graph-visible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from ..datalake.lake import DataLake
from .normalize import normalize_value

#: Uppercase Greek capitals that render as Latin capitals.
GREEK_CONFUSABLES: Dict[str, str] = {
    "Α": "A",  # ALPHA
    "Β": "B",  # BETA
    "Ε": "E",  # EPSILON
    "Ζ": "Z",  # ZETA
    "Η": "H",  # ETA
    "Ι": "I",  # IOTA
    "Κ": "K",  # KAPPA
    "Μ": "M",  # MU
    "Ν": "N",  # NU
    "Ο": "O",  # OMICRON
    "Ρ": "P",  # RHO
    "Τ": "T",  # TAU
    "Υ": "Y",  # UPSILON
    "Χ": "X",  # CHI
}

#: Uppercase Cyrillic capitals that render as Latin capitals.
CYRILLIC_CONFUSABLES: Dict[str, str] = {
    "А": "A",  # U+0410 CYRILLIC CAPITAL LETTER A
    "В": "B",  # U+0412 VE
    "Е": "E",  # U+0415 IE
    "Ѕ": "S",  # U+0405 DZE
    "І": "I",  # U+0406 BYELORUSSIAN-UKRAINIAN I
    "Ј": "J",  # U+0408 JE
    "К": "K",  # U+041A KA
    "М": "M",  # U+041C EM
    "Н": "H",  # U+041D EN
    "О": "O",  # U+041E O
    "Р": "P",  # U+0420 ER
    "С": "C",  # U+0421 ES
    "Т": "T",  # U+0422 TE
    "У": "Y",  # U+0423 U
    "Х": "X",  # U+0425 HA
    "Ԝ": "W",  # U+051C WE
}


def _fullwidth_confusables() -> Dict[str, str]:
    """The fullwidth ASCII block, minus case-unstable lowercase forms."""
    mapping: Dict[str, str] = {}
    for offset in range(0x21, 0x7F):
        target = chr(offset)
        if "a" <= target <= "z":
            # normalize_value upper-cases ＡＢＣ... out of existence
            # before folding ever runs; keeping lowercase keys would
            # break the map round-trip property for no reachable input.
            continue
        mapping[chr(0xFEE0 + offset)] = target
    return mapping


#: Fullwidth ASCII forms (``！..～``) that survive upper-casing.
FULLWIDTH_CONFUSABLES: Dict[str, str] = _fullwidth_confusables()

#: Leetspeak digit substitutions, applied only between ASCII letters.
LEET_CONFUSABLES: Dict[str, str] = {
    "0": "O",
    "1": "I",
    "2": "Z",
    "3": "E",
    "4": "A",
    "5": "S",
    "6": "G",
    "7": "T",
    "8": "B",
    "9": "G",
}

#: Every unconditional single-character fold (leet is positional and
#: therefore excluded; see :data:`LEET_CONFUSABLES`).
CONFUSABLES: Dict[str, str] = {
    **GREEK_CONFUSABLES,
    **CYRILLIC_CONFUSABLES,
    **FULLWIDTH_CONFUSABLES,
}

_TRANSLATION = str.maketrans(CONFUSABLES)

#: Substitution styles the forge generator can draw from.
STYLES: Tuple[str, ...] = ("greek", "cyrillic", "fullwidth", "leet")

_STYLE_MAPS: Dict[str, Mapping[str, str]] = {
    "greek": GREEK_CONFUSABLES,
    "cyrillic": CYRILLIC_CONFUSABLES,
    "fullwidth": FULLWIDTH_CONFUSABLES,
    "leet": LEET_CONFUSABLES,
}


def _is_ascii_letter(ch: str) -> bool:
    """True for ``A``–``Z`` (input is already upper-cased)."""
    return "A" <= ch <= "Z"


def _fold_leet(value: str) -> str:
    """Fold digits flanked by ASCII letters on both sides.

    Decisions use the *original* neighbors, which makes a single pass
    idempotent: a digit that keeps a digit neighbor keeps it forever
    (that neighbor cannot fold either), and non-alphanumeric neighbors
    never change.
    """
    last = len(value) - 1
    out: List[str] = []
    for i, ch in enumerate(value):
        sub = LEET_CONFUSABLES.get(ch)
        if (
            sub is not None
            and 0 < i < last
            and _is_ascii_letter(value[i - 1])
            and _is_ascii_letter(value[i + 1])
        ):
            out.append(sub)
        else:
            out.append(ch)
    return "".join(out)


def skeleton(raw: str) -> str:
    """Confusable skeleton of one cell value.

    Composes with :func:`~repro.core.normalize.normalize_value` (the
    input is normalized first, so ``skeleton(normalize_value(x)) ==
    skeleton(x)``), folds the curated confusable map, re-normalizes,
    and finally folds letter-flanked leetspeak digits.  Idempotent by
    construction; pure-ASCII values without letter-flanked digits map
    to themselves.
    """
    value = normalize_value(raw)
    if not value:
        return ""
    if value.isascii():
        if not any("0" <= ch <= "9" for ch in value):
            return value
        return _fold_leet(value)
    folded = normalize_value(value.translate(_TRANSLATION))
    return _fold_leet(folded)


def substitutions(style: str) -> Dict[str, Tuple[str, ...]]:
    """Inverse confusable map for one style: ASCII target → lookalikes.

    This is the forge generator's menu — for ``"greek"`` it answers
    "which Greek capitals does :func:`skeleton` fold to ``P``?".
    Raises ``ValueError`` for styles outside :data:`STYLES`.
    """
    try:
        forward = _STYLE_MAPS[style]
    except KeyError:
        raise ValueError(
            f"unknown substitution style {style!r}; "
            f"available: {STYLES}"
        ) from None
    inverse: Dict[str, List[str]] = {}
    for source, target in forward.items():
        inverse.setdefault(target, []).append(source)
    return {
        target: tuple(sorted(sources))
        for target, sources in inverse.items()
    }


class SkeletonIndex:
    """Distinct normalized values of a lake, grouped by shared skeleton.

    Two values in the same class are *confusable-equivalent*: they look
    identical under the curated map even though exact-match
    normalization keeps them apart.  Classes with two or more members
    are exactly the collisions a forged lake hides from the exact
    pipeline.
    """

    def __init__(self, values: Iterable[str]) -> None:
        """Index an iterable of raw or normalized values.

        Values are normalized, blanks dropped, duplicates collapsed;
        insertion order of first appearance is preserved inside each
        class so the grouping is deterministic.
        """
        self._skeleton_of: Dict[str, str] = {}
        self._classes: Dict[str, List[str]] = {}
        for raw in values:
            value = normalize_value(raw)
            if not value or value in self._skeleton_of:
                continue
            skel = skeleton(value)
            self._skeleton_of[value] = skel
            self._classes.setdefault(skel, []).append(value)

    @classmethod
    def from_lake(cls, lake: DataLake) -> "SkeletonIndex":
        """Index every distinct normalized value of a data lake."""
        def iter_cells() -> Iterable[str]:
            for column in lake.iter_attributes():
                for raw in column.distinct_values():
                    yield raw

        return cls(iter_cells())

    @classmethod
    def from_graph(cls, graph) -> "SkeletonIndex":
        """Index the value nodes of an already-built bipartite graph."""
        return cls(graph.value_names)

    def __len__(self) -> int:
        """Number of indexed distinct values."""
        return len(self._skeleton_of)

    def __contains__(self, value: str) -> bool:
        """True when the normalized form of ``value`` is indexed."""
        return normalize_value(value) in self._skeleton_of

    def skeleton_of(self, value: str) -> str:
        """Skeleton of one indexed value (KeyError when absent)."""
        normalized = normalize_value(value)
        try:
            return self._skeleton_of[normalized]
        except KeyError:
            raise KeyError(
                f"value {normalized!r} is not in the index"
            ) from None

    def members(self, skel: str) -> Tuple[str, ...]:
        """Values sharing one skeleton, in first-seen order."""
        return tuple(self._classes.get(skel, ()))

    def classes(self) -> Dict[str, Tuple[str, ...]]:
        """Every skeleton class, keyed by skeleton."""
        return {
            skel: tuple(members)
            for skel, members in self._classes.items()
        }

    def collisions(self) -> Dict[str, Tuple[str, ...]]:
        """Only the classes with two or more members."""
        return {
            skel: tuple(members)
            for skel, members in self._classes.items()
            if len(members) >= 2
        }

    @property
    def num_collisions(self) -> int:
        """Number of multi-member skeleton classes."""
        return sum(
            1 for members in self._classes.values() if len(members) >= 2
        )
