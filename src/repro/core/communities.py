"""Meaning counting — the paper's §6 future-work direction.

Once a value is suspected to be a homograph, *how many* meanings does
it have?  The paper frames meanings as communities: each attribute
containing the value belongs to one of the value's meanings, and
attributes of the same meaning share many other values.

The estimator here clusters the attributes ``A(v)`` of a value by the
Jaccard similarity of their remaining value sets (excluding ``v``
itself — the homograph must not glue its own meanings together).
Connected components at a similarity threshold are the estimated
meanings.  On the Figure 1 running example this yields exactly 2 for
Jaguar and Puma and 1 for Toyota and Panda.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .graph import BipartiteGraph


@dataclass(frozen=True)
class MeaningEstimate:
    """Estimated meanings of one value."""

    value: str
    num_meanings: int
    groups: List[List[str]]  # attribute qualified names per meaning

    @property
    def is_homograph(self) -> bool:
        return self.num_meanings >= 2


def estimate_meanings(
    graph: BipartiteGraph,
    value: str,
    threshold: float = 0.25,
) -> MeaningEstimate:
    """Cluster a value's attributes into meaning groups.

    Parameters
    ----------
    graph:
        The bipartite lake graph (pruned or not).
    value:
        Normalized value name.
    threshold:
        Minimum Jaccard similarity (over attribute value sets with the
        target value removed) for two attributes to share a meaning.
        0.25 reproduces the running-example ground truth; lower values
        merge more aggressively.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    v = graph.value_id(value)
    attrs = [int(a) for a in graph.value_attributes(v)]
    if not attrs:
        return MeaningEstimate(value=value, num_meanings=0, groups=[])

    value_sets = []
    for a in attrs:
        members = graph.attribute_values(a)
        value_sets.append(members[members != v])

    n = len(attrs)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            a, b = value_sets[i], value_sets[j]
            if a.size == 0 and b.size == 0:
                similarity = 1.0  # two singleton attributes: no evidence
            else:
                inter = np.intersect1d(a, b, assume_unique=True).size
                union = a.size + b.size - inter
                similarity = inter / union if union else 0.0
            if similarity >= threshold:
                ra, rb = find(i), find(j)
                if ra != rb:
                    parent[ra] = rb

    clusters: Dict[int, List[str]] = {}
    for i, a in enumerate(attrs):
        clusters.setdefault(find(i), []).append(graph.attribute_name(a))
    groups = sorted(clusters.values(), key=lambda g: (len(g), g), reverse=True)
    return MeaningEstimate(
        value=value, num_meanings=len(groups), groups=groups
    )


def estimate_all_meanings(
    graph: BipartiteGraph,
    values: Optional[List[str]] = None,
    threshold: float = 0.25,
) -> Dict[str, MeaningEstimate]:
    """Meaning estimates for many values (default: all candidates).

    Candidates are value nodes appearing in at least two attributes —
    a single-attribute value trivially has one meaning.
    """
    if values is None:
        values = [
            graph.value_name(v)
            for v in range(graph.num_values)
            if graph.degree(v) >= 2
        ]
    return {
        value: estimate_meanings(graph, value, threshold=threshold)
        for value in values
    }
