"""Betweenness centrality (BC) — exact Brandes and sampled approximation.

Hypothesis 3.5 of the paper: homographs have *higher* betweenness than
unambiguous values because shortest paths between the communities they
bridge must pass through them.

The exact algorithm is Brandes' (2001) dependency accumulation, O(nm)
for unweighted graphs, implemented level-synchronously on the CSR arrays
so each BFS is a handful of numpy operations per level rather than a
Python loop per edge.  The approximation follows the source-sampling
scheme the paper uses through Networkit (Geisberger, Sanders & Schultes
2008 / Brandes & Pich 2007): run the single-source dependency
accumulation from ``s`` sampled sources and extrapolate by ``n/s``.

Calibrated conventions (DESIGN.md §1): scores are over the *whole*
bipartite graph with all nodes acting as endpoints, normalized by the
number of node pairs — this reproduces Example 3.6 exactly (Jaguar
0.025, Puma 0.003, Toyota/Panda 0.002).  The footnote-2 variant that
restricts endpoints to value nodes is available via ``endpoints=
"values"`` and is compared in the measure-ablation bench.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .graph import BipartiteGraph, frontier_edges

if TYPE_CHECKING:  # pragma: no cover - hints only, avoids import cycle
    from ..perf.config import ExecutionConfig

_ENDPOINT_MODES = ("all", "values")


def betweenness_scores(
    graph: BipartiteGraph,
    sample_size: Optional[int] = None,
    seed: Optional[int] = None,
    normalized: bool = True,
    endpoints: str = "all",
    strategy: str = "uniform",
    execution: Optional["ExecutionConfig"] = None,
    state_out: Optional[dict] = None,
) -> np.ndarray:
    """Betweenness centrality of every node, indexed by node id.

    Parameters
    ----------
    graph:
        The bipartite value–attribute graph.
    sample_size:
        ``None`` runs exact Brandes over all eligible sources.  A
        positive integer samples that many sources and extrapolates —
        the paper uses ~1% of nodes (5000 samples on TUS) with no loss
        of ranking quality (§5.4).
    seed:
        RNG seed for source sampling; ignored for exact computation.
    normalized:
        Divide by the number of eligible endpoint pairs so scores are
        comparable across graph sizes (the paper's reported scale).
    endpoints:
        ``"all"`` (paper default): every node is a source/target.
        ``"values"``: only value nodes are endpoints (footnote 2).
    strategy:
        ``"uniform"`` (default): sources drawn uniformly without
        replacement, scaled by n/s.  ``"degree"``: sources drawn with
        probability proportional to their degree (with replacement)
        and importance-weighted — the §3.3 observation that high-degree
        nodes are more likely to lie on shortest paths.
    execution:
        Optional :class:`~repro.perf.ExecutionConfig` selecting the
        execution backend.  ``None`` (default) runs serially in
        process; a process backend fans the per-source dependency
        accumulations across cores.  Results agree with serial to
        float tolerance (bit-exactly when ``chunk_size`` is pinned).
    state_out:
        Optional dict filled with the maintenance state incremental
        mutation needs to patch this result later: the raw
        (pre-normalization) value-node accumulator, the effective
        chunk count, and the source-selection parameters.  See
        ``repro.api.maintenance``.

    Returns
    -------
    numpy.ndarray
        Scores for all ``graph.num_nodes`` nodes.  With ``endpoints=
        "values"`` attribute nodes still receive scores (they can lie on
        paths between values) but never act as endpoints.
    """
    if endpoints not in _ENDPOINT_MODES:
        raise ValueError(
            f"unknown endpoints mode {endpoints!r}; "
            f"expected one of {_ENDPOINT_MODES}"
        )
    if strategy not in ("uniform", "degree"):
        raise ValueError(
            f"unknown sampling strategy {strategy!r}; "
            "expected 'uniform' or 'degree'"
        )
    n = graph.num_nodes
    scores = np.zeros(n, dtype=np.float64)
    if n == 0:
        return scores

    if endpoints == "all":
        eligible = np.arange(n, dtype=np.int64)
    else:
        eligible = np.arange(graph.num_values, dtype=np.int64)

    if sample_size is None or (
        strategy == "uniform" and sample_size >= eligible.size
    ):
        sources = eligible
        source_weights = np.ones(eligible.size, dtype=np.float64)
    else:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        rng = np.random.default_rng(seed)
        if strategy == "uniform":
            sources = rng.choice(eligible, size=sample_size, replace=False)
            source_weights = np.full(
                sample_size, eligible.size / sample_size
            )
        else:
            degrees = graph.degrees()[eligible].astype(np.float64)
            total_degree = degrees.sum()
            if total_degree == 0:
                return scores
            probabilities = degrees / total_degree
            picks = rng.choice(
                eligible.size, size=sample_size, replace=True,
                p=probabilities,
            )
            sources = eligible[picks]
            # Horvitz-Thompson style weights: each draw contributes
            # 1 / (r * p_s), keeping the estimator unbiased.
            source_weights = 1.0 / (sample_size * probabilities[picks])

    # Fan the per-source dependency accumulations across the execution
    # backend: each chunk of sources yields one partial score vector,
    # reduced with a deterministic tree-sum.
    from ..perf.backends import backend_scope, tree_sum

    with backend_scope(execution) as backend:
        spans = backend.spans(sources.size)
        payloads = [
            (sources[lo:hi], source_weights[lo:hi]) for lo, hi in spans
        ]
        partials = backend.map_chunks(
            graph, "brandes", payloads, {"endpoints": endpoints}
        )
    if partials:
        scores = tree_sum(partials)

    if state_out is not None:
        # Raw value-node accumulator *before* normalization: patching
        # carries these floats bitwise for untouched components, then
        # renormalizes — recovering raw from normalized scores would
        # not round-trip bit-exactly.
        state_out.update(
            kind="brandes",
            raw_values=scores[: graph.num_values].copy(),
            chunks=len(payloads),
            eligible=int(eligible.size),
            sampled=sources is not eligible,
            strategy=strategy,
            normalized=normalized,
        )

    # Raw accumulation counts each unordered pair twice (once per
    # direction); normalize by ordered endpoint pairs, or halve.
    n_end = eligible.size
    if normalized:
        pairs = (n_end - 1) * (n_end - 2)
        scores = scores / pairs if pairs > 0 else np.zeros_like(scores)
    else:
        scores = scores / 2.0
    return scores


def _single_source_dependency(
    source: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    num_nodes: int,
    target_weight: np.ndarray,
) -> np.ndarray:
    """Brandes dependency accumulation from one source, vectorized.

    Forward phase: level-synchronous BFS recording, per level, the DAG
    edges (u, w) with dist(w) = dist(u) + 1 and accumulating shortest-
    path counts sigma.  Backward phase: walk levels deepest-first and
    push dependencies up the DAG.  ``target_weight[w]`` generalizes the
    textbook ``1``: a node only contributes as a *target* when its
    weight is 1, which implements the values-only endpoint mode.

    Scatter-adds run through ``np.bincount`` rather than ``np.add.at``
    (whose buffered-ufunc path is far slower on large frontiers), and
    the next frontier comes from an idempotent distance write plus one
    ``np.flatnonzero`` scan — O(E + n) per level — instead of sorting
    the discovered endpoints with ``np.unique``, which dominated the
    profile on lake-scale graphs.
    """
    dist = np.full(num_nodes, -1, dtype=np.int64)
    sigma = np.zeros(num_nodes, dtype=np.float64)
    dist[source] = 0
    sigma[source] = 1.0

    frontier = np.array([source], dtype=np.int64)
    level = 0
    level_edges: List[Tuple[np.ndarray, np.ndarray]] = []

    while frontier.size:
        src, dst = frontier_edges(frontier, indptr, indices)
        # Edges to undiscovered endpoints are exactly the DAG edges of
        # this level: the gather happens before any distance write, so
        # nothing can look discovered early.
        mask = dist[dst] < 0
        src, dst = src[mask], dst[mask]
        if dst.size == 0:
            break
        level += 1
        dist[dst] = level
        frontier = np.flatnonzero(dist == level)
        sigma += np.bincount(dst, weights=sigma[src], minlength=num_nodes)
        level_edges.append((src, dst))

    delta = np.zeros(num_nodes, dtype=np.float64)
    for src, dst in reversed(level_edges):
        contrib = sigma[src] / sigma[dst] * (target_weight[dst] + delta[dst])
        delta += np.bincount(src, weights=contrib, minlength=num_nodes)

    delta[source] = 0.0
    return delta


def betweenness_score_map(
    graph: BipartiteGraph,
    sample_size: Optional[int] = None,
    seed: Optional[int] = None,
    normalized: bool = True,
    endpoints: str = "all",
    execution: Optional["ExecutionConfig"] = None,
    state_out: Optional[dict] = None,
) -> Dict[str, float]:
    """Betweenness of *value* nodes keyed by value name."""
    scores = betweenness_scores(
        graph,
        sample_size=sample_size,
        seed=seed,
        normalized=normalized,
        endpoints=endpoints,
        execution=execution,
        state_out=state_out,
    )
    return {
        graph.value_name(v): float(scores[v])
        for v in range(graph.num_values)
    }
