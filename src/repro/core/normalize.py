"""Value normalization.

The paper (§3.2): "Every data value is treated as a single string, it is
capitalized and has its leading and trailing white-space removed to
ensure consistent comparison of data values across the lake."  A single
normalization function is shared by the graph builder, the profilers,
and every ground-truth labeler so the notion of "the same value" is
identical everywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Set


def normalize_value(raw: str) -> str:
    """Normalize one cell for cross-lake comparison.

    Strips leading/trailing whitespace (including internal runs collapsed
    to single spaces, so ``"San  Diego"`` and ``"San Diego"`` agree) and
    upper-cases the result.  Returns the empty string for blank cells —
    callers treat that as "no value".
    """
    if not raw:
        return ""
    collapsed = " ".join(raw.split())
    return collapsed.upper()


def normalize_column(values: Iterable[str]) -> List[str]:
    """Normalize a column, dropping blanks, preserving first-seen order.

    The result is the column's *distinct normalized value set* in list
    form: duplicates collapse because the bipartite graph has at most one
    edge between a value and an attribute no matter how often the value
    repeats in the column.
    """
    seen: Set[str] = set()
    out: List[str] = []
    for raw in values:
        value = normalize_value(raw)
        if value and value not in seen:
            seen.add(value)
            out.append(value)
    return out
