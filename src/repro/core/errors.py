"""Error-vs-genuine homograph classification (§6 future work).

The paper distinguishes homographs that are *genuinely ambiguous*
(Jaguar) from homographs born of *data errors* — e.g. the animal color
"yellow" accidentally entered in a habitat column, or "Manitoba Hydro"
landing in a Street Name column.  The observable difference is support:
an error-meaning is typically backed by one or two stray cells, while a
genuine meaning recurs.

:func:`classify_homographs` groups each homograph's attributes into
meanings (via :mod:`repro.core.communities`), counts the cell
occurrences supporting each meaning, and calls the homograph an
``"error"`` when its weakest meaning has at most ``error_support``
occurrences while another meaning is well supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.normalize import normalize_value
from ..datalake.lake import DataLake
from .builder import build_graph
from .communities import estimate_meanings
from .graph import BipartiteGraph


@dataclass(frozen=True)
class HomographClassification:
    """Verdict for one homograph value."""

    value: str
    kind: str  # "genuine", "error", or "single-meaning"
    meaning_support: List[int]  # occurrences per meaning, descending

    @property
    def num_meanings(self) -> int:
        return len(self.meaning_support)


def classify_homographs(
    lake: DataLake,
    values: Iterable[str],
    threshold: float = 0.25,
    error_support: int = 1,
    dominant_support: int = 3,
    graph: BipartiteGraph = None,
) -> Dict[str, HomographClassification]:
    """Classify each candidate homograph as genuine or error-born.

    Parameters
    ----------
    lake:
        The data lake (needed for occurrence counts).
    values:
        Normalized homograph candidates (e.g. a detector's top-k).
    threshold:
        Meaning-clustering similarity threshold.
    error_support:
        A meaning with at most this many supporting cells is "stray".
    dominant_support:
        The strongest meaning must have at least this many cells for
        the stray meaning to look like an error rather than sparsity.
    graph:
        Optionally a pre-built graph of the lake (unpruned), to avoid
        rebuilding it per call.
    """
    if graph is None:
        graph = build_graph(lake)
    occurrences = _occurrences_per_attribute(lake)

    out: Dict[str, HomographClassification] = {}
    for value in values:
        if not graph.has_value(value):
            continue
        estimate = estimate_meanings(graph, value, threshold=threshold)
        support = sorted(
            (
                sum(
                    occurrences.get((attr, value), 0)
                    for attr in group
                )
                for group in estimate.groups
            ),
            reverse=True,
        )
        if len(support) < 2:
            kind = "single-meaning"
        elif (
            support[-1] <= error_support
            and support[0] >= dominant_support
        ):
            kind = "error"
        else:
            kind = "genuine"
        out[value] = HomographClassification(
            value=value, kind=kind, meaning_support=support
        )
    return out


def _occurrences_per_attribute(lake: DataLake) -> Dict[tuple, int]:
    """(attribute qualified name, normalized value) -> cell count."""
    counts: Dict[tuple, int] = {}
    for column in lake.iter_attributes():
        qname = column.qualified_name
        for raw in column.values:
            value = normalize_value(raw)
            if value:
                key = (qname, value)
                counts[key] = counts.get(key, 0) + 1
    return counts
