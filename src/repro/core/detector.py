"""End-to-end homograph detection: the three-step pipeline of Figure 4.

1. **Construct** the DomainNet bipartite graph from the lake (values in
   fewer than two attributes are pruned — they cannot be homographs).
2. **Compute** a centrality measure for every value node (betweenness by
   default; LCC available).
3. **Rank** values by the measure and surface the top candidates.

:class:`DomainNet` is the library's main entry point::

    from repro import DomainNet
    detector = DomainNet.from_lake(lake)
    result = detector.detect(measure="betweenness", sample_size=1000, seed=7)
    for entry in result.ranking.top(10):
        print(entry.rank, entry.value, entry.score)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..datalake.lake import DataLake
from .betweenness import betweenness_score_map
from .builder import build_graph
from .graph import BipartiteGraph
from .lcc import lcc_score_map
from .ranking import HomographRanking, rank_by_betweenness, rank_by_lcc

_MEASURES = ("betweenness", "lcc")


@dataclass
class DetectionResult:
    """Outcome of one detection run."""

    measure: str
    ranking: HomographRanking
    scores: Dict[str, float]
    graph_seconds: float
    measure_seconds: float
    parameters: Dict[str, object] = field(default_factory=dict)

    def top_values(self, k: int):
        return self.ranking.top_values(k)


class DomainNet:
    """Homograph detector over a data lake.

    Parameters
    ----------
    graph:
        A pre-built bipartite graph.  Use :meth:`from_lake` to build one
        with the paper's preprocessing (candidate pruning) applied.
    graph_seconds:
        Time spent building the graph, carried into results for the
        scalability experiments.
    """

    def __init__(self, graph: BipartiteGraph, graph_seconds: float = 0.0) -> None:
        self.graph = graph
        self._graph_seconds = graph_seconds

    @classmethod
    def from_lake(
        cls,
        lake: DataLake,
        prune_candidates: bool = True,
    ) -> "DomainNet":
        """Step 1: build the graph from a lake.

        ``prune_candidates=True`` applies the paper's preprocessing —
        drop values occurring only once in the whole lake.  Values that
        repeat within a single column survive as graph nodes (they shape
        shortest paths) even though they cannot be homographs.  Pass
        ``False`` to keep every value node (used when reproducing
        Example 3.6).
        """
        start = time.perf_counter()
        graph = build_graph(
            lake, min_occurrences=2 if prune_candidates else 1
        )
        elapsed = time.perf_counter() - start
        return cls(graph, graph_seconds=elapsed)

    def detect(
        self,
        measure: str = "betweenness",
        sample_size: Optional[int] = None,
        seed: Optional[int] = None,
        lcc_variant: str = "attribute-jaccard",
        endpoints: str = "all",
    ) -> DetectionResult:
        """Steps 2 + 3: score every value node and rank.

        Parameters
        ----------
        measure:
            ``"betweenness"`` (default, Hypothesis 3.5) or ``"lcc"``
            (Hypothesis 3.4).
        sample_size:
            For betweenness only: number of sampled sources for the
            approximate algorithm; ``None`` computes exactly.  The paper
            finds ~1% of nodes sufficient (§5.4).
        seed:
            RNG seed for the sampled approximation.
        lcc_variant:
            For LCC only: ``"attribute-jaccard"`` (paper implementation)
            or ``"value-neighbors"`` (literal Eq. 1).
        endpoints:
            For betweenness only: ``"all"`` (paper) or ``"values"``
            (footnote-2 variant).
        """
        if measure not in _MEASURES:
            raise ValueError(
                f"unknown measure {measure!r}; expected one of {_MEASURES}"
            )
        start = time.perf_counter()
        if measure == "betweenness":
            scores = betweenness_score_map(
                self.graph,
                sample_size=sample_size,
                seed=seed,
                endpoints=endpoints,
            )
            ranking = rank_by_betweenness(scores)
            parameters: Dict[str, object] = {
                "sample_size": sample_size,
                "seed": seed,
                "endpoints": endpoints,
            }
        else:
            scores = lcc_score_map(self.graph, variant=lcc_variant)
            ranking = rank_by_lcc(scores)
            parameters = {"variant": lcc_variant}
        elapsed = time.perf_counter() - start

        return DetectionResult(
            measure=measure,
            ranking=ranking,
            scores=scores,
            graph_seconds=self._graph_seconds,
            measure_seconds=elapsed,
            parameters=parameters,
        )
