"""Legacy one-shot detection surface (deprecated shim).

The three-step pipeline of Figure 4 now lives behind the stateful
:class:`repro.api.HomographIndex`, which adds score caching, incremental
lake updates, a pluggable measure registry, and serializable results::

    from repro import HomographIndex
    index = HomographIndex(lake)
    response = index.detect(measure="betweenness", sample_size=1000, seed=7)
    for entry in response.ranking.top(10):
        print(entry.rank, entry.value, entry.score)

:class:`DomainNet` and :class:`DetectionResult` are kept as thin shims
so existing callers keep working: ``DomainNet`` delegates measure
dispatch to the registry (so third-party measures registered via
``repro.api.register_measure`` work here too), and ``DetectionResult``
mirrors the fields of :class:`repro.api.DetectResponse`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..datalake.lake import DataLake
from .graph import BipartiteGraph
from .ranking import HomographRanking

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..api.requests import DetectResponse


@dataclass
class DetectionResult:
    """Outcome of one detection run (legacy mirror of ``DetectResponse``)."""

    measure: str
    ranking: HomographRanking
    scores: Dict[str, float]
    graph_seconds: float
    measure_seconds: float
    parameters: Dict[str, object] = field(default_factory=dict)

    def top_values(self, k: int):
        return self.ranking.top_values(k)

    @classmethod
    def from_response(cls, response: "DetectResponse") -> "DetectionResult":
        """Downgrade a new-style response to the legacy shape."""
        return cls(
            measure=response.measure,
            ranking=response.ranking,
            scores=dict(response.scores),
            graph_seconds=response.graph_seconds,
            measure_seconds=response.measure_seconds,
            parameters=dict(response.parameters),
        )


class DomainNet:
    """Deprecated one-shot homograph detector over a data lake.

    Prefer :class:`repro.api.HomographIndex`; this shim rebuilds and
    rescores from scratch on every call.

    Parameters
    ----------
    graph:
        A pre-built bipartite graph.  Use :meth:`from_lake` to build one
        with the paper's preprocessing (candidate pruning) applied.
    graph_seconds:
        Time spent building the graph, carried into results for the
        scalability experiments.
    """

    def __init__(self, graph: BipartiteGraph, graph_seconds: float = 0.0) -> None:
        self.graph = graph
        self._graph_seconds = graph_seconds

    @classmethod
    def from_lake(
        cls,
        lake: DataLake,
        prune_candidates: bool = True,
    ) -> "DomainNet":
        """Step 1: build the graph from a lake.

        ``prune_candidates=True`` applies the paper's preprocessing —
        drop values occurring only once in the whole lake.  Values that
        repeat within a single column survive as graph nodes (they shape
        shortest paths) even though they cannot be homographs.  Pass
        ``False`` to keep every value node (used when reproducing
        Example 3.6).
        """
        warnings.warn(
            "DomainNet is deprecated; use repro.HomographIndex for "
            "cached, incremental detection",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..api.index import HomographIndex

        index = HomographIndex(lake, prune_candidates=prune_candidates)
        return cls(index.graph, graph_seconds=index.graph_seconds)

    def detect(
        self,
        measure: str = "betweenness",
        sample_size: Optional[int] = None,
        seed: Optional[int] = None,
        lcc_variant: str = "attribute-jaccard",
        endpoints: str = "all",
    ) -> DetectionResult:
        """Steps 2 + 3: score every value node and rank.

        Dispatches through the measure registry; see
        :class:`repro.api.DetectRequest` for the parameter semantics.
        """
        from ..api.index import execute_request
        from ..api.requests import DetectRequest

        request = DetectRequest(
            measure=measure,
            sample_size=sample_size,
            seed=seed,
            lcc_variant=lcc_variant,
            endpoints=endpoints,
        )
        response = execute_request(
            self.graph, request, graph_seconds=self._graph_seconds
        )
        return DetectionResult.from_response(response)
