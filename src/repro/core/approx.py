"""Riondato–Kornaropoulos betweenness approximation (pair sampling).

The paper (§3.3) cites two approximation families for BC: the
source-sampling scheme it adopts through Networkit (implemented in
:mod:`repro.core.betweenness`), and Riondato & Kornaropoulos' sampler
with *(epsilon, delta)* guarantees (DMKD 2016).  This module implements
the latter:

1. the sample size ``r`` is set from a VC-dimension bound using the
   *vertex diameter* VD (the maximum number of nodes on any shortest
   path): ``r = (c/eps^2) * (floor(log2(VD - 2)) + 1 + ln(1/delta))``;
2. each sample draws a node pair (u, v) uniformly, picks one shortest
   u-v path uniformly at random (backward walk weighted by the
   shortest-path counts sigma), and adds ``1/r`` to every *internal*
   node of that path.

With probability at least ``1 - delta`` every node's estimate is
within ``eps`` of its (pair-normalized) betweenness.  Estimates are
rescaled to the same normalization as the exact scores so rankings are
directly comparable.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from .graph import BipartiteGraph, frontier_edges

if TYPE_CHECKING:  # pragma: no cover - hints only, avoids import cycle
    from ..perf.config import ExecutionConfig


def riondato_kornaropoulos_bc(
    graph: BipartiteGraph,
    epsilon: float = 0.05,
    delta: float = 0.1,
    c: float = 0.5,
    seed: Optional[int] = None,
    max_samples: Optional[int] = None,
    execution: Optional["ExecutionConfig"] = None,
    state_out: Optional[dict] = None,
) -> np.ndarray:
    """Estimate betweenness for every node by shortest-path sampling.

    Parameters
    ----------
    graph:
        The bipartite graph.
    epsilon, delta:
        Accuracy / confidence of the guarantee (additive error on the
        pair-normalized betweenness).
    c:
        The universal constant of the VC sample bound (0.5 is the value
        used in the original paper).
    seed:
        RNG seed.
    max_samples:
        Optional cap on the sample size (useful in tests; the guarantee
        no longer holds when the cap binds).
    execution:
        Optional :class:`~repro.perf.ExecutionConfig`.  Samples are
        embarrassingly parallel; each carries its own spawned
        :class:`numpy.random.SeedSequence`, so a given ``seed`` walks
        the same sampled paths however the samples are chunked across
        workers.  Scores agree to float-association tolerance across
        chunkings, and bit-identically with a pinned ``chunk_size``.
    state_out:
        Optional dict filled with the maintenance state incremental
        mutation needs to patch this result later: the raw (pre-scale)
        accumulator over value nodes, the sample count, and the
        effective chunk count.  See ``repro.api.maintenance``.

    Returns
    -------
    numpy.ndarray
        Normalized betweenness estimates for all nodes, on the same
        scale as ``betweenness_scores(graph, normalized=True)``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    n = graph.num_nodes
    scores = np.zeros(n, dtype=np.float64)
    if n < 3:
        return scores

    rng = np.random.default_rng(seed)
    diameter = _approximate_vertex_diameter(graph, rng)
    r = sample_size_bound(epsilon, delta, diameter, c=c)
    if max_samples is not None:
        r = min(r, max_samples)
    if r <= 0:
        return scores

    # Draw every (u, v) pair up front and give each sample its own
    # spawned SeedSequence for the path walk: the sampled paths then
    # depend only on (graph, seed, r), never on how samples are chunked
    # across workers — serial and process backends agree
    # sample-for-sample (score totals to summation-order tolerance).
    pairs = rng.integers(0, n, size=(r, 2))
    walk_seeds = np.random.SeedSequence(seed).spawn(r)

    from ..perf.backends import backend_scope, tree_sum

    with backend_scope(execution) as backend:
        spans = backend.spans(r)
        payloads = [
            (pairs[lo:hi], walk_seeds[lo:hi]) for lo, hi in spans
        ]
        partials = backend.map_chunks(
            graph, "rk", payloads, {"inv_r": 1.0 / r}
        )
    if partials:
        scores = tree_sum(partials)

    if state_out is not None:
        # Raw accumulator *before* the n/(n-2) rescale: patching
        # carries these floats bitwise for untouched components and
        # replays only the affected samples, then rescales once.
        state_out.update(
            kind="rk",
            acc_values=scores[: graph.num_values].copy(),
            chunks=len(payloads),
            samples=int(r),
            nodes=int(n),
        )

    # The estimate approximates BC(w) / (n (n-1)) in the unordered-pair
    # convention the sampler uses; rescale onto the exact scores' scale
    # (sum over ordered pairs divided by (n-1)(n-2)).
    scores *= n / (n - 2)
    return scores


def sample_size_bound(
    epsilon: float, delta: float, vertex_diameter: int, c: float = 0.5
) -> int:
    """The VC-dimension sample-size bound of Riondato–Kornaropoulos."""
    vd = max(int(vertex_diameter), 3)
    log_term = math.floor(math.log2(vd - 2)) + 1 + math.log(1.0 / delta)
    return max(1, int(math.ceil((c / epsilon**2) * log_term)))


def _approximate_vertex_diameter(
    graph: BipartiteGraph, rng: np.random.Generator, probes: int = 4
) -> int:
    """Upper-bound the vertex diameter with a few double-sweep BFS runs.

    For unweighted graphs, 2 x (eccentricity found by BFS) + 1 bounds
    the number of nodes on any shortest path in the probed component.
    """
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    best = 2
    for _ in range(probes):
        start = int(rng.integers(0, n))
        far, _dist = _bfs_farthest(start, indptr, indices, n)
        _far2, dist2 = _bfs_farthest(far, indptr, indices, n)
        best = max(best, int(dist2) + 1)
    return best


def _bfs_farthest(
    source: int, indptr: np.ndarray, indices: np.ndarray, n: int
) -> Tuple[int, int]:
    """(farthest node, its distance) from source via level BFS."""
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    last, depth = source, 0
    while frontier.size:
        _src, neighbors = frontier_edges(frontier, indptr, indices)
        if neighbors.size == 0:
            break
        candidates = np.unique(neighbors)
        fresh = candidates[dist[candidates] < 0]
        if fresh.size == 0:
            break
        depth += 1
        dist[fresh] = depth
        last = int(fresh[0])
        frontier = fresh
    return last, depth


def _sample_shortest_path(
    u: int,
    v: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> Optional[List[int]]:
    """One uniform random shortest u-v path; internal nodes only.

    BFS from ``u`` accumulates sigma (shortest-path counts); if ``v``
    is reachable, walk backward from ``v`` choosing each predecessor
    with probability sigma(pred)/sigma(current), which makes every
    shortest path equally likely.  Returns ``None`` when ``v`` is
    unreachable or adjacent to ``u``.
    """
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[u] = 0
    sigma[u] = 1.0
    frontier = np.array([u], dtype=np.int64)
    level = 0

    while frontier.size and dist[v] < 0:
        src, dst = frontier_edges(frontier, indptr, indices)
        mask = dist[dst] < 0
        src, dst = src[mask], dst[mask]
        if dst.size == 0:
            break
        level += 1
        dist[dst] = level
        frontier = np.flatnonzero(dist == level)
        sigma += np.bincount(dst, weights=sigma[src], minlength=n)

    if dist[v] < 0 or dist[v] <= 1:
        return None

    path = []
    current = v
    while dist[current] > 1:
        neighbors = indices[indptr[current]:indptr[current + 1]]
        predecessors = neighbors[dist[neighbors] == dist[current] - 1]
        weights = sigma[predecessors]
        weights = weights / weights.sum()
        current = int(rng.choice(predecessors, p=weights))
        path.append(current)
    return path
