"""Local clustering coefficient (LCC) homograph scores.

The paper defines (Eq. 1) the LCC of a value node ``u`` as the average
pairwise clustering coefficient over its value neighbors ``N(u)``, where
the pairwise coefficient of two values is the Jaccard similarity of their
neighbor sets.  The paper then observes that "the measure as defined in
Equation (1) is no more than the average Jaccard similarity between the
set of attributes that a value co-occurs with" — and indeed only that
attribute-set reading reproduces the scores reported in Example 3.6
(Jaguar 0.36, Puma 0.43, Toyota/Panda 0.46).  See DESIGN.md §1.

Both readings are implemented:

* :func:`lcc_scores` with ``variant="attribute-jaccard"`` (default) —
  the paper's implementation:
  ``LCC(u) = mean over v in N(u) of J(A(u), A(v))``
  with ``A(x)`` the attribute set of ``x``.
* ``variant="value-neighbors"`` — the literal Eq. 1 over value-neighbor
  sets, quadratic in ``|N(u)|`` and only practical on small graphs; kept
  for the measure ablation (DESIGN.md E-X1).

Hypothesis 3.4: homographs should score *lower* than unambiguous values,
so rankings sort ascending.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from .graph import BipartiteGraph, value_neighbors_csr

if TYPE_CHECKING:  # pragma: no cover - hints only, avoids import cycle
    from ..perf.config import ExecutionConfig

_VARIANTS = ("attribute-jaccard", "value-neighbors")


def lcc_scores(
    graph: BipartiteGraph,
    variant: str = "attribute-jaccard",
    execution: Optional["ExecutionConfig"] = None,
) -> np.ndarray:
    """LCC score for every value node, indexed by value node id.

    Isolated values (no value neighbors) score 0.0 — they have no
    community to cohere with, and they cannot be homographs anyway.

    ``execution`` selects the backend: per-value scores are
    independent, so contiguous chunks of value nodes fan across worker
    processes and stitch back deterministically (bit-exact for every
    backend and chunking).
    """
    if variant not in _VARIANTS:
        raise ValueError(
            f"unknown LCC variant {variant!r}; expected one of {_VARIANTS}"
        )
    from ..perf.backends import backend_scope

    scores = np.zeros(graph.num_values, dtype=np.float64)
    with backend_scope(execution) as backend:
        partials = backend.map_chunks(
            graph, "lcc", backend.spans(graph.num_values),
            {"variant": variant},
        )
    for lo, hi, segment in partials:
        scores[lo:hi] = segment
    return scores


def _lcc_attribute_jaccard_ids(
    indptr: np.ndarray, indices: np.ndarray, ids: np.ndarray
) -> np.ndarray:
    """Vectorized attribute-set Jaccard averaging for the given values.

    For a value ``u``, concatenating the value lists of every attribute
    in ``A(u)`` yields each co-occurring value ``v`` exactly
    ``|A(u) ∩ A(v)|`` times, so one ``np.unique(..., return_counts=True)``
    call gives all intersection sizes at once and the Jaccard follows
    from the value degrees.  Cost is linear in the total size of ``u``'s
    attributes rather than quadratic in ``|N(u)|``.  Each value's score
    is independent, so any subset computes bit-identically to the full
    sweep — the property delta maintenance relies on.
    """
    scores = np.zeros(ids.size, dtype=np.float64)
    degrees = np.diff(indptr)

    for i, u in enumerate(ids):
        attrs = indices[indptr[u]:indptr[u + 1]]
        if attrs.size == 0:
            continue
        pieces = [indices[indptr[a]:indptr[a + 1]] for a in attrs]
        cooccurring = np.concatenate(pieces)
        neighbors, inter = np.unique(cooccurring, return_counts=True)
        mask = neighbors != u
        neighbors, inter = neighbors[mask], inter[mask]
        if neighbors.size == 0:
            continue
        union = degrees[u] + degrees[neighbors] - inter
        scores[i] = float(np.mean(inter / union))
    return scores


def _lcc_attribute_jaccard_range(
    indptr: np.ndarray, indices: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Attribute-set Jaccard averaging for the contiguous ``[lo, hi)``."""
    return _lcc_attribute_jaccard_ids(
        indptr, indices, np.arange(lo, hi, dtype=np.int64)
    )


def _lcc_value_neighbors_ids(
    indptr: np.ndarray, indices: np.ndarray, ids: np.ndarray
) -> np.ndarray:
    """Literal Eq. 1 for the given values: Jaccard on value neighbors.

    ``N(v)`` arrays are cached across the loop since neighbors share
    attributes heavily (the cache is per chunk, so chunking trades a
    little recomputation for parallelism).  O(|N(u)|^2)-ish per node —
    ablation use only.  Like the attribute-Jaccard variant, per-value
    scores are subset-independent and bit-exact under any chunking.
    """
    scores = np.zeros(ids.size, dtype=np.float64)
    cache: Dict[int, np.ndarray] = {}

    def neighbor_set(v: int) -> np.ndarray:
        cached = cache.get(v)
        if cached is None:
            cached = value_neighbors_csr(indptr, indices, v)
            cache[v] = cached
        return cached

    for i, u in enumerate(ids):
        n_u = neighbor_set(int(u))
        if n_u.size == 0:
            continue
        total = 0.0
        size_u = n_u.size
        for v in n_u:
            n_v = neighbor_set(int(v))
            inter = np.intersect1d(n_u, n_v, assume_unique=True).size
            union = size_u + n_v.size - inter
            total += inter / union if union else 0.0
        scores[i] = total / size_u
    return scores


def _lcc_value_neighbors_range(
    indptr: np.ndarray, indices: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Literal Eq. 1 for the contiguous value range ``[lo, hi)``."""
    return _lcc_value_neighbors_ids(
        indptr, indices, np.arange(lo, hi, dtype=np.int64)
    )


def lcc_score_map(
    graph: BipartiteGraph,
    variant: str = "attribute-jaccard",
    execution: Optional["ExecutionConfig"] = None,
) -> Dict[str, float]:
    """LCC scores keyed by value name."""
    scores = lcc_scores(graph, variant=variant, execution=execution)
    return {graph.value_name(v): float(scores[v]) for v in range(graph.num_values)}
