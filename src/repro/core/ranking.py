"""Ranking of homograph candidates (step 3 of the Figure 4 pipeline).

Scores flow in from either measure; the ranking layer knows only the
direction in which "more homograph-like" points: descending for
betweenness centrality (Hypothesis 3.5), ascending for the local
clustering coefficient (Hypothesis 3.4).  Ties break lexicographically
on the value name so rankings are deterministic across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class RankedValue:
    """One entry of a homograph ranking."""

    rank: int  # 1-based
    value: str
    score: float


@dataclass(frozen=True)
class RankingPage:
    """One page of a cursor-paginated ranking traversal.

    ``entries`` are consecutive :class:`RankedValue` items in rank
    order; ``next_cursor`` is the opaque token for the following page,
    or ``None`` on the last page; ``total`` is the full ranking size,
    so clients can show progress without walking to the end.
    """

    entries: List[RankedValue]
    next_cursor: Optional[str]
    total: int
    measure: str
    descending: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (what ``GET /ranking`` returns)."""
        return {
            "measure": self.measure,
            "descending": self.descending,
            "total": self.total,
            "next_cursor": self.next_cursor,
            "entries": [
                {"rank": e.rank, "value": e.value, "score": e.score}
                for e in self.entries
            ],
        }


class HomographRanking:
    """An ordered list of candidate values with scores.

    Iterating yields :class:`RankedValue` entries, best candidate first.
    """

    def __init__(
        self,
        scores: Mapping[str, float],
        descending: bool,
        measure: str,
    ) -> None:
        self.measure = measure
        self.descending = descending
        key = (lambda item: (-item[1], item[0])) if descending else (
            lambda item: (item[1], item[0])
        )
        ordered = sorted(scores.items(), key=key)
        self._entries = [
            RankedValue(rank=i + 1, value=value, score=float(score))
            for i, (value, score) in enumerate(ordered)
        ]
        self._by_value: Dict[str, RankedValue] = {
            entry.value: entry for entry in self._entries
        }

    @classmethod
    def from_entries(
        cls,
        entries: Sequence[RankedValue],
        descending: bool,
        measure: str,
    ) -> "HomographRanking":
        """Rebuild a ranking from already-ordered entries.

        Used by deserialization: the stored order is authoritative, so
        no re-sort happens (scores serialized from an approximate run
        must not be re-ranked differently on load).
        """
        ranking = cls.__new__(cls)
        ranking.measure = measure
        ranking.descending = descending
        ranking._entries = list(entries)
        ranking._by_value = {entry.value: entry for entry in ranking._entries}
        return ranking

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation; inverse of :meth:`from_dict`."""
        return {
            "measure": self.measure,
            "descending": self.descending,
            "entries": [
                {"rank": e.rank, "value": e.value, "score": e.score}
                for e in self._entries
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HomographRanking":
        """Rebuild a ranking serialized by :meth:`to_dict`."""
        entries = [
            RankedValue(
                rank=int(e["rank"]),
                value=str(e["value"]),
                score=float(e["score"]),
            )
            for e in payload["entries"]
        ]
        return cls.from_entries(
            entries,
            descending=bool(payload["descending"]),
            measure=str(payload["measure"]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HomographRanking):
            return NotImplemented
        return (
            self.measure == other.measure
            and self.descending == other.descending
            and self._entries == other._entries
        )

    def __hash__(self) -> int:
        return hash((self.measure, self.descending, tuple(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RankedValue]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> RankedValue:
        return self._entries[index]

    def top(self, k: int) -> List[RankedValue]:
        """The best ``k`` candidates (all of them if ``k`` exceeds size)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return self._entries[:k]

    def top_values(self, k: int) -> List[str]:
        """Just the value strings of the top ``k`` candidates."""
        return [entry.value for entry in self.top(k)]

    def page(
        self, cursor: Optional[str] = None, limit: int = 100
    ) -> RankingPage:
        """One page of entries for cursor-style pagination.

        ``cursor=None`` starts at the top; every page carries the
        ``next_cursor`` to pass back for the following one (``None``
        once the ranking is exhausted), so a client walks the whole
        ranking in ``limit``-sized slices.  Pages are plain slices of
        the already-materialized entry list — no per-page re-sort or
        full-ranking re-serialization happens.

        Raises :class:`ValueError` on a non-positive ``limit`` or a
        cursor that this ranking did not hand out (tokens are
        ``"<offset>"`` strings; garbage is rejected rather than
        silently clamped).
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if cursor is None:
            start = 0
        else:
            if not isinstance(cursor, str) or not cursor.isdigit():
                raise ValueError(f"invalid ranking cursor {cursor!r}")
            start = int(cursor)
            if start > len(self._entries):
                raise ValueError(
                    f"ranking cursor {cursor!r} is past the end "
                    f"({len(self._entries)} entries)"
                )
        stop = start + limit
        entries = self._entries[start:stop]
        next_cursor = str(stop) if stop < len(self._entries) else None
        return RankingPage(
            entries=entries,
            next_cursor=next_cursor,
            total=len(self._entries),
            measure=self.measure,
            descending=self.descending,
        )

    def rank_of(self, value: str) -> Optional[int]:
        """1-based rank of a value, or ``None`` if absent."""
        entry = self._by_value.get(value)
        return entry.rank if entry else None

    def score_of(self, value: str) -> Optional[float]:
        entry = self._by_value.get(value)
        return entry.score if entry else None

    @property
    def values(self) -> List[str]:
        """All values in rank order."""
        return [entry.value for entry in self._entries]


def rank_by_betweenness(scores: Mapping[str, float]) -> HomographRanking:
    """Descending ranking: high BC ⇒ more homograph-like."""
    return HomographRanking(scores, descending=True, measure="betweenness")


def rank_by_lcc(scores: Mapping[str, float]) -> HomographRanking:
    """Ascending ranking: low LCC ⇒ more homograph-like."""
    return HomographRanking(scores, descending=False, measure="lcc")


def format_ranking(
    ranking: HomographRanking,
    k: int = 10,
    labels: Optional[Mapping[str, bool]] = None,
) -> str:
    """Pretty-print the top-k, optionally marking ground-truth homographs.

    Mirrors the paper's §5.3 top-10 listing format.
    """
    lines = [f"top-{k} by {ranking.measure}"]
    for entry in ranking.top(k):
        mark = ""
        if labels is not None:
            mark = "  [homograph]" if labels.get(entry.value) else "  [unambiguous]"
        lines.append(f"{entry.rank:>4}. {entry.value!r} -> {entry.score:.5f}{mark}")
    return "\n".join(lines)
