"""Compact bipartite value–attribute graph.

The DomainNet representation (§3.2): one node per distinct normalized
data value, one node per attribute, and an undirected edge whenever the
value occurs in the attribute.  At data-lake scale (the NYC lake has
~1.5M value nodes and ~2.3M edges) a dict-of-sets graph is too heavy, so
adjacency is stored in CSR form on numpy arrays:

* node ids ``0 … num_values-1`` are value nodes,
* node ids ``num_values … num_nodes-1`` are attribute nodes,
* ``indptr``/``indices`` hold the symmetric adjacency.

Because the graph is bipartite, every neighbor of a value node is an
attribute node and vice versa; the 2-hop neighborhood of a value node is
its *value neighbors* ``N(v)`` from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


class GraphError(ValueError):
    """Raised on invalid graph construction or queries."""


@dataclass(frozen=True)
class SpliceSpec:
    """One CSR splice, expressed as vocabulary maps plus edge inserts.

    Every mutation is normalized to drops and inserts: a node whose
    adjacency row changes is *dropped* (``-1`` in its map) and
    *reinserted* with an explicit edge list, so the splice never has to
    express in-place row edits.  Both maps must be monotonic over the
    surviving ids (survivors keep their relative order) — that is what
    lets :meth:`BipartiteGraph.splice_rows` merge the carried adjacency
    with the inserted edges in one linear pass instead of a global
    re-sort, and it is what keeps per-component float summation order
    identical to a from-scratch rebuild (see docs/architecture.md,
    "Incremental maintenance").

    Attributes
    ----------
    value_names, attribute_names:
        The post-splice vocabularies, in rebuild order.
    value_map:
        ``old value id -> new value id`` (``-1`` drops the row).
    attribute_map:
        ``old attribute index -> new attribute index`` (``-1`` drops).
    new_edges:
        ``(k, 2)`` array of ``(new value id, new attribute index)``
        edges to insert; must not duplicate carried edges.
    """

    value_names: List[str]
    attribute_names: List[str]
    value_map: np.ndarray
    attribute_map: np.ndarray
    new_edges: np.ndarray


@dataclass(frozen=True)
class GraphDelta:
    """What a :meth:`BipartiteGraph.splice_rows` call touched.

    ``node_map`` maps every old node id to its new id (``-1`` =
    dropped).  ``frontier_old`` / ``frontier_new`` are the structural
    change points: old-space endpoints of removed edges and new-space
    endpoints of inserted edges.  Score maintenance seeds its
    affected-component search from the union of both frontiers (old
    side mapped forward); everything unreachable from them is
    bit-identical to the pre-splice graph.
    """

    node_map: np.ndarray
    frontier_old: np.ndarray
    frontier_new: np.ndarray
    num_values_old: int
    num_values_new: int
    num_nodes_new: int
    values_added: int
    values_removed: int
    edges_added: int
    edges_removed: int

    @property
    def value_map(self) -> np.ndarray:
        """The value-node slice of ``node_map``."""
        return self.node_map[: self.num_values_old]

    @property
    def ids_stable(self) -> bool:
        """Whether every old node kept its id (no adds, drops, shifts)."""
        return self.node_map.size == self.num_nodes_new and bool(
            np.array_equal(
                self.node_map,
                np.arange(self.node_map.size, dtype=np.int64),
            )
        )

    @property
    def delta_values(self) -> int:
        """Value rows written by the splice (drops + inserts)."""
        return self.values_added + self.values_removed

    @property
    def delta_edges(self) -> int:
        """Edges written by the splice (removed + inserted)."""
        return self.edges_added + self.edges_removed


def frontier_edges(
    frontier: np.ndarray, indptr: np.ndarray, indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All ``(u, neighbor)`` pairs for ``u`` in the frontier, flat.

    The shared frontier-expansion step of every level-synchronous BFS
    in the codebase (Brandes, vertex-diameter probes, connected
    components): gathers each frontier node's CSR adjacency run into
    two aligned arrays without a Python loop over nodes.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Flat positions into `indices`: for each frontier node, the run
    # [start, start+count); built without a Python loop.
    run_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total) - np.repeat(run_starts, counts)
    flat = np.repeat(starts, counts) + offsets
    src = np.repeat(frontier, counts)
    return src, indices[flat]


def value_neighbors_csr(
    indptr: np.ndarray, indices: np.ndarray, value_node: int
) -> np.ndarray:
    """The paper's ``N(v)`` computed on raw CSR arrays.

    Union of the value sets of the attributes containing ``value_node``,
    minus the value itself; sorted.  Shared by
    :meth:`BipartiteGraph.value_neighbors` and the perf kernels (which
    hold only the arrays, not a graph object) so the neighbor
    semantics live in exactly one place.
    """
    attrs = indices[indptr[value_node]:indptr[value_node + 1]]
    if attrs.size == 0:
        return np.empty(0, dtype=np.int64)
    pieces = [indices[indptr[a]:indptr[a + 1]] for a in attrs]
    union = np.unique(np.concatenate(pieces))
    return union[union != value_node]


class BipartiteGraph:
    """Immutable CSR bipartite graph over value and attribute nodes."""

    def __init__(
        self,
        value_names: Sequence[str],
        attribute_names: Sequence[str],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        """Build the graph from (value_id, attribute_id) pairs.

        ``value_id`` indexes ``value_names``; ``attribute_id`` indexes
        ``attribute_names``.  Duplicate edges collapse; self-loops cannot
        exist by construction (the two endpoints live in different id
        spaces).
        """
        self._value_names: List[str] = list(value_names)
        self._attribute_names: List[str] = list(attribute_names)
        if len(set(self._value_names)) != len(self._value_names):
            raise GraphError("duplicate value names")
        if len(set(self._attribute_names)) != len(self._attribute_names):
            raise GraphError("duplicate attribute names")

        n_val = len(self._value_names)
        n_attr = len(self._attribute_names)
        n = n_val + n_attr

        if isinstance(edges, np.ndarray):
            edge_array = np.asarray(edges, dtype=np.int64)
        else:
            edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be (value_id, attribute_id) pairs")
        if edge_array.size:
            if edge_array[:, 0].min() < 0 or edge_array[:, 0].max() >= n_val:
                raise GraphError("value id out of range")
            if edge_array[:, 1].min() < 0 or edge_array[:, 1].max() >= n_attr:
                raise GraphError("attribute id out of range")

        # Deduplicate, then symmetrize into global node-id space.
        if edge_array.size:
            keys = edge_array[:, 0] * n_attr + edge_array[:, 1]
            unique_keys = np.unique(keys)
            values = (unique_keys // n_attr).astype(np.int64)
            attrs = (unique_keys % n_attr).astype(np.int64) + n_val
        else:
            values = np.empty(0, dtype=np.int64)
            attrs = np.empty(0, dtype=np.int64)

        src = np.concatenate([values, attrs])
        dst = np.concatenate([attrs, values])
        # One lexsort orders by source node and, within each adjacency
        # run, by neighbor id — every adjacency list comes out sorted
        # without a per-node Python sort loop.
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]

        self._indptr = np.zeros(n + 1, dtype=np.int64)
        self._indptr[1:] = np.cumsum(np.bincount(src, minlength=n))
        self._indices = np.ascontiguousarray(dst)
        # The CSR arrays are shared across worker processes and exposed
        # through read-only properties; freeze them for real.
        self._indptr.flags.writeable = False
        self._indices.flags.writeable = False

        self._value_ids: Dict[str, int] = {
            name: i for i, name in enumerate(self._value_names)
        }
        self._attribute_ids: Dict[str, int] = {
            name: n_val + i for i, name in enumerate(self._attribute_names)
        }

    @classmethod
    def from_csr(
        cls,
        value_names: Sequence[str],
        attribute_names: Sequence[str],
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> "BipartiteGraph":
        """Adopt pre-built CSR arrays without re-deriving them.

        The snapshot loader's constructor: ``indptr``/``indices`` are
        taken by reference (they may be read-only ``np.memmap`` views
        over a snapshot file), validated structurally — length,
        monotonicity, symmetric edge count, index range — and frozen.
        Raises :class:`GraphError` on any inconsistency.
        """
        n_val = len(value_names)
        n = n_val + len(attribute_names)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if indptr.shape[0] != n + 1:
            raise GraphError(
                f"indptr has {indptr.shape[0]} entries; expected "
                f"{n + 1} for {n} nodes"
            )
        if indptr.shape[0] and (
            int(indptr[0]) != 0 or int(indptr[-1]) != indices.shape[0]
        ):
            raise GraphError(
                "indptr does not span the indices array exactly"
            )
        if indptr.shape[0] > 1 and bool(np.any(np.diff(indptr) < 0)):
            raise GraphError("indptr must be non-decreasing")
        if indices.shape[0] % 2 != 0:
            raise GraphError(
                "symmetric CSR adjacency must hold an even entry count"
            )
        if indices.shape[0] and (
            int(indices.min()) < 0 or int(indices.max()) >= n
        ):
            raise GraphError("neighbor id out of range")

        graph = cls.__new__(cls)
        graph._value_names = list(value_names)
        graph._attribute_names = list(attribute_names)
        if len(set(graph._value_names)) != len(graph._value_names):
            raise GraphError("duplicate value names")
        if len(set(graph._attribute_names)) != len(
            graph._attribute_names
        ):
            raise GraphError("duplicate attribute names")
        if indptr.dtype != np.int64 or indices.dtype != np.int64:
            raise GraphError("CSR arrays must be int64")
        # Held by reference, not via asarray: an np.memmap must keep
        # its subclass (filename/offset) so the process backend can
        # export it by file path instead of copying through /dev/shm.
        graph._indptr = indptr
        graph._indices = indices
        # Adopted arrays keep the constructor's invariant: mmap-backed
        # mode="r" arrays are already read-only, in-memory ones are
        # frozen here.
        graph._indptr.flags.writeable = False
        graph._indices.flags.writeable = False
        graph._value_ids = {
            name: i for i, name in enumerate(graph._value_names)
        }
        graph._attribute_ids = {
            name: n_val + i
            for i, name in enumerate(graph._attribute_names)
        }
        return graph

    # ------------------------------------------------------------------
    # Size and id-space queries
    # ------------------------------------------------------------------
    @property
    def num_values(self) -> int:
        return len(self._value_names)

    @property
    def num_attributes(self) -> int:
        return len(self._attribute_names)

    @property
    def num_nodes(self) -> int:
        return self.num_values + self.num_attributes

    @property
    def num_edges(self) -> int:
        return int(self._indices.size // 2)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers (frozen: ``writeable=False`` is enforced)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (frozen: ``writeable=False`` is enforced)."""
        return self._indices

    def is_value_node(self, node: int) -> bool:
        return 0 <= node < self.num_values

    def is_attribute_node(self, node: int) -> bool:
        return self.num_values <= node < self.num_nodes

    # ------------------------------------------------------------------
    # Name <-> id
    # ------------------------------------------------------------------
    def value_name(self, node: int) -> str:
        if not self.is_value_node(node):
            raise GraphError(f"node {node} is not a value node")
        return self._value_names[node]

    def attribute_name(self, node: int) -> str:
        if not self.is_attribute_node(node):
            raise GraphError(f"node {node} is not an attribute node")
        return self._attribute_names[node - self.num_values]

    def value_id(self, name: str) -> int:
        try:
            return self._value_ids[name]
        except KeyError:
            raise GraphError(f"no value node named {name!r}") from None

    def attribute_id(self, name: str) -> int:
        try:
            return self._attribute_ids[name]
        except KeyError:
            raise GraphError(f"no attribute node named {name!r}") from None

    def has_value(self, name: str) -> bool:
        return name in self._value_ids

    @property
    def value_names(self) -> List[str]:
        return list(self._value_names)

    @property
    def attribute_names(self) -> List[str]:
        return list(self._attribute_names)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def degree(self, node: int) -> int:
        return int(self._indptr[node + 1] - self._indptr[node])

    def degrees(self) -> np.ndarray:
        """Degree of every node, as an array indexed by node id."""
        return np.diff(self._indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of a node (read-only view)."""
        return self._indices[self._indptr[node]:self._indptr[node + 1]]

    def value_attributes(self, value_node: int) -> np.ndarray:
        """Attribute node ids containing the value (its ``A(v)``)."""
        if not self.is_value_node(value_node):
            raise GraphError(f"node {value_node} is not a value node")
        return self.neighbors(value_node)

    def attribute_values(self, attribute_node: int) -> np.ndarray:
        """Value node ids occurring in the attribute."""
        if not self.is_attribute_node(attribute_node):
            raise GraphError(f"node {attribute_node} is not an attribute node")
        return self.neighbors(attribute_node)

    def value_neighbors(self, value_node: int) -> np.ndarray:
        """The paper's ``N(v)``: values co-occurring with ``value_node``.

        Computed as the union of the value sets of the attributes that
        contain the value, minus the value itself.  Sorted array.
        """
        if not self.is_value_node(value_node):
            raise GraphError(f"node {value_node} is not a value node")
        return value_neighbors_csr(self._indptr, self._indices, value_node)

    def value_cardinality(self, value_node: int) -> int:
        """``|N(v)|`` — the paper's cardinality of a value node."""
        return int(self.value_neighbors(value_node).size)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def prune_values(self, min_degree: int = 2) -> "BipartiteGraph":
        """Drop value nodes appearing in fewer than ``min_degree`` attrs.

        The paper's preprocessing: "DomainNet pre-processes the input to
        remove data values that appear only once in the data lake", i.e.
        keep only homograph *candidates* (values in ≥ 2 attributes) as
        value nodes.  Attribute nodes always survive, even if emptied.
        """
        value_degrees = np.diff(self._indptr[: self.num_values + 1])
        keep = np.flatnonzero(value_degrees >= min_degree)
        return self.subgraph_from_values(keep)

    def subgraph_from_values(
        self, value_nodes: Sequence[int]
    ) -> "BipartiteGraph":
        """Induced subgraph on the given value nodes (all attributes kept)."""
        if not isinstance(value_nodes, np.ndarray):
            value_nodes = list(value_nodes)
        keep = np.unique(np.asarray(value_nodes, dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_values):
            bad = keep[0] if keep[0] < 0 else keep[-1]
            raise GraphError(f"node {int(bad)} is not a value node")
        names = [self._value_names[int(v)] for v in keep]
        # Every edge incident to a kept value, in one frontier expansion;
        # new value ids are positions in the sorted ``keep`` array.
        src, attrs = frontier_edges(keep, self._indptr, self._indices)
        edges = np.column_stack(
            [np.searchsorted(keep, src), attrs - self.num_values]
        )
        return BipartiteGraph(names, self._attribute_names, edges)

    def subgraph_from_attributes(
        self, attribute_nodes: Sequence[int]
    ) -> "BipartiteGraph":
        """Subgraph induced by attributes and every value inside them.

        This is the footnote-9 extraction procedure used for the Figure 9
        scalability sweep: pick attribute nodes, pull in all their value
        nodes.  Value nodes that end up isolated are dropped.
        """
        if not isinstance(attribute_nodes, np.ndarray):
            attribute_nodes = list(attribute_nodes)
        attrs = np.unique(np.asarray(attribute_nodes, dtype=np.int64))
        if attrs.size and not (
            self.num_values <= attrs[0] and attrs[-1] < self.num_nodes
        ):
            bad = attrs[0] if attrs[0] < self.num_values else attrs[-1]
            raise GraphError(f"node {int(bad)} is not an attribute node")
        src_attr, vals = frontier_edges(attrs, self._indptr, self._indices)
        values = np.unique(vals)
        value_names = [self._value_names[int(v)] for v in values]
        attr_names = [self.attribute_name(int(a)) for a in attrs]
        edges = np.column_stack(
            [np.searchsorted(values, vals), np.searchsorted(attrs, src_attr)]
        )
        return BipartiteGraph(value_names, attr_names, edges)

    # ------------------------------------------------------------------
    # Incremental splicing
    # ------------------------------------------------------------------
    def splice_rows(
        self, spec: SpliceSpec
    ) -> Tuple["BipartiteGraph", GraphDelta]:
        """Patch the CSR arrays into a new graph without a full rebuild.

        Applies a :class:`SpliceSpec` — vocabulary maps plus explicit
        edge inserts — in O(E + delta): the surviving adjacency entries
        are carried over by one vectorized remap (their sort order is
        preserved because the maps are monotonic), the inserted
        symmetric edges are sorted on their own, and the two sorted
        runs merge with two ``searchsorted`` calls, the same
        lexsort-order invariant the constructor establishes.  The
        receiver is never modified (its arrays stay frozen, so
        concurrent readers — and snapshot-mounted ``mmap`` views — are
        safe); copy-on-write happens only for the spliced arrays.

        Returns the new graph plus a :class:`GraphDelta` describing the
        touched node ids and edge counts.  Raises :class:`GraphError`
        on non-monotonic maps, out-of-range ids, or duplicate edge
        inserts.
        """
        n_val_old = self.num_values
        n_attr_old = self.num_attributes
        n_old = self.num_nodes
        n_val_new = len(spec.value_names)
        n_attr_new = len(spec.attribute_names)
        n_new = n_val_new + n_attr_new

        value_map = np.ascontiguousarray(spec.value_map, dtype=np.int64)
        attr_map = np.ascontiguousarray(spec.attribute_map, dtype=np.int64)
        if value_map.shape != (n_val_old,) or attr_map.shape != (n_attr_old,):
            raise GraphError("splice maps must cover the old vocabularies")
        if value_map.size and int(value_map.max()) >= n_val_new:
            raise GraphError("value_map points past the new vocabulary")
        if attr_map.size and int(attr_map.max()) >= n_attr_new:
            raise GraphError("attribute_map points past the new vocabulary")
        node_map = np.concatenate([
            value_map,
            np.where(attr_map >= 0, attr_map + n_val_new, -1),
        ])

        # Carry every old adjacency entry whose endpoints both survive.
        old_src = np.repeat(
            np.arange(n_old, dtype=np.int64), np.diff(self._indptr)
        )
        mapped_src = node_map[old_src]
        mapped_dst = node_map[self._indices]
        carry = (mapped_src >= 0) & (mapped_dst >= 0)
        carried_src = mapped_src[carry]
        carried_dst = mapped_dst[carry]
        carried_key = carried_src * n_new + carried_dst
        if carried_key.size > 1 and bool(np.any(np.diff(carried_key) <= 0)):
            raise GraphError(
                "splice maps must be monotonic over surviving ids"
            )

        new_edges = np.asarray(spec.new_edges, dtype=np.int64)
        if new_edges.size == 0:
            new_edges = new_edges.reshape(0, 2)
        if new_edges.ndim != 2 or new_edges.shape[1] != 2:
            raise GraphError(
                "new_edges must be (value_id, attribute_id) pairs"
            )
        if new_edges.size:
            if new_edges[:, 0].min() < 0 or new_edges[:, 0].max() >= n_val_new:
                raise GraphError("inserted value id out of range")
            if new_edges[:, 1].min() < 0 or new_edges[:, 1].max() >= n_attr_new:
                raise GraphError("inserted attribute id out of range")

        # Symmetrize and sort the inserted edges on the same
        # (src, dst) key the carried entries are already sorted by.
        ins_v = new_edges[:, 0]
        ins_a = new_edges[:, 1] + n_val_new
        ins_src = np.concatenate([ins_v, ins_a])
        ins_dst = np.concatenate([ins_a, ins_v])
        ins_key = ins_src * n_new + ins_dst
        order = np.argsort(ins_key, kind="stable")
        ins_key = ins_key[order]
        ins_src = ins_src[order]
        ins_dst = ins_dst[order]
        if ins_key.size > 1 and bool(np.any(np.diff(ins_key) == 0)):
            raise GraphError("duplicate edge insert")
        if ins_key.size and carried_key.size:
            pos = np.searchsorted(carried_key, ins_key)
            pos_clipped = np.minimum(pos, carried_key.size - 1)
            if bool(np.any(carried_key[pos_clipped] == ins_key)):
                raise GraphError("inserted edge already present")

        # Two-way merge of the sorted runs: each element's final slot
        # is its own rank plus the count of smaller elements in the
        # other run — no global sort.
        total = carried_key.size + ins_key.size
        merged_dst = np.empty(total, dtype=np.int64)
        merged_dst[
            np.arange(carried_key.size)
            + np.searchsorted(ins_key, carried_key)
        ] = carried_dst
        merged_dst[
            np.arange(ins_key.size)
            + np.searchsorted(carried_key, ins_key)
        ] = ins_dst
        counts = (
            np.bincount(carried_src, minlength=n_new)
            + np.bincount(ins_src, minlength=n_new)
        )
        new_indptr = np.zeros(n_new + 1, dtype=np.int64)
        new_indptr[1:] = np.cumsum(counts)

        graph = BipartiteGraph.from_csr(
            spec.value_names,
            spec.attribute_names,
            new_indptr,
            np.ascontiguousarray(merged_dst),
        )

        survivors = int(np.count_nonzero(value_map >= 0))
        frontier_old = np.unique(old_src[~carry])
        frontier_new = np.unique(ins_src)
        delta = GraphDelta(
            node_map=node_map,
            frontier_old=frontier_old,
            frontier_new=frontier_new,
            num_values_old=n_val_old,
            num_values_new=n_val_new,
            num_nodes_new=n_new,
            values_added=n_val_new - survivors,
            values_removed=n_val_old - survivors,
            edges_added=int(new_edges.shape[0]),
            edges_removed=self.num_edges
            - int(carried_key.size) // 2,
        )
        return graph, delta

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :mod:`networkx` graph for cross-checking in tests.

        Value nodes become ``("val", name)``; attribute nodes become
        ``("attr", name)``.
        """
        import networkx as nx

        graph = nx.Graph()
        for v, name in enumerate(self._value_names):
            graph.add_node(("val", name))
        for name in self._attribute_names:
            graph.add_node(("attr", name))
        for v in range(self.num_values):
            for a in self.value_attributes(v):
                graph.add_edge(
                    ("val", self._value_names[v]),
                    ("attr", self.attribute_name(int(a))),
                )
        return graph

    def connected_components(self) -> List[np.ndarray]:
        """Connected components as arrays of node ids (largest first)."""
        n = self.num_nodes
        labels = np.full(n, -1, dtype=np.int64)
        current = 0
        for start in range(n):
            if labels[start] >= 0:
                continue
            frontier = np.array([start], dtype=np.int64)
            labels[start] = current
            while frontier.size:
                _src, neighbors = frontier_edges(
                    frontier, self._indptr, self._indices
                )
                if neighbors.size == 0:
                    break
                candidates = np.unique(neighbors)
                fresh = candidates[labels[candidates] < 0]
                labels[fresh] = current
                frontier = fresh
            current += 1
        components = [
            np.flatnonzero(labels == c) for c in range(current)
        ]
        components.sort(key=len, reverse=True)
        return components

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(values={self.num_values}, "
            f"attributes={self.num_attributes}, edges={self.num_edges})"
        )
