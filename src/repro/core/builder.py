"""Build the DomainNet bipartite graph from a data lake.

Step 1 of the pipeline in Figure 4.  The builder makes one pass over
every table, normalizes cell values, and emits a
:class:`~repro.core.graph.BipartiteGraph` with one node per distinct
normalized value and one per attribute.

Pruning: homograph candidates must appear in at least two attributes, so
the detector usually asks for ``min_value_degree=2``, which reproduces
the paper's preprocessing ("about 3% fewer nodes in the TUS benchmark and
30% fewer in SB").  Building with ``min_value_degree=1`` keeps every
value node — that is the graph used for the running-example scores in
Example 3.6.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..datalake.lake import DataLake
from .graph import BipartiteGraph
from .normalize import normalize_column, normalize_value


def build_graph(
    lake: DataLake,
    min_value_degree: int = 1,
    min_occurrences: int = 1,
) -> BipartiteGraph:
    """Construct the bipartite value–attribute graph of a lake.

    Parameters
    ----------
    lake:
        The data lake to represent.
    min_value_degree:
        Keep only values appearing in at least this many *attributes*.
        ``2`` keeps strict homograph candidates only.
    min_occurrences:
        Keep only values with at least this many cell occurrences
        across the whole lake (duplicates within a column count).
        ``2`` is the paper's preprocessing — "remove data values that
        appear only once in the data lake" — which keeps values that
        repeat inside a single column as graph nodes even though they
        cannot themselves be homographs.
    """
    if min_value_degree < 1:
        raise ValueError("min_value_degree must be >= 1")
    if min_occurrences < 1:
        raise ValueError("min_occurrences must be >= 1")

    value_ids: Dict[str, int] = {}
    value_names: List[str] = []
    occurrences: List[int] = []
    attribute_names: List[str] = []
    edges: List[Tuple[int, int]] = []

    for column in lake.iter_attributes():
        attr_id = len(attribute_names)
        attribute_names.append(column.qualified_name)
        counts = _occurrence_counts(column.values)
        for value, count in counts.items():
            vid = value_ids.get(value)
            if vid is None:
                vid = len(value_names)
                value_ids[value] = vid
                value_names.append(value)
                occurrences.append(0)
            occurrences[vid] += count
            edges.append((vid, attr_id))

    degree = [0] * len(value_names)
    for vid, _ in edges:
        degree[vid] += 1

    keep = [
        v
        for v in range(len(value_names))
        if degree[v] >= min_value_degree and occurrences[v] >= min_occurrences
    ]
    if len(keep) < len(value_names):
        remap = {old: new for new, old in enumerate(keep)}
        value_names = [value_names[v] for v in keep]
        edges = [
            (remap[vid], attr_id) for vid, attr_id in edges if vid in remap
        ]

    return BipartiteGraph(value_names, attribute_names, edges)


def _occurrence_counts(values) -> Dict[str, int]:
    """Occurrence count per normalized non-empty value of one column."""
    counts: Dict[str, int] = {}
    for raw in values:
        value = normalize_value(raw)
        if value:
            counts[value] = counts.get(value, 0) + 1
    return counts


def build_graph_from_columns(
    columns: Dict[str, List[str]],
    min_value_degree: int = 1,
) -> BipartiteGraph:
    """Convenience builder from a plain ``{attribute: values}`` mapping.

    Handy in tests and small examples where constructing full
    :class:`~repro.datalake.table.Table` objects is noise.  Attribute
    names are used verbatim as qualified names.
    """
    value_ids: Dict[str, int] = {}
    value_names: List[str] = []
    attribute_names: List[str] = []
    edges: List[Tuple[int, int]] = []

    for attr_name, raw_values in columns.items():
        attr_id = len(attribute_names)
        attribute_names.append(attr_name)
        for value in normalize_column(raw_values):
            vid = value_ids.get(value)
            if vid is None:
                vid = len(value_names)
                value_ids[value] = vid
                value_names.append(value)
            edges.append((vid, attr_id))

    graph = BipartiteGraph(value_names, attribute_names, edges)
    if min_value_degree > 1:
        graph = graph.prune_values(min_value_degree)
    return graph
