"""Community detection on the lake graph (paper §6 future work).

The paper motivates DomainNet through community structure — "a
community represents a meaning for a value" — and proposes
non-parameterized community detection as the route to discovering the
meanings themselves.  This module implements asynchronous **label
propagation** (Raghavan et al. 2007) on the bipartite graph: it needs
no community count, runs in near-linear time, and returns the latent
semantic types as groups of value and attribute nodes.

Two consumers:

* :func:`communities` — raw node partition;
* :func:`value_communities` — per-value community sets restricted to
  value nodes, which double as discovered domains and let callers flag
  values whose *attributes* disagree about their community.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from .graph import BipartiteGraph


def communities(
    graph: BipartiteGraph,
    max_iterations: int = 50,
    seed: Optional[int] = None,
) -> List[Set[int]]:
    """Partition all nodes by asynchronous label propagation.

    Every node starts in its own community; nodes repeatedly adopt the
    most frequent label among their neighbors (ties broken by smallest
    label for determinism given the seed-shuffled visit order).  Stops
    at a fixed point or after ``max_iterations`` sweeps.

    Returns communities as sets of node ids, largest first.  Isolated
    nodes form singleton communities.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    labels = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    order = np.arange(n)

    for _ in range(max_iterations):
        rng.shuffle(order)
        changed = 0
        for node in order:
            neighbors = graph.neighbors(int(node))
            if neighbors.size == 0:
                continue
            neighbor_labels = labels[neighbors]
            values, counts = np.unique(neighbor_labels, return_counts=True)
            best = values[counts == counts.max()].min()
            if labels[node] != best:
                labels[node] = best
                changed += 1
        if changed == 0:
            break

    groups: Dict[int, Set[int]] = {}
    for node in range(n):
        groups.setdefault(int(labels[node]), set()).add(node)
    return sorted(groups.values(), key=len, reverse=True)


def value_communities(
    graph: BipartiteGraph,
    max_iterations: int = 50,
    seed: Optional[int] = None,
) -> List[Set[str]]:
    """Discovered domains: communities restricted to value names.

    Communities that contain no value node are dropped.
    """
    out = []
    for group in communities(graph, max_iterations=max_iterations,
                             seed=seed):
        names = {
            graph.value_name(node)
            for node in group
            if graph.is_value_node(node)
        }
        if names:
            out.append(names)
    return out


def attribute_community_map(
    graph: BipartiteGraph,
    max_iterations: int = 50,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Attribute qualified name -> community index.

    Useful for spotting homographs a posteriori: a value whose
    attributes land in different communities spans meanings.
    """
    result: Dict[str, int] = {}
    for i, group in enumerate(
        communities(graph, max_iterations=max_iterations, seed=seed)
    ):
        for node in group:
            if graph.is_attribute_node(node):
                result[graph.attribute_name(node)] = i
    return result


def cross_community_values(
    graph: BipartiteGraph,
    max_iterations: int = 50,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Values whose attributes span several communities, with the count.

    This is the community-detection route to homograph detection the
    paper sketches in §6: a value bridging k communities has (at least)
    k candidate meanings.  Only values spanning >= 2 are returned.
    """
    attr_map = attribute_community_map(
        graph, max_iterations=max_iterations, seed=seed
    )
    out: Dict[str, int] = {}
    for v in range(graph.num_values):
        attrs = graph.value_attributes(v)
        if attrs.size < 2:
            continue
        spanned = {
            attr_map[graph.attribute_name(int(a))] for a in attrs
        }
        if len(spanned) >= 2:
            out[graph.value_name(v)] = len(spanned)
    return out
