"""Core DomainNet: bipartite graph, centrality measures, detection."""

from .approx import riondato_kornaropoulos_bc, sample_size_bound
from .betweenness import betweenness_score_map, betweenness_scores
from .builder import build_graph, build_graph_from_columns
from .confusables import SkeletonIndex, skeleton
from .communities import (
    MeaningEstimate,
    estimate_all_meanings,
    estimate_meanings,
)
from .detector import DetectionResult, DomainNet
from .errors import HomographClassification, classify_homographs
from .graph import BipartiteGraph, GraphError
from .label_propagation import (
    attribute_community_map,
    communities,
    cross_community_values,
    value_communities,
)
from .lcc import lcc_score_map, lcc_scores
from .normalize import normalize_column, normalize_value
from .ranking import (
    HomographRanking,
    RankedValue,
    RankingPage,
    format_ranking,
    rank_by_betweenness,
    rank_by_lcc,
)

__all__ = [
    "BipartiteGraph",
    "DetectionResult",
    "DomainNet",
    "GraphError",
    "HomographClassification",
    "HomographRanking",
    "MeaningEstimate",
    "RankedValue",
    "RankingPage",
    "SkeletonIndex",
    "attribute_community_map",
    "betweenness_score_map",
    "betweenness_scores",
    "build_graph",
    "build_graph_from_columns",
    "classify_homographs",
    "communities",
    "cross_community_values",
    "estimate_all_meanings",
    "estimate_meanings",
    "format_ranking",
    "lcc_score_map",
    "lcc_scores",
    "normalize_column",
    "normalize_value",
    "rank_by_betweenness",
    "rank_by_lcc",
    "riondato_kornaropoulos_bc",
    "sample_size_bound",
    "skeleton",
    "value_communities",
]
