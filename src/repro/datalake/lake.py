"""The :class:`DataLake` container.

A data lake is nothing more than a named collection of tables — crucially
*without* any schema linking them.  All relationships DomainNet exploits
are discovered from value co-occurrence, so the container's job is to
provide uniform iteration over attributes and cheap bookkeeping (adding
and removing tables, looking up attributes by qualified name).

The lake is mutable on purpose: the paper points out that updates can
turn a homograph into an unambiguous value and vice versa, and the
incremental example (`examples/data_lake_scan.py`) exercises exactly
that by re-running detection after a table is dropped.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .table import Column, Table


class LakeError(ValueError):
    """Raised on invalid lake operations (duplicate or missing tables)."""


class DataLake:
    """An ordered collection of uniquely named tables."""

    def __init__(self, tables: Optional[Iterable[Table]] = None) -> None:
        self._tables: Dict[str, Table] = {}
        for table in tables or []:
            self.add_table(table)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Add a table; its name must not already be present."""
        if table.name in self._tables:
            raise LakeError(f"duplicate table name {table.name!r}")
        self._tables[table.name] = table

    def remove_table(self, name: str) -> Table:
        """Remove and return the named table."""
        try:
            return self._tables.pop(name)
        except KeyError:
            raise LakeError(f"no table named {name!r}") from None

    def replace_table(self, table: Table) -> None:
        """Replace the same-named table (used by homograph injection)."""
        if table.name not in self._tables:
            raise LakeError(f"no table named {table.name!r}")
        self._tables[table.name] = table

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise LakeError(f"no table named {name!r}") from None

    def iter_attributes(self) -> Iterator[Column]:
        """Yield every attribute (column) of every table, in lake order."""
        for table in self._tables.values():
            yield from table.iter_columns()

    def attribute(self, qualified_name: str) -> Column:
        """Look up an attribute by its ``table.column`` qualified name.

        Table names may themselves contain dots, so the split point is
        searched from the right until a known table name matches.
        """
        dot = len(qualified_name)
        while True:
            dot = qualified_name.rfind(".", 0, dot)
            if dot < 0:
                raise LakeError(f"no attribute {qualified_name!r}")
            table_name = qualified_name[:dot]
            if table_name in self._tables:
                return self._tables[table_name].column(qualified_name[dot + 1:])

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_attributes(self) -> int:
        return sum(table.num_columns for table in self._tables.values())

    @property
    def num_cells(self) -> int:
        return sum(
            table.num_rows * table.num_columns
            for table in self._tables.values()
        )

    def copy(self) -> "DataLake":
        """Deep-enough copy: tables are copied, cells are shared strings."""
        clone = DataLake()
        for table in self._tables.values():
            clone.add_table(
                Table(
                    name=table.name,
                    columns=list(table.columns),
                    rows=[list(row) for row in table.rows],
                )
            )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataLake(tables={len(self._tables)}, "
            f"attributes={self.num_attributes})"
        )
