"""CSV ingestion and export for data lakes.

Open-data lakes are overwhelmingly CSV files, so this is the primary I/O
path: a directory of ``*.csv`` files becomes a :class:`~repro.datalake
.lake.DataLake` with one table per file.  Everything stays text — no type
coercion happens at ingestion, matching the paper's treatment of every
cell as a string.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Iterable, List, Optional, Union

from .lake import DataLake
from .table import Table, TableError

PathLike = Union[str, os.PathLike]


def read_table(
    path: PathLike,
    name: Optional[str] = None,
    delimiter: str = ",",
    encoding: str = "utf-8",
) -> Table:
    """Read one CSV file into a :class:`Table`.

    The first row is the header.  Files with no data rows are legal (a
    table may be empty); files with no header raise :class:`TableError`.
    """
    path = Path(path)
    table_name = name if name is not None else path.stem
    with open(path, newline="", encoding=encoding) as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise TableError(f"{path} is empty: no header row") from None
        rows = [row for row in reader]
    return Table(name=table_name, columns=header, rows=rows)


def write_table(
    table: Table,
    path: PathLike,
    delimiter: str = ",",
    encoding: str = "utf-8",
) -> None:
    """Write a table as a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding=encoding) as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.columns)
        writer.writerows(table.rows)


def load_lake(
    directory: PathLike,
    pattern: str = "*.csv",
    delimiter: str = ",",
    encoding: str = "utf-8",
) -> DataLake:
    """Load every matching CSV file under ``directory`` into a lake.

    Files are loaded in sorted order so lakes are reproducible across
    filesystems.  Sub-directories are searched recursively; table names
    use the path relative to ``directory`` (without extension) so that
    same-named files in different folders do not collide.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a directory")
    lake = DataLake()
    for path in sorted(directory.rglob(pattern)):
        relative = path.relative_to(directory).with_suffix("")
        table_name = "/".join(relative.parts)
        lake.add_table(
            read_table(
                path, name=table_name, delimiter=delimiter, encoding=encoding
            )
        )
    return lake


def dump_lake(
    lake: DataLake,
    directory: PathLike,
    delimiter: str = ",",
    encoding: str = "utf-8",
) -> List[Path]:
    """Write every table of the lake as ``<directory>/<table>.csv``.

    Returns the list of written paths.  Table names containing ``/`` are
    expanded into sub-directories, the inverse of :func:`load_lake`.
    """
    directory = Path(directory)
    written = []
    for table in lake:
        path = directory / f"{table.name}.csv"
        write_table(table, path, delimiter=delimiter, encoding=encoding)
        written.append(path)
    return written
