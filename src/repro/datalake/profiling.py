"""Attribute-level profiling.

These profiles feed two consumers:

* the catalog statistics behind Table 1 of the paper (attribute counts,
  vocabulary size, cardinality ranges), and
* the benchmark injection machinery of §4.3, which selects replacement
  values by the cardinality of the attributes they live in.

Cardinality follows the paper's definition throughout: the cardinality
of a value node ``v`` is ``|N(v)|``, the number of *unique data values it
co-occurs with* — not the number of occurrences.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Set

from ..core.normalize import normalize_value
from .lake import DataLake


@dataclass(frozen=True)
class AttributeProfile:
    """Summary statistics for one attribute (column)."""

    qualified_name: str
    table_name: str
    column_name: str
    num_rows: int
    num_distinct: int
    num_empty: int
    kind: str  # "text", "numeric", or "empty"

    @property
    def fill_ratio(self) -> float:
        """Fraction of cells that are non-empty."""
        if self.num_rows == 0:
            return 0.0
        return 1.0 - self.num_empty / self.num_rows


def profile_attributes(lake: DataLake) -> List[AttributeProfile]:
    """Profile every attribute in the lake."""
    from .table import infer_column_kind

    profiles = []
    for column in lake.iter_attributes():
        values = column.values
        num_empty = sum(1 for v in values if not v)
        profiles.append(
            AttributeProfile(
                qualified_name=column.qualified_name,
                table_name=column.table_name,
                column_name=column.name,
                num_rows=len(values),
                num_distinct=column.distinct_count(),
                num_empty=num_empty,
                kind=infer_column_kind(values),
            )
        )
    return profiles


def value_attribute_index(
    lake: DataLake, normalize: bool = True
) -> Dict[str, Set[str]]:
    """Map each (normalized) value to the set of attributes containing it.

    This is the incidence structure of Figure 2 in sparse form, and the
    input from which both the bipartite graph and the ground-truth
    labelers are derived.
    """
    index: Dict[str, Set[str]] = defaultdict(set)
    for column in lake.iter_attributes():
        qname = column.qualified_name
        for raw in set(column.values):
            value = normalize_value(raw) if normalize else raw
            if value:
                index[value].add(qname)
    return dict(index)


def value_cardinalities(lake: DataLake) -> Dict[str, int]:
    """Cardinality ``|N(v)|`` for every normalized value in the lake.

    ``N(v)`` is the union of the distinct-value sets of the attributes
    containing ``v``, minus ``v`` itself (paper §3.2).
    """
    attr_values: Dict[str, Set[str]] = {}
    for column in lake.iter_attributes():
        normalized = {
            normalize_value(v) for v in set(column.values)
        }
        normalized.discard("")
        attr_values[column.qualified_name] = normalized

    value_attrs: Dict[str, List[str]] = defaultdict(list)
    for qname, values in attr_values.items():
        for value in values:
            value_attrs[value].append(qname)

    cardinalities = {}
    for value, qnames in value_attrs.items():
        neighbors: Set[str] = set()
        for qname in qnames:
            neighbors |= attr_values[qname]
        neighbors.discard(value)
        cardinalities[value] = len(neighbors)
    return cardinalities


def cardinality_range(
    cardinalities: Mapping[str, int], values: Set[str]
) -> str:
    """Format a ``lo-hi`` range over the subset of values, as in Table 1."""
    selected = [cardinalities[v] for v in values if v in cardinalities]
    if not selected:
        return "N/A"
    lo, hi = min(selected), max(selected)
    return f"{lo}-{hi}" if lo != hi else str(lo)
