"""Data-lake substrate: tables, lakes, CSV I/O, profiling, and catalog.

This package is deliberately schema-free: a lake is a bag of tables whose
cells are strings, and every relationship DomainNet uses is discovered
from value co-occurrence rather than declared metadata.
"""

from .catalog import LakeStatistics, compute_statistics, format_statistics_table
from .csv_io import dump_lake, load_lake, read_table, write_table
from .lake import DataLake, LakeError
from .profiling import (
    AttributeProfile,
    cardinality_range,
    profile_attributes,
    value_attribute_index,
    value_cardinalities,
)
from .table import Column, Table, TableError, infer_column_kind

__all__ = [
    "AttributeProfile",
    "Column",
    "DataLake",
    "LakeError",
    "LakeStatistics",
    "Table",
    "TableError",
    "cardinality_range",
    "compute_statistics",
    "dump_lake",
    "format_statistics_table",
    "infer_column_kind",
    "load_lake",
    "profile_attributes",
    "read_table",
    "value_attribute_index",
    "value_cardinalities",
    "write_table",
]
