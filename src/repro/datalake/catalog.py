"""Lake-level catalog: the statistics behind Table 1 of the paper.

For each dataset the paper reports: number of tables, total attributes,
number of unique values, number of homographs, the cardinality range of
the homographs, and the range of the number of distinct meanings.  The
:class:`LakeStatistics` dataclass captures exactly those columns, with
``None`` standing in for the paper's "N/A" entries (datasets without
ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set

from .lake import DataLake
from .profiling import value_attribute_index, value_cardinalities


@dataclass(frozen=True)
class LakeStatistics:
    """One row of Table 1."""

    name: str
    num_tables: int
    num_attributes: int
    num_values: int
    num_homographs: Optional[int] = None
    homograph_cardinality_min: Optional[int] = None
    homograph_cardinality_max: Optional[int] = None
    meanings_min: Optional[int] = None
    meanings_max: Optional[int] = None

    def as_row(self) -> Dict[str, str]:
        """Render as the string cells used in the Table 1 bench output."""

        def fmt_range(lo: Optional[int], hi: Optional[int]) -> str:
            if lo is None or hi is None:
                return "N/A"
            return f"{lo}-{hi}" if lo != hi else str(lo)

        return {
            "dataset": self.name,
            "#Tables": str(self.num_tables),
            "#Attr": str(self.num_attributes),
            "#Val": str(self.num_values),
            "#Hom": "N/A" if self.num_homographs is None
                    else str(self.num_homographs),
            "Card(H)": fmt_range(
                self.homograph_cardinality_min, self.homograph_cardinality_max
            ),
            "#M": fmt_range(self.meanings_min, self.meanings_max),
        }


def compute_statistics(
    lake: DataLake,
    name: str,
    homographs: Optional[Set[str]] = None,
    meanings: Optional[Mapping[str, int]] = None,
) -> LakeStatistics:
    """Compute the Table 1 row for a lake.

    Parameters
    ----------
    lake:
        The data lake.
    name:
        Dataset label for the row.
    homographs:
        Ground-truth homograph values (normalized), when known.
    meanings:
        Ground-truth number of meanings per homograph, when known.
    """
    index = value_attribute_index(lake)
    num_values = len(index)

    if homographs is None:
        return LakeStatistics(
            name=name,
            num_tables=len(lake),
            num_attributes=lake.num_attributes,
            num_values=num_values,
        )

    cardinalities = value_cardinalities(lake)
    known = [v for v in homographs if v in cardinalities]
    card_min = min((cardinalities[v] for v in known), default=None)
    card_max = max((cardinalities[v] for v in known), default=None)

    meanings_min = meanings_max = None
    if meanings:
        counts = [meanings[v] for v in homographs if v in meanings]
        if counts:
            meanings_min, meanings_max = min(counts), max(counts)

    return LakeStatistics(
        name=name,
        num_tables=len(lake),
        num_attributes=lake.num_attributes,
        num_values=num_values,
        num_homographs=len(homographs),
        homograph_cardinality_min=card_min,
        homograph_cardinality_max=card_max,
        meanings_min=meanings_min,
        meanings_max=meanings_max,
    )


def format_statistics_table(rows: Sequence[LakeStatistics]) -> str:
    """Render rows as an aligned text table (the Table 1 layout)."""
    headers = ["dataset", "#Tables", "#Attr", "#Val", "#Hom", "Card(H)", "#M"]
    grid = [headers] + [
        [row.as_row()[h] for h in headers] for row in rows
    ]
    widths = [
        max(len(grid[r][c]) for r in range(len(grid)))
        for c in range(len(headers))
    ]
    lines = []
    for r, cells in enumerate(grid):
        line = "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(cells))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
