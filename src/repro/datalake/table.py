"""Table abstraction for data lakes.

A :class:`Table` is the unit of ingestion in a data lake: a named grid of
string cells organized into named columns.  Data lakes make almost no
promises about their tables — attribute names may be missing, duplicated,
or meaningless ("C1", "column 2"), columns may be ragged, and cell values
are raw strings.  The abstractions here embrace that: every cell is kept
as text and nothing is inferred from the header beyond a display name.

Column identity matters more than column naming for DomainNet: the
bipartite graph has one node per *attribute*, i.e. per (table, column)
pair, so :class:`Column` carries a fully qualified ``qualified_name`` that
is unique within a lake even when header names collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class TableError(ValueError):
    """Raised when a table is structurally invalid."""


@dataclass(frozen=True)
class Column:
    """A single attribute (column) of a table.

    Attributes
    ----------
    table_name:
        Name of the owning table.
    name:
        The column's header as found in the source, possibly ambiguous.
    values:
        Raw cell values, in row order.  Empty cells are empty strings.
    """

    table_name: str
    name: str
    values: Tuple[str, ...]

    @property
    def qualified_name(self) -> str:
        """Lake-unique attribute identifier, ``table.column``."""
        return f"{self.table_name}.{self.name}"

    def distinct_values(self) -> List[str]:
        """Distinct non-empty raw values, in first-appearance order."""
        seen = set()
        out = []
        for value in self.values:
            if value and value not in seen:
                seen.add(value)
                out.append(value)
        return out

    def distinct_count(self) -> int:
        """Number of distinct non-empty raw values."""
        return len({value for value in self.values if value})

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class Table:
    """A named table of string cells.

    Parameters
    ----------
    name:
        Table name, unique within a lake.
    columns:
        Header names, one per column.  Duplicate headers are disambiguated
        on construction by suffixing ``#2``, ``#3``, … so that qualified
        attribute names stay unique.
    rows:
        Cell grid, one sequence per row.  Rows shorter than the header are
        padded with empty strings; longer rows raise :class:`TableError`.
    """

    name: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise TableError("table name must be non-empty")
        if not self.columns:
            raise TableError(f"table {self.name!r} has no columns")
        self.columns = _dedupe_headers(self.columns)
        width = len(self.columns)
        fixed_rows: List[List[str]] = []
        for i, row in enumerate(self.rows):
            cells = [str(cell) if cell is not None else "" for cell in row]
            if len(cells) > width:
                raise TableError(
                    f"table {self.name!r} row {i} has {len(cells)} cells "
                    f"but only {width} columns"
                )
            if len(cells) < width:
                cells.extend([""] * (width - len(cells)))
            fixed_rows.append(cells)
        self.rows = fixed_rows

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        """Return the column with the given header name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}"
            ) from None
        return self.column_at(idx)

    def column_at(self, index: int) -> Column:
        """Return the column at the given position."""
        if not 0 <= index < len(self.columns):
            raise IndexError(
                f"column index {index} out of range for table {self.name!r}"
            )
        values = tuple(row[index] for row in self.rows)
        return Column(self.name, self.columns[index], values)

    def iter_columns(self) -> Iterator[Column]:
        """Yield every column of the table."""
        for index in range(len(self.columns)):
            yield self.column_at(index)

    def append_row(self, row: Sequence[str]) -> None:
        """Append a row, padding short rows with empty cells."""
        cells = [str(cell) if cell is not None else "" for cell in row]
        if len(cells) > len(self.columns):
            raise TableError(
                f"row has {len(cells)} cells but table {self.name!r} "
                f"has {len(self.columns)} columns"
            )
        cells.extend([""] * (len(self.columns) - len(cells)))
        self.rows.append(cells)

    @classmethod
    def from_columns(
        cls, name: str, columns: Dict[str, Sequence[str]]
    ) -> "Table":
        """Build a table from a mapping of header name to cell values.

        Columns may have different lengths; shorter ones are padded with
        empty strings so the table stays rectangular.
        """
        if not columns:
            raise TableError(f"table {name!r} has no columns")
        headers = list(columns)
        height = max(len(vals) for vals in columns.values())
        rows = []
        for r in range(height):
            row = []
            for header in headers:
                vals = columns[header]
                row.append(str(vals[r]) if r < len(vals) else "")
            rows.append(row)
        return cls(name=name, columns=headers, rows=rows)

    def replace_values(self, mapping: Dict[str, str]) -> "Table":
        """Return a copy with every cell equal to a mapping key replaced.

        Used by the benchmark injection machinery: replacing a value
        everywhere it occurs in selected tables is how artificial
        homographs are introduced (paper §4.3).
        """
        new_rows = [
            [mapping.get(cell, cell) for cell in row] for row in self.rows
        ]
        return Table(name=self.name, columns=list(self.columns), rows=new_rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table(name={self.name!r}, columns={len(self.columns)}, "
            f"rows={len(self.rows)})"
        )


def _dedupe_headers(headers: Iterable[str]) -> List[str]:
    """Make header names unique by suffixing ``#k`` to repeats.

    Missing headers (empty strings) are renamed ``col_<i>`` first, since a
    data lake column must have *some* attribute identity even when the
    source file had none.
    """
    seen: Dict[str, int] = {}
    result: List[str] = []
    for i, raw in enumerate(headers):
        header = raw.strip() if raw and raw.strip() else f"col_{i}"
        count = seen.get(header, 0)
        seen[header] = count + 1
        result.append(header if count == 0 else f"{header}#{count + 1}")
    return result


def infer_column_kind(values: Sequence[str], sample_limit: int = 1000) -> str:
    """Classify a column as ``"numeric"``, ``"text"``, or ``"empty"``.

    A column is numeric when at least 80% of its non-empty cells parse as
    numbers.  D4 (and hence the baseline comparison in §5.1) only operates
    on text columns, so the lake needs a cheap, deterministic kind test.
    """
    non_empty = [v for v in values if v][:sample_limit]
    if not non_empty:
        return "empty"
    numeric = sum(1 for v in non_empty if _is_number(v))
    return "numeric" if numeric >= 0.8 * len(non_empty) else "text"


def _is_number(text: str) -> bool:
    try:
        float(text.replace(",", ""))
    except ValueError:
        return False
    return True
