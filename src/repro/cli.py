"""Command-line interface: scan CSV lakes for homographs.

Installed as the ``domainnet`` console script::

    domainnet scan path/to/csvs --top 25
    domainnet scan path/to/csvs --measure lcc
    domainnet scan path/to/csvs --json > result.json
    domainnet scan path/to/csvs --meanings --errors
    domainnet scan path/to/csvs --no-prune
    domainnet scan path/to/csvs --jobs 4
    domainnet scan path/to/csvs --jobs 4 --keep-pool
    domainnet scan path/to/csvs --jobs 4 --serve-pool betweenness,lcc
    domainnet scan path/to/csvs --measure skeleton_betweenness
    domainnet stats path/to/csvs
    domainnet generate sb out/dir
    domainnet generate tus out/dir --seed 7
    domainnet forge tus out/dir --forgeries 10 --styles greek,leet
    domainnet snapshot build path/to/csvs -o snap/ --warm lcc
    domainnet snapshot info snap/
    domainnet serve --snapshot snap/ --save-on-exit
    domainnet serve --snapshot snap/ --record-oplog
    domainnet cluster snap/ --replicas 3 --port 8080

``scan`` builds a :class:`repro.api.HomographIndex` over the lake and
runs the full Figure-4 pipeline (graph construction, sampled
betweenness by default, ranking).  ``--json`` emits the machine-readable
``DetectResponse`` payload instead of the human listing; feed it back
with ``repro.DetectResponse.from_json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import HomographIndex, available_measures
from .datalake.catalog import compute_statistics, format_statistics_table
from .datalake.csv_io import dump_lake, load_lake
from .perf import BACKEND_NAMES, ExecutionConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="domainnet",
        description="Homograph detection for data lakes (DomainNet).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    scan = commands.add_parser(
        "scan", help="rank likely homographs in a directory of CSV files"
    )
    scan.add_argument("directory", help="directory containing *.csv tables")
    scan.add_argument("--top", type=int, default=25,
                      help="number of candidates to print (default 25)")
    scan.add_argument("--measure", choices=available_measures(),
                      default="betweenness")
    scan.add_argument("--sample", type=int, default=None,
                      help="BC source samples (default: exact for small "
                           "graphs, 1%% of nodes for large ones)")
    scan.add_argument("--seed", type=int, default=0)
    scan.add_argument("--json", action="store_true",
                      help="emit the top candidates as a DetectResponse "
                           "JSON payload instead of the human listing")
    scan.add_argument("--no-prune", action="store_true",
                      help="keep values that occur only once in the lake "
                           "(disables the paper's candidate pruning)")
    scan.add_argument("--meanings", action="store_true",
                      help="estimate the number of meanings per candidate")
    scan.add_argument("--errors", action="store_true",
                      help="flag homographs that look like data errors")
    scan.add_argument("--jobs", type=int, default=None,
                      help="worker processes for scoring (default: serial; "
                           ">1 fans Brandes sources / LCC chunks across "
                           "cores via shared memory)")
    scan.add_argument("--backend", choices=BACKEND_NAMES, default="auto",
                      help="execution backend (default auto: process when "
                           "--jobs > 1, serial otherwise)")
    scan.add_argument("--chunk-size", type=int, default=None,
                      help="work items per parallel task (default: derived "
                           "from the job count)")
    scan.add_argument("--keep-pool", action="store_true",
                      help="keep one persistent worker pool (and the "
                           "shared-memory graph export) warm across every "
                           "scoring call of this scan; implies a process "
                           "backend when --jobs/--backend leave it unset")
    scan.add_argument("--serve-pool", metavar="MEASURES", default=None,
                      help="comma-separated measures (e.g. "
                           "'betweenness,lcc') scored as one batch on the "
                           "shared pool via detect_many; implies "
                           "--keep-pool and overrides --measure")

    serve = commands.add_parser(
        "serve",
        help="serve one or more CSV lakes over HTTP "
             "(detect / ranking / tables / async jobs)",
    )
    serve.add_argument("directories", nargs="*", metavar="DIR",
                       help="directories of *.csv tables; each mounts as "
                            "a lake named after its basename (first one "
                            "is the default lake)")
    serve.add_argument("--lake", action="append", default=None,
                       metavar="NAME=DIR",
                       help="mount DIR as the lake NAME (repeatable; "
                            "combines with positional directories)")
    serve.add_argument("--snapshot", action="append", default=None,
                       metavar="PATH",
                       help="mount a snapshot directory written by "
                            "'domainnet snapshot build' (repeatable; "
                            "mounts under its basename, skipping the "
                            "graph build and pre-warming the score cache)")
    serve.add_argument("--save-on-exit", action="store_true",
                       help="on shutdown, write each snapshot-mounted "
                            "lake (tables, graph, warmed rankings) back "
                            "to its snapshot directory atomically")
    serve.add_argument("--job-dir", default=None, metavar="DIR",
                       help="persist finished async-job payloads to DIR "
                            "and restore them on restart (default: the "
                            "first snapshot's jobs/ directory, when "
                            "--snapshot is used)")
    serve.add_argument("--auth-token", default=None,
                       help="require 'Authorization: Bearer TOKEN' on "
                            "every route except /healthz (default: the "
                            "DOMAINNET_TOKEN environment variable)")
    serve.add_argument("--job-ttl", type=float, default=None,
                       help="seconds a finished async job stays pollable "
                            "at /jobs/<id> (default 300)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 picks an ephemeral port and "
                            "prints it (default 8080)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes for scoring (default: serial)")
    serve.add_argument("--backend", choices=BACKEND_NAMES, default="auto",
                       help="execution backend (default auto)")
    serve.add_argument("--chunk-size", type=int, default=None,
                       help="work items per parallel task")
    serve.add_argument("--keep-pool", action="store_true",
                       help="keep one persistent worker pool (and the "
                            "shared-memory graph export) warm across "
                            "requests; implies a process backend when "
                            "--jobs/--backend leave it unset")
    serve.add_argument("--no-prune", action="store_true",
                       help="keep values that occur only once in the lake")
    serve.add_argument("--max-concurrent", type=int, default=None,
                       help="compute requests admitted at once before "
                            "503s start (default 32)")
    serve.add_argument("--retry-after", type=int, default=None,
                       help="Retry-After seconds sent with 503 "
                            "rejections (default 1)")
    serve.add_argument("--lake-quota", type=int, default=None,
                       metavar="N",
                       help="concurrent compute requests admitted per "
                            "lake (default: each lake's fair share, "
                            "max-concurrent // number of lakes with a "
                            "floor of 1; 0 disables per-lake fairness, "
                            "restoring the single global gate)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-connection socket timeout: stalled "
                            "clients get a 408 and their connection "
                            "closed (default 60)")
    serve.add_argument("--record-oplog", action="store_true",
                       help="record every applied table mutation in an "
                            "oplog.jsonl inside each snapshot mount and "
                            "serve it at GET /lakes/<name>/oplog "
                            "(requires --snapshot; an existing oplog is "
                            "replayed into the index at startup, so a "
                            "restarted primary recovers mutations the "
                            "snapshot predates)")

    cluster = commands.add_parser(
        "cluster",
        help="serve one snapshot from N replica processes behind a "
             "load-balancing router (reads fan out, writes pin to "
             "the oplog-recording primary)",
    )
    cluster.add_argument("snapshot", metavar="SNAPSHOT_DIR",
                         help="snapshot directory every fleet member "
                              "serves (written by 'domainnet snapshot "
                              "build')")
    cluster.add_argument("--replicas", type=int, default=2,
                         help="fleet size including the primary "
                              "(default 2)")
    cluster.add_argument("--host", default="127.0.0.1",
                         help="bind address for the router and the "
                              "replicas (default 127.0.0.1)")
    cluster.add_argument("--port", type=int, default=8080,
                         help="router TCP port; 0 picks an ephemeral "
                              "port and prints it (default 8080)")
    cluster.add_argument("--base-port", type=int, default=0,
                         help="first replica port; replica i binds "
                              "base-port+i (default 0: each replica "
                              "picks an ephemeral port)")
    cluster.add_argument("--auth-token", default=None,
                         help="bearer token required by every replica "
                              "and forwarded by the router (default: "
                              "the DOMAINNET_TOKEN environment "
                              "variable)")
    cluster.add_argument("--max-lag", type=int, default=1000,
                         help="oplog entries a replica may fall behind "
                              "before it re-bootstraps from the "
                              "snapshot instead of replaying "
                              "(default 1000)")
    cluster.add_argument("--serve-arg", action="append", default=None,
                         metavar="FLAG",
                         help="extra 'domainnet serve' flag passed to "
                              "every replica (repeatable, e.g. "
                              "--serve-arg=--max-concurrent "
                              "--serve-arg=8)")

    stats = commands.add_parser(
        "stats", help="print catalog statistics for a CSV lake"
    )
    stats.add_argument("directory")

    generate = commands.add_parser(
        "generate", help="write a benchmark lake as CSV files"
    )
    generate.add_argument("benchmark", choices=("sb", "tus"))
    generate.add_argument("directory")
    generate.add_argument("--seed", type=int, default=0)

    forge = commands.add_parser(
        "forge",
        help="write a homoglyph-forged benchmark lake as CSV files "
             "plus its ground-truth manifest",
    )
    forge.add_argument("benchmark", choices=("sb", "tus"),
                       help="base lake: SB, or the homograph-free "
                            "TUS-I lake")
    forge.add_argument("directory")
    forge.add_argument("--forgeries", type=int, default=10,
                       help="number of planted skeleton collisions "
                            "(default 10)")
    forge.add_argument("--meanings", type=int, default=2,
                       help="domains per collision: one anchor plus "
                            "meanings-1 forged variants (default 2)")
    forge.add_argument("--styles", default=None, metavar="STYLES",
                       help="comma-separated subset of "
                            "greek,cyrillic,fullwidth,leet "
                            "(default: all)")
    forge.add_argument("--seed", type=int, default=0)

    snapshot = commands.add_parser(
        "snapshot",
        help="build or inspect on-disk snapshots (fast server restarts)",
    )
    snapshot_commands = snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )
    build = snapshot_commands.add_parser(
        "build",
        help="build a lake's graph and write a versioned snapshot",
    )
    build.add_argument("directory", help="directory of *.csv tables")
    build.add_argument("-o", "--output", required=True,
                       help="snapshot directory to write (atomically "
                            "replaced if it already exists)")
    build.add_argument("--warm", metavar="MEASURES", default=None,
                       help="comma-separated measures (e.g. "
                            "'betweenness,lcc') to score now so the "
                            "snapshot ships precomputed rankings")
    build.add_argument("--sample", type=int, default=None,
                       help="BC source samples for --warm betweenness "
                            "(default: exact)")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--no-prune", action="store_true",
                       help="keep values that occur only once in the lake")
    info = snapshot_commands.add_parser(
        "info", help="print a snapshot's manifest (verifies hashes)"
    )
    info.add_argument("path", help="snapshot directory")
    info.add_argument("--no-verify", action="store_true",
                      help="skip content-hash verification (sizes and "
                           "format version are still checked)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "snapshot":
        if args.snapshot_command == "build":
            return _cmd_snapshot_build(args)
        return _cmd_snapshot_info(args)
    if args.command == "forge":
        return _cmd_forge(args)
    return _cmd_generate(args)


def _execution_from_flags(args, keep_pool: bool) -> Optional[ExecutionConfig]:
    """Build an ExecutionConfig from the shared CLI execution flags.

    ``keep_pool`` requests a persistent worker pool; with ``--backend``
    unset it forces the process backend so a pool actually exists to
    keep — including under ``--jobs 1``, where ``auto`` would silently
    fall back to serial and ignore the flag.
    """
    if not (keep_pool or args.jobs is not None or args.backend != "auto"
            or args.chunk_size is not None):
        return None
    backend = args.backend
    if keep_pool and backend == "auto":
        backend = "process"
    return ExecutionConfig(
        backend=backend,
        n_jobs=args.jobs,
        chunk_size=args.chunk_size,
        persistent=keep_pool,
    )


def _scan_execution(args) -> Optional[ExecutionConfig]:
    """The scan command's execution flags (``--serve-pool`` implies
    ``--keep-pool``)."""
    return _execution_from_flags(
        args, keep_pool=args.keep_pool or args.serve_pool is not None
    )


def _print_listing(index, response, args, annotate: bool) -> None:
    """Human listing of one response's top candidates."""
    top = response.ranking.top(args.top)
    verdicts = {}
    if annotate and args.errors:
        verdicts = index.classify_errors([e.value for e in top])
    for entry in top:
        line = f"{entry.rank:>4}. {entry.score:.6f}  {entry.value!r}"
        if annotate and args.meanings:
            estimate = index.estimate_meanings(entry.value)
            line += f"  [{estimate.num_meanings} meaning(s)]"
        verdict = verdicts.get(entry.value)
        if verdict is not None:
            line += f"  [{verdict.kind}]"
        print(line)


def _cmd_scan(args) -> int:
    if args.json and (args.meanings or args.errors):
        print("--json cannot be combined with --meanings/--errors "
              "(the DetectResponse payload does not carry them)",
              file=sys.stderr)
        return 2
    if args.serve_pool is not None and (args.meanings or args.errors):
        print("--serve-pool cannot be combined with --meanings/--errors "
              "(annotations apply to a single-measure listing)",
              file=sys.stderr)
        return 2
    serve_measures = None
    if args.serve_pool is not None:
        serve_measures = [m.strip() for m in args.serve_pool.split(",")
                          if m.strip()]
        unknown = sorted(set(serve_measures) - set(available_measures()))
        if not serve_measures or unknown:
            print(f"--serve-pool expects a comma-separated subset of "
                  f"{', '.join(available_measures())}", file=sys.stderr)
            return 2
    lake = load_lake(args.directory)
    if len(lake) == 0:
        print("no CSV tables found", file=sys.stderr)
        return 1
    try:
        execution = _scan_execution(args)
    except ValueError as error:
        print(f"invalid execution options: {error}", file=sys.stderr)
        return 2
    # The `with` block releases the persistent pool (when --keep-pool /
    # --serve-pool forked one) even if a measure fails mid-scan.
    with HomographIndex(
        lake, prune_candidates=not args.no_prune, execution=execution
    ) as index:
        graph = index.graph

        sample = args.sample
        if sample is None and args.measure == "betweenness":
            if graph.num_nodes > 20_000:
                sample = max(1000, graph.num_nodes // 100)

        if serve_measures is not None:
            return _scan_serve(index, serve_measures, sample, args)

        response = index.detect(
            measure=args.measure, sample_size=sample, seed=args.seed
        )

        if args.json:
            print(response.to_json(indent=2, top=args.top))
            return 0

        print(f"lake: {len(lake)} tables, {lake.num_attributes} attributes")
        print(f"graph: {graph.num_values} candidate values, "
              f"{graph.num_attributes} attributes, {graph.num_edges} edges")
        print(f"measure: {args.measure} "
              f"({'exact' if sample is None else f'{sample} samples'}) "
              f"in {response.measure_seconds:.1f}s\n")
        _print_listing(index, response, args, annotate=True)
    return 0


def _scan_serve(index, measures: List[str], sample, args) -> int:
    """Batch-score several measures on the index's shared pool."""
    from .api import DetectRequest

    requests = [
        DetectRequest(
            measure=measure,
            sample_size=sample if measure == "betweenness" else None,
            seed=args.seed,
        )
        for measure in measures
    ]
    responses = index.detect_many(requests)
    if args.json:
        import json as _json

        print(_json.dumps(
            [r.to_dict(top=args.top) for r in responses],
            indent=2, sort_keys=True,
        ))
        return 0
    for measure, response in zip(measures, responses):
        print(f"== {measure} "
              f"({response.measure_seconds:.1f}s"
              f"{', cached' if response.cached else ''}) ==")
        _print_listing(index, response, args, annotate=False)
        print()
    return 0


def _lake_name_from_directory(directory: str, taken) -> str:
    """Derive a URL-safe, unique lake name from a directory path."""
    import os
    import re as _re

    base = os.path.basename(os.path.normpath(directory)) or "lake"
    name = _re.sub(r"[^A-Za-z0-9._-]", "-", base).lstrip("._-") or "lake"
    name = name[:60]
    candidate, counter = name, 1
    while candidate in taken:
        counter += 1
        candidate = f"{name}-{counter}"
    return candidate


def _serve_mounts(args) -> Optional[List]:
    """Resolve the serve command's ``(name, directory)`` mount list.

    Positional directories mount first (under their basenames) so
    the first positional directory is the default lake, exactly as
    the ``DIR`` help text promises; ``--lake NAME=DIR`` entries
    follow, under their explicit names.  Returns ``None`` (with a
    message on stderr) when the flags are unusable.
    """
    mounts: List = []
    taken = set()
    for directory in args.directories:
        name = _lake_name_from_directory(directory, taken)
        mounts.append((name, directory))
        taken.add(name)
    for entry in args.lake or []:
        name, separator, directory = entry.partition("=")
        if not separator or not name or not directory:
            print(f"--lake expects NAME=DIR, got {entry!r}",
                  file=sys.stderr)
            return None
        if name in taken:
            print(f"duplicate lake name {name!r}", file=sys.stderr)
            return None
        mounts.append((name, directory))
        taken.add(name)
    for path in args.snapshot or []:
        name = _lake_name_from_directory(path, taken)
        mounts.append((name, path))
        taken.add(name)
    if not mounts:
        print("nothing to serve: pass directories, --lake NAME=DIR, "
              "and/or --snapshot PATH",
              file=sys.stderr)
        return None
    return mounts


def _cmd_serve(args) -> int:
    """Serve the mounted lakes over HTTP until interrupted, then drain."""
    import os

    from .api import Workspace, validate_lake_name
    from .serving.http import HomographHTTPServer
    from .snapshot import SnapshotError, is_snapshot, jobs_dir

    mounts = _serve_mounts(args)
    if mounts is None:
        return 2
    try:
        execution = _execution_from_flags(args, keep_pool=args.keep_pool)
    except ValueError as error:
        print(f"invalid execution options: {error}", file=sys.stderr)
        return 2
    options = {}
    if args.max_concurrent is not None:
        options["max_concurrent"] = args.max_concurrent
    if args.retry_after is not None:
        options["retry_after"] = args.retry_after
    if args.lake_quota is not None:
        if args.lake_quota < 0:
            print("--lake-quota must be >= 0 (0 turns fairness off)",
                  file=sys.stderr)
            return 2
        options["lake_quota"] = args.lake_quota
    if args.request_timeout is not None:
        if args.request_timeout <= 0:
            print("--request-timeout must be > 0 seconds",
                  file=sys.stderr)
            return 2
        options["request_timeout"] = args.request_timeout
    if args.job_ttl is not None:
        if args.job_ttl <= 0:
            print("--job-ttl must be > 0 seconds", file=sys.stderr)
            return 2
        options["job_ttl"] = args.job_ttl
    token = args.auth_token
    if token is None:
        token = os.environ.get("DOMAINNET_TOKEN") or None
    if token is not None:
        options["auth_token"] = token
    workspace = Workspace(
        execution=execution, prune_candidates=not args.no_prune
    )
    # (name, snapshot_path) pairs for snapshot mounts: they get fast
    # mmap loading now and, with --save-on-exit, a write-back later.
    snapshot_mounts: List = []
    try:
        for name, directory in mounts:
            validate_lake_name(name)
            if is_snapshot(directory):
                workspace.attach(name, directory)
                snapshot_mounts.append((name, directory))
                continue
            lake = load_lake(directory)
            if len(lake) == 0:
                print(f"no CSV tables found in {directory}",
                      file=sys.stderr)
                workspace.close()
                return 1
            workspace.attach(name, lake)
    except SnapshotError as error:
        workspace.close()
        print(f"cannot mount snapshot: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        # Missing / unreadable directory: a message, not a traceback.
        workspace.close()
        print(str(error), file=sys.stderr)
        return 1
    except ValueError as error:
        workspace.close()
        print(str(error), file=sys.stderr)
        return 2
    if args.record_oplog:
        if not snapshot_mounts:
            workspace.close()
            print("--record-oplog requires at least one --snapshot "
                  "mount (the oplog lives inside the snapshot "
                  "directory)", file=sys.stderr)
            return 2
        from .cluster.replicate import (
            MutationLog,
            OplogError,
            replay_entry,
        )
        from .snapshot import oplog_path

        oplogs = {}
        try:
            for name, path in snapshot_mounts:
                log = MutationLog(oplog_path(path))
                replayed = 0
                for entry in log.entries():
                    if replay_entry(workspace.get(name), entry):
                        replayed += 1
                if replayed:
                    print(f"replayed {replayed} oplog mutation(s) "
                          f"into lake {name!r}", flush=True)
                oplogs[name] = log
        except OplogError as error:
            for log in oplogs.values():
                log.close()
            workspace.close()
            print(f"cannot recover oplog: {error}", file=sys.stderr)
            return 1
        options["oplogs"] = oplogs
    job_dir = args.job_dir
    if job_dir is None and snapshot_mounts:
        # Finished jobs ride the first snapshot's jobs/ spill area, so
        # a snapshot-served deployment survives restarts by default.
        spill = jobs_dir(snapshot_mounts[0][1])
        job_dir = None if spill is None else str(spill)
    if job_dir is not None:
        options["job_dir"] = job_dir
    try:
        server = HomographHTTPServer(
            workspace, (args.host, args.port), **options
        )
    except OSError as error:
        workspace.close()
        for log in options.get("oplogs", {}).values():
            log.close()
        print(f"cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    listing = ", ".join(
        f"{name}: {len(workspace.get(name).lake)} tables"
        for name in workspace.names()
    )
    print(f"serving {len(workspace)} lake(s) ({listing}) "
          f"on http://{host}:{port} "
          f"(POST /lakes/<name>/detect, GET /lakes, GET /healthz"
          f"{', bearer auth on' if token is not None else ''})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupt: draining in-flight requests", flush=True)
    finally:
        save = args.save_on_exit and snapshot_mounts
        # With a write-back pending the workspace must outlive the
        # drain; otherwise drain() owns the whole teardown as before.
        server.drain(close_index=not save)
        if save:
            for name, path in snapshot_mounts:
                try:
                    workspace.get(name).save(path)
                    print(f"saved snapshot {name!r} -> {path}",
                          flush=True)
                except Exception as error:  # noqa: BLE001 - report all
                    print(f"failed to save snapshot {name!r}: {error}",
                          file=sys.stderr)
            workspace.close()
            server.jobs.drain(timeout=30.0)
    return 0


def _cmd_cluster(args) -> int:
    """Run a replicated fleet plus router until interrupted."""
    import os
    import time

    from .cluster import start_cluster
    from .snapshot import is_snapshot

    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    if not is_snapshot(args.snapshot):
        print(f"{args.snapshot} is not a snapshot directory "
              f"(build one with 'domainnet snapshot build')",
              file=sys.stderr)
        return 2
    token = args.auth_token
    if token is None:
        token = os.environ.get("DOMAINNET_TOKEN") or None
    try:
        supervisor, router = start_cluster(
            args.snapshot,
            replicas=args.replicas,
            host=args.host,
            port=args.port,
            token=token,
            base_port=args.base_port,
            max_lag=args.max_lag,
            serve_args=args.serve_arg or [],
        )
    except OSError as error:
        print(f"cannot start cluster: {error}", file=sys.stderr)
        return 1
    print(f"cluster of {args.replicas} member(s) over "
          f"{args.snapshot} on {router.url} "
          f"(reads balance across replicas, writes pin to the "
          f"primary, GET /cluster/stats"
          f"{', bearer auth on' if token is not None else ''})",
          flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("interrupt: draining the router, stopping the fleet",
              flush=True)
    finally:
        router.drain()
        supervisor.stop()
    return 0


def _cmd_snapshot_build(args) -> int:
    """Build a lake's graph (optionally score it) and write a snapshot."""
    warm: List[str] = []
    if args.warm is not None:
        warm = [m.strip() for m in args.warm.split(",") if m.strip()]
        unknown = sorted(set(warm) - set(available_measures()))
        if unknown:
            print(f"--warm expects a comma-separated subset of "
                  f"{', '.join(available_measures())}", file=sys.stderr)
            return 2
    lake = load_lake(args.directory)
    if len(lake) == 0:
        print("no CSV tables found", file=sys.stderr)
        return 1
    with HomographIndex(
        lake, prune_candidates=not args.no_prune
    ) as index:
        graph = index.graph
        for measure in warm:
            # Only a sampled betweenness run carries sampling fields:
            # they are part of the cache key, so warming with them set
            # would never match a client's default request.
            sample = args.sample if measure == "betweenness" else None
            response = index.detect(
                measure=measure,
                sample_size=sample,
                seed=args.seed if sample is not None else None,
            )
            print(f"warmed {measure} in "
                  f"{response.measure_seconds:.1f}s")
        manifest = index.save(args.output)
    print(f"wrote snapshot to {args.output}: "
          f"{len(lake)} tables, {graph.num_values} values, "
          f"{graph.num_edges} edges, "
          f"{manifest.get('scores', 0)} precomputed ranking(s)")
    return 0


def _cmd_snapshot_info(args) -> int:
    """Print (and by default hash-verify) a snapshot's manifest."""
    import json as _json

    from .snapshot import SnapshotError, load_manifest

    try:
        manifest = load_manifest(args.path, verify=not args.no_verify)
    except SnapshotError as error:
        print(f"{type(error).__name__}: {error}", file=sys.stderr)
        return 1
    print(_json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_stats(args) -> int:
    lake = load_lake(args.directory)
    stats = compute_statistics(lake, args.directory)
    print(format_statistics_table([stats]))
    return 0


def _cmd_forge(args) -> int:
    """Write a homoglyph-forged benchmark lake plus its ground truth."""
    import json as _json
    import os

    from .bench.injection import (
        ForgeConfig,
        InjectionError,
        forge_homoglyphs,
        remove_homographs,
    )
    from .core.confusables import STYLES

    styles = STYLES
    if args.styles is not None:
        styles = tuple(
            s.strip() for s in args.styles.split(",") if s.strip()
        )
        unknown = sorted(set(styles) - set(STYLES))
        if not styles or unknown:
            print(f"--styles expects a comma-separated subset of "
                  f"{', '.join(STYLES)}", file=sys.stderr)
            return 2
    if args.benchmark == "sb":
        from .bench.synthetic import SBConfig, generate_sb

        dataset = generate_sb(SBConfig(seed=args.seed))
        lake = dataset.lake
        groups = dataset.ground_truth.attribute_groups
        # SB's planted natural homographs stay out of the forge so the
        # manifest labels exactly the confusable collisions.
        exclude = set(dataset.homographs)
    else:
        from .bench.tus import TUSConfig, generate_tus

        tus = generate_tus(TUSConfig.small(seed=args.seed))
        lake, groups = remove_homographs(tus)
        exclude = set()
    config = ForgeConfig(
        num_forgeries=args.forgeries,
        meanings=args.meanings,
        styles=styles,
        seed=args.seed,
    )
    try:
        forged = forge_homoglyphs(lake, groups, config, exclude=exclude)
    except InjectionError as error:
        print(f"cannot forge: {error}", file=sys.stderr)
        return 1
    paths = dump_lake(forged.lake, args.directory)
    manifest_path = os.path.join(args.directory, "forge_truth.json")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        _json.dump(forged.to_manifest(), handle, indent=2,
                   sort_keys=True, ensure_ascii=False)
        handle.write("\n")
    print(f"wrote {len(paths)} tables to {args.directory}")
    print(f"{len(forged.forgeries)} forged variants across "
          f"{len(forged.anchors)} anchors "
          f"(ground truth: {manifest_path})")
    return 0


def _cmd_generate(args) -> int:
    if args.benchmark == "sb":
        from .bench.synthetic import SBConfig, generate_sb

        dataset = generate_sb(SBConfig(seed=args.seed))
    else:
        from .bench.tus import TUSConfig, generate_tus

        dataset = generate_tus(TUSConfig.small(seed=args.seed))
    paths = dump_lake(dataset.lake, args.directory)
    print(f"wrote {len(paths)} tables to {args.directory}")
    print(f"{len(dataset.ground_truth.homographs)} ground-truth homographs")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
