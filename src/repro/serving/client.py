"""A thin ``urllib`` client for the DomainNet HTTP service.

The server side (:mod:`repro.serving.http`) speaks plain JSON over
HTTP, so any language can talk to it; this module is the Python
convenience wrapper used by the examples, the smoke job, and the
end-to-end tests.  It deliberately has no dependencies beyond the
stdlib — a deployment can copy the one file next to its own code.

Typical round trip::

    from repro.serving.client import HomographClient

    client = HomographClient(server.url)
    client.wait_ready()
    response = client.detect(measure="betweenness")      # DetectResponse
    for entry in client.iter_ranking("lcc", limit=500):  # RankedValue
        ...

Failures come back as :class:`ServiceError` carrying the server's
structured error payload (``status``, ``code``, ``message``) plus the
``Retry-After`` hint on 503s.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Iterator, Mapping, Optional

from ..api import DetectRequest, DetectResponse
from ..core.ranking import RankedValue
from ..datalake.table import Table


class ServiceError(RuntimeError):
    """A structured (non-2xx) response from the homograph service.

    Attributes
    ----------
    status:
        HTTP status code.
    code:
        The machine-readable error code from the response body
        (``"unknown-measure"``, ``"over-capacity"``, ...), or
        ``"unknown"`` when the body was not the service's error shape.
    retry_after:
        Parsed ``Retry-After`` header in seconds, when present.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class HomographClient:
    """Talk to a running :class:`~repro.serving.http.HomographHTTPServer`.

    Parameters
    ----------
    base_url:
        Root of the service, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        query: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        url = self.base_url + path
        if query:
            pairs = {k: str(v) for k, v in query.items() if v is not None}
            if pairs:
                url += "?" + urllib.parse.urlencode(pairs)
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._service_error(error) from None

    @staticmethod
    def _service_error(error: urllib.error.HTTPError) -> ServiceError:
        status = error.code
        code, message = "unknown", error.reason
        try:
            body = json.loads(error.read().decode("utf-8"))
            details = body.get("error", {})
            code = str(details.get("code", code))
            message = str(details.get("message", message))
        except Exception:  # noqa: BLE001 - non-JSON error body
            pass
        finally:
            error.close()
        retry_after = None
        raw = error.headers.get("Retry-After")
        if raw is not None:
            try:
                retry_after = int(raw)
            except ValueError:
                pass
        return ServiceError(status, code, message, retry_after)

    # ------------------------------------------------------------------
    # Service surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """``GET /healthz`` — raises :class:`ServiceError` once closed."""
        return self._request("GET", "/healthz")

    def wait_ready(self, timeout: float = 10.0) -> Dict[str, object]:
        """Poll ``/healthz`` until the service answers, then return it.

        Raises :class:`TimeoutError` when the service does not come up
        within ``timeout`` seconds.  A structured error response (e.g.
        503 while draining) propagates immediately — the server is
        reachable, just not healthy.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError:
                raise
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not ready after "
                        f"{timeout:.1f}s"
                    ) from None
                time.sleep(0.05)

    def stats(self) -> Dict[str, object]:
        """``GET /stats`` — index counters plus the ``http`` block."""
        return self._request("GET", "/stats")

    def detect(
        self,
        request: Optional[DetectRequest] = None,
        top: Optional[int] = None,
        **overrides,
    ) -> DetectResponse:
        """``POST /detect`` — mirrors :meth:`HomographIndex.detect`.

        Accepts a :class:`DetectRequest`, keyword overrides on top of
        one, or keywords alone; returns the parsed
        :class:`DetectResponse` (``top`` truncates the ranking
        server-side).
        """
        if request is None:
            request = DetectRequest(**overrides)
        elif overrides:
            request = request.with_overrides(**overrides)
        payload = self._request(
            "POST", "/detect", payload=request.to_dict(),
            query={"top": top},
        )
        return DetectResponse.from_dict(payload)

    def ranking_page(
        self,
        measure: str,
        cursor: Optional[str] = None,
        limit: int = 100,
        **params,
    ) -> Dict[str, object]:
        """``GET /ranking/<measure>`` — one page of the ranking.

        Returns the raw page payload (``entries``, ``next_cursor``,
        ``total``, ``measure``, ``descending``, ``cached``).  Extra
        keyword ``params`` become query parameters (``sample_size``,
        ``seed``, ``lcc_variant``, ``endpoints``).
        """
        query = {"cursor": cursor, "limit": limit, **params}
        return self._request(
            "GET", f"/ranking/{urllib.parse.quote(measure)}",
            query=query,
        )

    def iter_ranking(
        self,
        measure: str,
        limit: int = 100,
        **params,
    ) -> Iterator[RankedValue]:
        """Walk the whole ranking page by page, yielding entries.

        Follows ``next_cursor`` until exhaustion; each yielded item is
        a :class:`RankedValue`.
        """
        cursor: Optional[str] = None
        while True:
            page = self.ranking_page(
                measure, cursor=cursor, limit=limit, **params
            )
            for entry in page["entries"]:
                yield RankedValue(
                    rank=int(entry["rank"]),
                    value=str(entry["value"]),
                    score=float(entry["score"]),
                )
            cursor = page["next_cursor"]
            if cursor is None:
                return

    def add_table(self, table: Table) -> Dict[str, object]:
        """``POST /tables`` — add one table to the served lake."""
        columns = {
            column.name: list(column.values)
            for column in table.iter_columns()
        }
        return self._request(
            "POST", "/tables",
            payload={"name": table.name, "columns": columns},
        )

    def remove_table(self, name: str) -> Dict[str, object]:
        """``DELETE /tables/<name>`` — drop one table from the lake."""
        return self._request(
            "DELETE", f"/tables/{urllib.parse.quote(name)}"
        )
