"""A thin ``urllib`` client for the DomainNet HTTP service.

The server side (:mod:`repro.serving.http`) speaks plain JSON over
HTTP, so any language can talk to it; this module is the Python
convenience wrapper used by the examples, the smoke job, and the
end-to-end tests.  It deliberately has no dependencies beyond the
stdlib — a deployment can copy the one file next to its own code.

Typical round trip::

    from repro.serving.client import HomographClient

    client = HomographClient(server.url, token="s3cret")
    client.wait_ready()
    response = client.detect(measure="betweenness")      # DetectResponse
    for entry in client.iter_ranking("lcc", limit=500):  # RankedValue
        ...

Multi-lake servers expose named lakes; a *lake handle* scopes every
call to one of them, and jobs run detections asynchronously::

    tus = client.lake("tus")                  # /lakes/tus/... routes
    tus.detect(measure="lcc")
    job_id = tus.submit(measure="betweenness")
    client.poll(job_id)["state"]              # queued/running/done/error
    response = client.wait(job_id)            # blocks; DetectResponse

Failures come back as :class:`ServiceError` carrying the server's
structured error payload (``status``, ``code``, ``message``, and the
``lake`` a lake-scoped 503 names) plus the ``Retry-After`` hint on
503s; a job that ends in its error state raises :class:`JobFailed`
from :meth:`HomographClient.wait`.

Two knobs matter under load.  ``keep_alive=True`` switches the
transport from one-shot ``urllib`` opens to a persistent HTTP/1.1
connection (reconnecting transparently when the server closes it), so
a load-generator worker pays the TCP handshake once, not per request.
``retry_overloaded=N`` retries admission rejections (any 503 —
``over-capacity``, ``lake-over-capacity``, ``jobs-overloaded``) up to
N times, sleeping the server's ``Retry-After`` between attempts (or
``retry_backoff`` seconds when set).  A keep-alive client is not
thread-safe: give each worker thread its own.
"""

from __future__ import annotations

import gzip
import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..api import DetectRequest, DetectResponse
from ..core.ranking import RankedValue
from ..datalake.table import Table


class ServiceError(RuntimeError):
    """A structured (non-2xx) response from the homograph service.

    Attributes
    ----------
    status:
        HTTP status code.
    code:
        The machine-readable error code from the response body
        (``"unknown-measure"``, ``"over-capacity"``, ...), or
        ``"unknown"`` when the body was not the service's error shape.
    retry_after:
        Parsed ``Retry-After`` header in seconds, when present.
    lake:
        The lake a lake-scoped rejection names in its error body
        (``lake-over-capacity``), else ``None``.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
        lake: Optional[str] = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.lake = lake

    @property
    def overloaded(self) -> bool:
        """Whether this is a retryable 503 admission rejection."""
        return self.status == 503

    @property
    def scope(self) -> Optional[str]:
        """Which gate rejected an overloaded request.

        ``"lake"`` for a per-lake quota rejection, ``"global"`` for
        the service-wide gate or the async-job cap, ``None`` for
        errors that are not admission rejections.
        """
        if self.code == "lake-over-capacity":
            return "lake"
        if self.code in ("over-capacity", "jobs-overloaded"):
            return "global"
        return None


class ServiceUnavailable(TimeoutError):
    """The service never became reachable within the probe window.

    Raised by :meth:`HomographClient.wait_ready` when the deadline
    expires with the socket still refusing connections.  Subclasses
    :class:`TimeoutError` so pre-existing ``except TimeoutError``
    callers keep working.

    Attributes
    ----------
    base_url:
        The service root that never answered.
    timeout:
        The probe window that elapsed, in seconds.
    """

    def __init__(self, base_url: str, timeout: float) -> None:
        super().__init__(
            f"service at {base_url} not ready after {timeout:.1f}s"
        )
        self.base_url = base_url
        self.timeout = timeout


class _KeepAliveTransport:
    """One persistent HTTP/1.1 connection, reconnecting when stale.

    The server may close a keep-alive connection at any time (error
    responses do, drains do, idle timeouts do); a request that dies
    on a *reused* connection is retried exactly once on a fresh one —
    the classic keep-alive race — while failures on a fresh
    connection, and timeouts anywhere, propagate.  ``reconnects``
    counts the races for diagnostics.  Not thread-safe.
    """

    def __init__(self, base_url: str, timeout: float) -> None:
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme != "http":
            raise ValueError(
                f"keep-alive transport speaks plain http, "
                f"got {base_url!r}"
            )
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        self.reconnects = 0

    def request(
        self,
        method: str,
        target: str,
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> Tuple[int, "http.client.HTTPMessage", bytes]:
        """One request/response cycle; returns (status, headers, body)."""
        last_error: Optional[BaseException] = None
        for attempt in (0, 1):
            fresh = self._connection is None
            if fresh:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            connection = self._connection
            try:
                connection.request(
                    method, target, body=body, headers=dict(headers)
                )
                response = connection.getresponse()
                payload = response.read()
            except (http.client.HTTPException, OSError) as error:
                self.close()
                if fresh or attempt or isinstance(error, TimeoutError):
                    raise
                self.reconnects += 1
                last_error = error
                continue
            if response.will_close:
                # The server asked for the connection to close (it
                # does on every error response); honor it so the next
                # request starts clean instead of racing a FIN.
                self.close()
            return response.status, response.msg, payload
        raise last_error  # pragma: no cover - loop always returns

    def close(self) -> None:
        """Drop the current connection (the next request redials)."""
        connection, self._connection = self._connection, None
        if connection is not None:
            connection.close()


class JobFailed(RuntimeError):
    """An async job reached its ``error`` terminal state.

    ``job`` holds the full terminal snapshot from ``GET /jobs/<id>``
    (``error.type`` distinguishes a cancelled job —
    ``"CancelledError"`` — from a measure failure).
    """

    def __init__(self, job: Mapping) -> None:
        error = job.get("error") or {}
        super().__init__(
            f"job {job.get('id')} failed: "
            f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
        self.job = dict(job)


class HomographClient:
    """Talk to a running :class:`~repro.serving.http.HomographHTTPServer`.

    Parameters
    ----------
    base_url:
        Root of the service, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Per-request socket timeout in seconds.
    token:
        Bearer token sent as ``Authorization: Bearer <token>`` on
        every request, for servers started with an auth token.
    lake:
        Scope every lake-level call (``detect``, ``ranking_page``,
        ``add_table``, ``submit``, ``stats``...) to this named lake
        via the ``/lakes/<name>/...`` routes.  ``None`` (default)
        uses the legacy un-prefixed routes, i.e. the server's default
        lake.  Prefer :meth:`lake` to construct scoped handles.
    keep_alive:
        Reuse one persistent HTTP/1.1 connection across requests
        (reconnecting when the server closes it) instead of opening a
        socket per request.  :meth:`lake` handles share the parent's
        connection.  A keep-alive client is not thread-safe; call
        :meth:`close` (or use the client as a context manager) when
        done so the socket does not linger.
    retry_overloaded / retry_backoff:
        Retry any 503 admission rejection (``over-capacity``,
        ``lake-over-capacity``, ``jobs-overloaded``) up to
        ``retry_overloaded`` times before raising, sleeping the
        server's ``Retry-After`` between attempts — or exactly
        ``retry_backoff`` seconds when set (load generators set it
        small to keep the closed loop tight).  Default: no retries.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        token: Optional[str] = None,
        lake: Optional[str] = None,
        keep_alive: bool = False,
        retry_overloaded: int = 0,
        retry_backoff: Optional[float] = None,
        _transport: Optional[_KeepAliveTransport] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.token = token
        self.lake_name = lake
        self.keep_alive = keep_alive
        self.retry_overloaded = retry_overloaded
        self.retry_backoff = retry_backoff
        self._prefix = (
            f"/lakes/{urllib.parse.quote(lake, safe='')}" if lake else ""
        )
        if _transport is not None:
            self._transport: Optional[_KeepAliveTransport] = _transport
        elif keep_alive:
            self._transport = _KeepAliveTransport(self.base_url, timeout)
        else:
            self._transport = None

    def lake(self, name: str) -> "HomographClient":
        """A handle scoped to one named lake (``/lakes/<name>/...``).

        The handle shares this client's base URL, timeout, token,
        retry policy — and, under ``keep_alive``, the parent's one
        persistent connection (so a worker holding several handles
        still owns a single socket)::

            tus = client.lake("tus")
            tus.detect(measure="betweenness")     # POST /lakes/tus/detect
        """
        return type(self)(
            self.base_url,
            timeout=self.timeout,
            token=self.token,
            lake=name,
            keep_alive=self.keep_alive,
            retry_overloaded=self.retry_overloaded,
            retry_backoff=self.retry_backoff,
            _transport=self._transport,
        )

    def close(self) -> None:
        """Close the persistent connection (no-op without keep-alive).

        Safe to call repeatedly; a later request simply redials.
        Closing a :meth:`lake` handle closes the shared connection.
        """
        if self._transport is not None:
            self._transport.close()

    def __enter__(self) -> "HomographClient":
        """Enter a ``with`` block; the client itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the persistent connection on ``with``-block exit."""
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        query: Optional[Mapping[str, object]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, object]:
        attempts = 0
        while True:
            try:
                return self._request_once(
                    method, path, payload, query, headers
                )
            except ServiceError as error:
                if (
                    not error.overloaded
                    or attempts >= self.retry_overloaded
                ):
                    raise
                attempts += 1
                delay = self.retry_backoff
                if delay is None:
                    delay = float(
                        1 if error.retry_after is None
                        else error.retry_after
                    )
                time.sleep(delay)

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping],
        query: Optional[Mapping[str, object]],
        headers: Optional[Mapping[str, str]],
    ) -> Dict[str, object]:
        target = path
        if query:
            pairs = {k: str(v) for k, v in query.items() if v is not None}
            if pairs:
                target += "?" + urllib.parse.urlencode(pairs)
        data = None
        request_headers = {"Accept": "application/json"}
        if self.token is not None:
            request_headers["Authorization"] = f"Bearer {self.token}"
        if headers:
            request_headers.update(headers)
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        if self._transport is not None:
            status, response_headers, body = self._transport.request(
                method, target, data, request_headers
            )
            if status >= 400:
                raise self._error_from_parts(
                    status, "", response_headers, body
                )
            return self._decode_body(
                body, response_headers.get("Content-Encoding", "")
            )
        request = urllib.request.Request(
            self.base_url + target,
            data=data, headers=request_headers, method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return self._decode_body(
                    response.read(),
                    response.headers.get("Content-Encoding", ""),
                )
        except urllib.error.HTTPError as error:
            raise self._service_error(error) from None

    @staticmethod
    def _decode_body(body: bytes, encoding: str) -> Dict[str, object]:
        if encoding.lower() == "gzip":
            body = gzip.decompress(body)
        return json.loads(body.decode("utf-8"))

    @staticmethod
    def _error_from_parts(
        status: int, reason: str, headers, body: bytes
    ) -> ServiceError:
        """Build a :class:`ServiceError` from a raw error response."""
        code, message, lake = "unknown", reason, None
        try:
            details = json.loads(body.decode("utf-8")).get("error", {})
            code = str(details.get("code", code))
            message = str(details.get("message", message))
            if details.get("lake") is not None:
                lake = str(details["lake"])
        except Exception:  # noqa: BLE001 - non-JSON error body
            pass
        retry_after = None
        raw = headers.get("Retry-After")
        if raw is not None:
            try:
                retry_after = int(raw)
            except ValueError:
                pass
        return ServiceError(status, code, message, retry_after, lake)

    @classmethod
    def _service_error(
        cls, error: urllib.error.HTTPError
    ) -> ServiceError:
        try:
            body = error.read()
        except Exception:  # noqa: BLE001 - already-broken stream
            body = b""
        finally:
            error.close()
        return cls._error_from_parts(
            error.code, error.reason, error.headers, body
        )

    def _scoped(self, path: str) -> str:
        """Apply the lake prefix to a lake-level route."""
        return self._prefix + path

    # ------------------------------------------------------------------
    # Service surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """``GET /healthz`` — raises :class:`ServiceError` once closed.

        On a lake handle this is the per-lake probe
        (``GET /lakes/<name>/healthz``).
        """
        return self._request("GET", self._scoped("/healthz"))

    def wait_ready(
        self, timeout: float = 10.0, backoff: float = 0.05
    ) -> Dict[str, object]:
        """Poll ``/healthz`` until the service answers, then return it.

        Raises :class:`ServiceUnavailable` (a :class:`TimeoutError`
        subclass) when the service does not come up within ``timeout``
        seconds, sleeping ``backoff`` seconds between probes.  A
        structured error response (e.g. 503 while draining) propagates
        immediately as :class:`ServiceError` — the server is
        reachable, just not healthy.
        """
        if timeout <= 0 or backoff <= 0:
            raise ValueError(
                f"timeout ({timeout!r}) and backoff ({backoff!r}) "
                "must both be positive"
            )
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServiceError:
                raise
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise ServiceUnavailable(
                        self.base_url, timeout
                    ) from None
                time.sleep(backoff)

    def version(self) -> Dict[str, object]:
        """``GET /version`` — the server's compatibility fingerprint.

        Library version, snapshot ``FORMAT_VERSION``, python and
        numpy versions; the cluster supervisor compares these across
        replicas before admitting them to one fleet.
        """
        return self._request("GET", "/version")

    def oplog(self, since: int = 0) -> Dict[str, object]:
        """``GET /oplog?since=N`` — the served lake's mutation tail.

        Returns ``{"epoch", "last_seq", "entries", "lake"}``; raises
        :class:`ServiceError` with code ``no-oplog`` (404) when the
        server does not record one for this lake.
        """
        return self._request(
            "GET", self._scoped("/oplog"), query={"since": since}
        )

    def stats(self) -> Dict[str, object]:
        """``GET /stats`` — index counters plus the ``http`` block.

        On a lake handle: that lake's ``GET /lakes/<name>/stats``
        snapshot instead.
        """
        return self._request("GET", self._scoped("/stats"))

    def lakes(self) -> Dict[str, object]:
        """``GET /lakes`` — the mounted lakes and the default name."""
        return self._request("GET", "/lakes")

    def mount_lake(
        self,
        name: str,
        path: str,
        quota: Optional[int] = None,
    ) -> Dict[str, object]:
        """``POST /lakes`` — mount a CSV directory or snapshot.

        ``path`` is server-local: a directory of ``*.csv`` tables, or
        a snapshot directory written by ``domainnet snapshot build`` /
        :meth:`HomographIndex.save` (auto-detected; mounts via mmap
        without rebuilding the graph).  ``quota`` (integer >= 1) pins
        the new lake's admission quota atomically with the mount.
        Raises :class:`ServiceError` with code ``duplicate-lake``
        (409) when the name is taken.
        """
        payload: Dict[str, object] = {"name": name, "path": path}
        if quota is not None:
            payload["quota"] = quota
        return self._request("POST", "/lakes", payload=payload)

    def unmount_lake(self, name: str) -> Dict[str, object]:
        """``DELETE /lakes/<name>`` — detach one lake at runtime.

        Sibling lakes (and their in-flight requests) are unaffected;
        unknown names raise :class:`ServiceError` with a 404.
        """
        return self._request(
            "DELETE",
            f"/lakes/{urllib.parse.quote(name, safe='')}",
        )

    def detect(
        self,
        request: Optional[DetectRequest] = None,
        top: Optional[int] = None,
        **overrides,
    ) -> DetectResponse:
        """``POST /detect`` — mirrors :meth:`HomographIndex.detect`.

        Accepts a :class:`DetectRequest`, keyword overrides on top of
        one, or keywords alone; returns the parsed
        :class:`DetectResponse` (``top`` truncates the ranking
        server-side).
        """
        request = self._coerce(request, overrides)
        payload = self._request(
            "POST", self._scoped("/detect"), payload=request.to_dict(),
            query={"top": top},
        )
        return DetectResponse.from_dict(payload)

    @staticmethod
    def _coerce(
        request: Optional[DetectRequest], overrides: Dict
    ) -> DetectRequest:
        if request is None:
            return DetectRequest(**overrides)
        if overrides:
            return request.with_overrides(**overrides)
        return request

    # ------------------------------------------------------------------
    # Async jobs
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Optional[DetectRequest] = None,
        **overrides,
    ) -> str:
        """``POST /detect?async=1`` — queue a detection, return job id.

        The job runs server-side on the index's dispatcher and the
        shared pool; poll it with :meth:`poll` or block with
        :meth:`wait`.
        """
        request = self._coerce(request, overrides)
        payload = self._request(
            "POST", self._scoped("/detect"),
            payload=request.to_dict(),
            query={"async": 1},
        )
        return str(payload["job"])

    def poll(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>`` — one state snapshot of an async job."""
        return self._request(
            "GET", f"/jobs/{urllib.parse.quote(job_id, safe='')}"
        )

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        interval: float = 0.05,
    ) -> DetectResponse:
        """Poll a job until terminal; return its parsed response.

        Raises :class:`JobFailed` when the job lands in its ``error``
        state (including cancellation) and :class:`TimeoutError` when
        it is still queued/running after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.poll(job_id)
            state = snapshot.get("state")
            if state == "done":
                return DetectResponse.from_dict(snapshot["response"])
            if state == "error":
                raise JobFailed(snapshot)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:.1f}s"
                )
            time.sleep(interval)

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """``DELETE /jobs/<id>`` — best-effort cancel, returns snapshot.

        Cancelling a finished job is a no-op; the returned snapshot
        simply reports the terminal state it already reached.
        """
        return self._request(
            "DELETE", f"/jobs/{urllib.parse.quote(job_id, safe='')}"
        )

    # ------------------------------------------------------------------
    # Rankings
    # ------------------------------------------------------------------
    def ranking_page(
        self,
        measure: str,
        cursor: Optional[str] = None,
        limit: int = 100,
        **params,
    ) -> Dict[str, object]:
        """``GET /ranking/<measure>`` — one page of the ranking.

        Returns the raw page payload (``entries``, ``next_cursor``,
        ``total``, ``measure``, ``descending``, ``cached``).  Extra
        keyword ``params`` become query parameters (``sample_size``,
        ``seed``, ``lcc_variant``, ``endpoints``).  The request
        advertises ``Accept-Encoding: gzip`` and transparently
        decompresses compressed pages.
        """
        query = {"cursor": cursor, "limit": limit, **params}
        measure_segment = urllib.parse.quote(measure, safe="")
        return self._request(
            "GET",
            self._scoped(f"/ranking/{measure_segment}"),
            query=query,
            headers={"Accept-Encoding": "gzip"},
        )

    def iter_ranking(
        self,
        measure: str,
        limit: int = 100,
        **params,
    ) -> Iterator[RankedValue]:
        """Walk the whole ranking page by page, yielding entries.

        Follows ``next_cursor`` until exhaustion; each yielded item is
        a :class:`RankedValue`.
        """
        cursor: Optional[str] = None
        while True:
            page = self.ranking_page(
                measure, cursor=cursor, limit=limit, **params
            )
            for entry in page["entries"]:
                yield RankedValue(
                    rank=int(entry["rank"]),
                    value=str(entry["value"]),
                    score=float(entry["score"]),
                )
            cursor = page["next_cursor"]
            if cursor is None:
                return

    # ------------------------------------------------------------------
    # Lake mutation
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Dict[str, object]:
        """``POST /tables`` — add one table to the served lake."""
        columns = {
            column.name: list(column.values)
            for column in table.iter_columns()
        }
        return self._request(
            "POST", self._scoped("/tables"),
            payload={"name": table.name, "columns": columns},
        )

    def remove_table(self, name: str) -> Dict[str, object]:
        """``DELETE /tables/<name>`` — drop one table from the lake.

        The name travels as one path segment (``safe=""`` quoting),
        so table names containing ``/`` or spaces round-trip.
        """
        return self._request(
            "DELETE",
            self._scoped(f"/tables/{urllib.parse.quote(name, safe='')}"),
        )
