"""A stdlib HTTP/JSON front-end over :class:`~repro.api.HomographIndex`.

PRs 2 and 3 built the engine — parallel kernels, a persistent worker
pool, thread-safe single-flight detection — but nothing outside the
process could reach it.  This module is the network surface: a
:class:`ThreadingHTTPServer` whose handler threads call straight into
one shared index, so N concurrent identical ``POST /detect`` requests
ride the index's single-flight path and cost one kernel run.

Endpoints (all JSON; errors come back as
``{"error": {"status", "code", "message"}}``):

``POST /detect``
    Body is a :class:`~repro.api.DetectRequest` payload
    (``to_dict()`` form); the response is the full
    :class:`~repro.api.DetectResponse` payload.  ``?top=K``
    truncates the serialized ranking.
``GET /ranking/<measure>?cursor=&limit=``
    Cursor-paginated traversal of the (cached) ranking for a measure
    — :meth:`~repro.core.ranking.HomographRanking.page` under the
    hood, so a page is a slice, never a re-serialization of the full
    ranking.  Extra query knobs: ``sample_size``, ``seed``,
    ``lcc_variant``, ``endpoints``.
``POST /tables`` / ``DELETE /tables/<name>``
    Incremental lake mutation (``{"name": ..., "columns": {...}}``
    body for POST); detection caches invalidate exactly as
    :meth:`HomographIndex.add_table` / ``remove_table`` document.
``GET /healthz`` / ``GET /stats``
    Liveness (503 once the index is closed) and the
    :meth:`HomographIndex.stats` snapshot plus HTTP-layer counters.

Error surface: 400 malformed request, 404 unknown measure/table/route,
409 closed index or duplicate table, 413 oversized body, and 503 with
a ``Retry-After`` header when the bounded admission gate is full.

Shutdown is a drain, not a kill: :meth:`HomographHTTPServer.drain`
stops accepting connections, joins every in-flight handler thread
(``daemon_threads`` is off on purpose), and then reuses
:meth:`HomographIndex.close` to reject stragglers and release the
pool and its shared-memory segments.

Typical embedding (the CLI's ``domainnet serve`` does exactly this)::

    from repro.serving.http import start_server

    server = start_server(index, port=0)        # ephemeral port
    print(server.url)
    ...
    server.drain()                              # joins + index.close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..api import DetectRequest, HomographIndex, available_measures
from ..datalake.lake import LakeError
from ..datalake.table import Table, TableError

#: Default cap on a request body; protects the JSON parser, not disk.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Default concurrent compute requests admitted before 503s start.
DEFAULT_MAX_CONCURRENT = 32
#: Default ``Retry-After`` (seconds) sent with a 503 rejection.
DEFAULT_RETRY_AFTER = 1
#: Default (and maximum) ``limit`` for ranking pages.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 10_000


class _HTTPProblem(Exception):
    """An error that maps directly onto a structured HTTP response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class _AdmissionGate:
    """Bounded admission for compute endpoints: acquire or 503.

    A plain counter under a lock (not a semaphore) so ``in_flight``
    stays observable for ``/stats`` and rejections never block a
    handler thread.
    """

    def __init__(self, limit: int) -> None:
        self.limit = max(1, limit)
        self._lock = threading.Lock()
        self._in_flight = 0
        self.rejected = 0

    def try_acquire(self) -> bool:
        """Claim a slot without blocking; ``False`` when saturated."""
        with self._lock:
            if self._in_flight >= self.limit:
                self.rejected += 1
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        with self._lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Requests currently holding a slot."""
        with self._lock:
            return self._in_flight


class HomographHTTPServer(ThreadingHTTPServer):
    """The serving front-end; see the module docstring for the API.

    Parameters
    ----------
    index:
        The :class:`HomographIndex` every handler thread queries.  The
        server *owns* its lifecycle by default: :meth:`drain` closes
        it (pass ``close_index=False`` to keep it).
    address:
        ``(host, port)`` to bind; port ``0`` picks an ephemeral port
        (read it back from :attr:`url` / ``server_address``).
    max_body_bytes / max_concurrent / retry_after:
        The protocol limits documented in the module docstring.
    """

    # Handler threads are joined on server_close(): a drain must wait
    # for in-flight requests instead of abandoning them mid-response.
    daemon_threads = False
    allow_reuse_address = True

    def __init__(
        self,
        index: HomographIndex,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
        retry_after: int = DEFAULT_RETRY_AFTER,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, HomographRequestHandler)
        self.index = index
        self.max_body_bytes = max_body_bytes
        self.retry_after = retry_after
        self.quiet = quiet
        self.gate = _AdmissionGate(max_concurrent)
        self._served = 0
        self._errors = 0
        self._counters_lock = threading.Lock()
        self._loop_started = threading.Event()
        self._draining = False
        self._drain_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def count(self, ok: bool) -> None:
        """Record one completed response for ``/stats``."""
        with self._counters_lock:
            if ok:
                self._served += 1
            else:
                self._errors += 1

    def http_stats(self) -> Dict[str, object]:
        """HTTP-layer counters (the ``http`` block of ``GET /stats``)."""
        with self._counters_lock:
            served, errors = self._served, self._errors
        return {
            "served": served,
            "errors": errors,
            "rejected": self.gate.rejected,
            "in_flight": self.gate.in_flight,
            "max_concurrent": self.gate.limit,
            "max_body_bytes": self.max_body_bytes,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the accept loop; returns after :meth:`drain`/``shutdown``."""
        if self._draining:
            return
        self._loop_started.set()
        super().serve_forever(poll_interval)

    def start_background(self) -> "HomographHTTPServer":
        """Run :meth:`serve_forever` on a daemon thread; returns self."""
        thread = threading.Thread(
            target=self.serve_forever,
            name="homograph-http",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        return self

    def drain(self, close_index: bool = True) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Safe to call from any thread and idempotent.  Steps: stop the
        accept loop, close the listening socket and join every
        in-flight handler thread (their responses are delivered, not
        cut), then :meth:`HomographIndex.close` — which itself waits
        for admitted ``detect`` calls and releases the worker pool and
        shared-memory segments.
        """
        with self._drain_lock:
            already = self._draining
            self._draining = True
        if not already:
            if self._loop_started.is_set():
                self.shutdown()
            self.server_close()
        if self._thread is not None and self._thread is not \
                threading.current_thread():
            self._thread.join()
        if close_index:
            self.index.close()

    def __enter__(self) -> "HomographHTTPServer":
        """Enter a ``with`` block; the server itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Drain (and close the index) on ``with``-block exit."""
        self.drain()


def start_server(
    index: HomographIndex,
    host: str = "127.0.0.1",
    port: int = 0,
    **options,
) -> HomographHTTPServer:
    """Construct a server and run its accept loop in the background.

    The accept loop runs on a daemon thread; the returned server is
    already reachable at ``server.url``.  Call
    :meth:`HomographHTTPServer.drain` (or use the server as a context
    manager) to stop it and close the index.
    """
    server = HomographHTTPServer(index, (host, port), **options)
    return server.start_background()


class HomographRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request onto the shared index.

    Instantiated per connection by :class:`HomographHTTPServer` (one
    thread each); every route is a small parse step around an index
    call, with failures normalized into :class:`_HTTPProblem`.
    """

    server_version = "DomainNetServe/1.0"
    # HTTP/1.0 (no keep-alive): every response carries Content-Length
    # and closes the connection, which keeps the drain semantics
    # simple — joining handler threads never waits on an idle socket.
    protocol_version = "HTTP/1.0"
    # Per-connection socket timeout: a stalled client (headers sent,
    # body never arriving) must not wedge a non-daemon handler thread
    # forever — drain() joins them all.
    timeout = 60

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Route access logs through the server's quiet flag."""
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.count(ok=status < 400)

    def _send_problem(self, problem: _HTTPProblem) -> None:
        headers = {}
        if problem.retry_after is not None:
            headers["Retry-After"] = str(problem.retry_after)
        self._send_json(
            problem.status,
            {
                "error": {
                    "status": problem.status,
                    "code": problem.code,
                    "message": problem.message,
                }
            },
            extra_headers=headers,
        )

    def _read_json_body(self) -> Dict[str, object]:
        """Read and parse the request body, enforcing the size cap."""
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HTTPProblem(
                411, "length-required",
                "request must carry a Content-Length header",
            ) from None
        if length < 0:
            # rfile.read(-1) would block until the client hangs up.
            raise _HTTPProblem(
                400, "malformed-json",
                f"invalid Content-Length {length}",
            )
        if length > self.server.max_body_bytes:
            # Drain (a bounded amount of) the oversized body first so
            # the client can finish sending and read the 413 instead
            # of hitting a connection reset mid-upload.
            remaining = min(length, 1 << 20)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _HTTPProblem(
                413, "body-too-large",
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
            )
        body = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPProblem(
                400, "malformed-json",
                f"request body is not valid JSON: {error}",
            ) from None
        if not isinstance(payload, dict):
            raise _HTTPProblem(
                400, "malformed-json",
                "request body must be a JSON object",
            )
        return payload

    def _check_open(self) -> None:
        if self.server.index.closed:
            raise _HTTPProblem(
                409, "index-closed",
                "the index has been closed; the service is draining",
            )

    def _admit(self) -> None:
        """Claim an admission slot or fail with 503 + Retry-After."""
        if not self.server.gate.try_acquire():
            raise _HTTPProblem(
                503, "over-capacity",
                f"all {self.server.gate.limit} compute slots are busy",
                retry_after=self.server.retry_after,
            )

    def _detect(self, request: DetectRequest):
        """Run one admitted detection, mapping index errors to HTTP."""
        if request.measure not in available_measures():
            raise _HTTPProblem(
                404, "unknown-measure",
                f"unknown measure {request.measure!r}; available: "
                f"{', '.join(available_measures())}",
            )
        self._check_open()
        self._admit()
        try:
            return self.server.index.detect(request)
        except RuntimeError as error:
            if self.server.index.closed:
                raise _HTTPProblem(
                    409, "index-closed", str(error)
                ) from None
            raise
        finally:
            self.server.gate.release()

    def _route(self, method: str) -> None:
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = parse_qs(parts.query)
        try:
            handler = self._resolve(method, segments)
            handler(segments, query)
        except _HTTPProblem as problem:
            self._send_problem(problem)
        except ConnectionError:  # pragma: no cover - client went away
            pass  # broken pipe / reset: nobody left to answer
        except Exception as error:  # noqa: BLE001 - last-resort mapping
            # The connection may already be half-written or dead (e.g.
            # the failure *was* a mid-response disconnect): attempt the
            # 500, but never let a second write error escape into
            # socketserver's stderr traceback path.
            try:
                self._send_problem(_HTTPProblem(
                    500, "internal-error",
                    f"{type(error).__name__}: {error}",
                ))
            except (ConnectionError, TimeoutError, OSError):
                pass  # pragma: no cover - dead connection

    def _resolve(self, method: str, segments):
        routes = {
            ("GET", "healthz"): self._handle_healthz,
            ("GET", "stats"): self._handle_stats,
            ("GET", "ranking"): self._handle_ranking,
            ("POST", "detect"): self._handle_detect,
            ("POST", "tables"): self._handle_add_table,
            ("DELETE", "tables"): self._handle_remove_table,
        }
        head = segments[0] if segments else ""
        handler = routes.get((method, head))
        if handler is None:
            raise _HTTPProblem(
                404, "unknown-route",
                f"no such endpoint: {method} /{'/'.join(segments)}",
            )
        return handler

    # -- routes --------------------------------------------------------
    def _handle_healthz(self, segments, query) -> None:
        if self.server.index.closed:
            self._send_json(503, {"status": "closed"})
        else:
            self._send_json(
                200,
                {"status": "ok", "tables": len(self.server.index.lake)},
            )

    def _handle_stats(self, segments, query) -> None:
        stats = self.server.index.stats()
        stats["http"] = self.server.http_stats()
        self._send_json(200, stats)

    def _handle_detect(self, segments, query) -> None:
        if len(segments) != 1:
            raise _HTTPProblem(404, "unknown-route", "POST /detect")
        payload = self._read_json_body()
        try:
            request = DetectRequest.from_dict(payload)
        except (TypeError, ValueError) as error:
            raise _HTTPProblem(
                400, "invalid-request",
                f"not a valid DetectRequest payload: {error}",
            ) from None
        response = self._detect(request)
        top = self._int_param(query, "top", default=None, minimum=0)
        self._send_json(200, response.to_dict(top=top))

    def _handle_ranking(self, segments, query) -> None:
        if len(segments) != 2:
            raise _HTTPProblem(
                404, "unknown-route",
                "ranking requests look like GET /ranking/<measure>",
            )
        measure = segments[1]
        request = DetectRequest(
            measure=measure,
            sample_size=self._int_param(query, "sample_size", None, 1),
            seed=self._int_param(query, "seed", None, 0),
            lcc_variant=self._str_param(
                query, "lcc_variant", "attribute-jaccard"
            ),
            endpoints=self._str_param(query, "endpoints", "all"),
        )
        cursor = self._str_param(query, "cursor", None)
        limit = self._int_param(
            query, "limit", DEFAULT_PAGE_LIMIT, minimum=1
        )
        if limit > MAX_PAGE_LIMIT:
            raise _HTTPProblem(
                400, "invalid-paging",
                f"limit {limit} exceeds the {MAX_PAGE_LIMIT} maximum",
            )
        response = self._detect(request)
        try:
            page = response.ranking.page(cursor=cursor, limit=limit)
        except ValueError as error:
            raise _HTTPProblem(
                400, "invalid-paging", str(error)
            ) from None
        payload = page.to_dict()
        payload["cached"] = response.cached
        self._send_json(200, payload)

    def _handle_add_table(self, segments, query) -> None:
        if len(segments) != 1:
            raise _HTTPProblem(404, "unknown-route", "POST /tables")
        self._check_open()
        payload = self._read_json_body()
        name = payload.get("name")
        columns = payload.get("columns")
        if not isinstance(name, str) or not isinstance(columns, dict):
            raise _HTTPProblem(
                400, "invalid-table",
                'table payloads look like {"name": "t", '
                '"columns": {"col": ["v1", ...]}}',
            )
        try:
            table = Table.from_columns(name, columns)
        except (TableError, TypeError, ValueError) as error:
            raise _HTTPProblem(
                400, "invalid-table", str(error)
            ) from None
        try:
            self.server.index.add_table(table)
        except LakeError as error:
            raise _HTTPProblem(
                409, "duplicate-table", str(error)
            ) from None
        self._send_json(
            201,
            {"table": name, "tables": len(self.server.index.lake)},
        )

    def _handle_remove_table(self, segments, query) -> None:
        if len(segments) != 2:
            raise _HTTPProblem(
                404, "unknown-route",
                "table deletion looks like DELETE /tables/<name>",
            )
        self._check_open()
        name = segments[1]
        try:
            self.server.index.remove_table(name)
        except LakeError as error:
            raise _HTTPProblem(
                404, "unknown-table", str(error)
            ) from None
        self._send_json(
            200,
            {"table": name, "tables": len(self.server.index.lake)},
        )

    # -- param parsing -------------------------------------------------
    @staticmethod
    def _str_param(query, name: str, default):
        values = query.get(name)
        return values[-1] if values else default

    @staticmethod
    def _int_param(query, name: str, default, minimum: int):
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[-1])
        except ValueError:
            raise _HTTPProblem(
                400, "invalid-paging",
                f"query parameter {name!r} must be an integer, "
                f"got {values[-1]!r}",
            ) from None
        if value < minimum:
            raise _HTTPProblem(
                400, "invalid-paging",
                f"query parameter {name!r} must be >= {minimum}",
            )
        return value

    # -- stdlib entry points -------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch GET requests."""
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch POST requests."""
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch DELETE requests."""
        self._route("DELETE")
