"""A stdlib HTTP/JSON front-end over a multi-lake :class:`Workspace`.

PRs 2 and 3 built the engine — parallel kernels, a persistent worker
pool, thread-safe single-flight detection — and PR 4 put one lake on
the network.  This module is the *workspace* surface: one
:class:`ThreadingHTTPServer` hosting many named lakes that share one
worker pool, with namespaced routes, an async job API, HTTP/1.1
keep-alive, gzip ranking pages, and optional bearer-token auth.

Endpoints (all JSON; errors come back as
``{"error": {"status", "code", "message"}}``):

``GET /lakes``
    The mounted lakes: name, table count, and which is the default.
``POST /lakes`` / ``DELETE /lakes/<name>``
    Runtime mount/unmount.  The POST body is ``{"name": ...,
    "path": ...}`` where ``path`` is a CSV directory or a snapshot
    directory written by :meth:`HomographIndex.save` (auto-detected;
    snapshots mount in milliseconds via mmap); an optional
    ``"quota"`` (integer >= 1) pins the new lake's admission quota
    atomically with the mount.  201 on success, 409
    ``duplicate-lake`` when the name is taken, 400 for bad payloads,
    unreadable paths, or corrupt snapshots.  DELETE detaches the
    named lake — its index closes and its mmap/shared-memory exports
    are released — without disturbing sibling lakes' in-flight
    requests.
``POST /lakes/<name>/detect``
    Body is a :class:`~repro.api.DetectRequest` payload; the response
    is the full :class:`~repro.api.DetectResponse` payload.  ``?top=K``
    truncates the serialized ranking.  ``?async=1`` returns ``202``
    with a job id instead of blocking (see ``/jobs``).
``GET /lakes/<name>/ranking/<measure>?cursor=&limit=``
    Cursor-paginated ranking pages, gzip-compressed when the client
    sends ``Accept-Encoding: gzip``.
``POST /lakes/<name>/tables`` / ``DELETE /lakes/<name>/tables/<t>``
    Incremental lake mutation, exactly as
    :meth:`HomographIndex.add_table` / ``remove_table`` document.
``GET /lakes/<name>/healthz`` / ``GET /lakes/<name>/stats``
    Per-lake liveness and the index's stats snapshot.
``GET /jobs/<id>`` / ``DELETE /jobs/<id>``
    Poll (``queued``/``running``/``done``/``error`` — the terminal
    ``done`` payload embeds the same ``DetectResponse`` JSON the
    synchronous route returns) or best-effort-cancel an async job.
    Finished jobs are evicted after a TTL; polling later is 404.
``GET /healthz`` / ``GET /stats``
    Service liveness (503 once draining) and a merged snapshot: the
    default lake's counters at the top level (legacy shape), plus
    ``lakes`` (per-lake cache/pool/admission), ``workspace`` (shared
    pool) and ``jobs`` blocks.
``GET /version``
    Library / snapshot-format / python / numpy versions — the
    compatibility fingerprint the cluster supervisor compares before
    admitting a replica.  Open (no auth), like ``/healthz``.
``GET /lakes/<name>/oplog?since=N``
    The lake's recorded mutation tail (replication feed), when the
    server was constructed with an ``oplogs`` mapping (the CLI's
    ``serve --record-oplog``); 404 ``no-oplog`` otherwise.

Legacy single-lake routes — ``POST /detect``, ``GET
/ranking/<measure>``, ``POST /tables``, ``DELETE /tables/<name>`` —
keep working as aliases for the *default* (first-mounted) lake.

Error surface: 400 malformed request, 401 missing/bad bearer token
(when ``auth_token`` is configured; ``/healthz`` stays open for
probes), 404 unknown lake/measure/table/job/route, 408
``request-timeout`` when a client stalls mid-request-body, 409 closed
index or duplicate table, 411/413 body-length problems, and 503 with
``Retry-After`` when admission is refused — ``over-capacity`` when
the *global* gate is full, ``lake-over-capacity`` (with the lake's
name in the error body) when only the requesting lake's quota is.

Admission is two-level (see :class:`_AdmissionGate`): a global cap of
``max_concurrent`` fresh computations, and a per-lake quota — an
explicit override from :meth:`Workspace.set_quota` / the ``POST
/lakes`` mount option, else the server's ``lake_quota``, else the
derived fair share ``max(1, max_concurrent // n_lakes)`` — so one hot
lake cannot starve its siblings.  *Warm* requests (the response is
cached, or an identical computation is in flight to coalesce onto)
cost no pool work and are admitted through a separate follower lane
ahead of fresh computations under overload.  ``lake_quota=0`` turns
fairness off entirely, restoring the PR-4 single global gate.

Shutdown is a drain, not a kill: :meth:`HomographHTTPServer.drain`
stops accepting connections, shuts down idle keep-alive sockets,
joins every in-flight handler thread (``daemon_threads`` is off on
purpose), then closes the workspace — every index, then the one
shared pool.

Typical embedding (the CLI's ``domainnet serve`` does exactly this)::

    from repro.api.workspace import Workspace
    from repro.serving.http import start_server

    workspace = Workspace(execution=config)
    workspace.attach("zoo", zoo_lake)
    workspace.attach("cars", cars_lake)
    server = start_server(workspace, port=0)    # ephemeral port
    print(server.url)
    ...
    server.drain()              # joins + workspace.close()

Constructing the server with a bare :class:`HomographIndex` still
works: it is adopted into a one-lake workspace named ``"default"``.
"""

from __future__ import annotations

import contextlib
import gzip
import hmac
import io
import json
import selectors
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from ..api import DetectRequest, HomographIndex, available_measures
from ..api.workspace import (
    DuplicateLakeError,
    UnknownLakeError,
    Workspace,
    WorkspaceError,
)
from ..datalake.lake import LakeError
from ..datalake.table import Table, TableError
from ..snapshot.store import SnapshotError
from .jobs import (
    DEFAULT_JOB_TTL,
    DEFAULT_MAX_JOBS,
    JobManager,
    JobOverflowError,
    UnknownJobError,
)

#: Default cap on a request body; protects the JSON parser, not disk.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Default concurrent compute requests admitted before 503s start.
DEFAULT_MAX_CONCURRENT = 32
#: Default ``Retry-After`` (seconds) sent with a 503 rejection.
DEFAULT_RETRY_AFTER = 1
#: Default per-connection socket timeout (seconds): a stalled client
#: must not wedge a non-daemon handler thread forever.
DEFAULT_REQUEST_TIMEOUT = 60.0
#: Default (and maximum) ``limit`` for ranking pages.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 10_000
#: Name a bare index is mounted under when the server adopts it.
DEFAULT_LAKE_NAME = "default"
#: Query values accepted as "true" for the ``async`` flag.
_TRUTHY = {"1", "true", "yes", "on"}


class _HTTPProblem(Exception):
    """An error that maps directly onto a structured HTTP response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
        lake: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.lake = lake


class _Admission:
    """One granted admission slot; hand it back to the gate's release."""

    __slots__ = ("lake", "follower")

    def __init__(self, lake: str, follower: bool) -> None:
        self.lake = lake
        self.follower = follower


class _AdmissionGate:
    """Two-level bounded admission: a global cap plus per-lake quotas.

    Plain counters under one lock (not semaphores) so occupancy stays
    observable for ``/stats`` and rejections never block a handler
    thread.  Admission for a *fresh* computation requires both levels:

    * global — at most ``limit`` fresh computations in flight;
    * per lake — at most the lake's *effective quota* of them, which
      is the explicit per-lake override when one is set, else the
      gate-wide ``lake_quota``, else the derived fair share
      ``max(1, limit // n_lakes)``.

    A global rejection answers ``over-capacity`` (legacy code); a
    quota rejection answers ``lake-over-capacity`` with the lake's
    name, so a client hammering one lake learns *its* lake is the
    problem while siblings keep serving.  The global check runs
    first: when both levels are saturated the answer is the
    service-wide condition, and a single-lake server (quota ==
    limit) keeps its PR-4 error surface bit-for-bit.

    *Warm* requests — the caller proved the response is cached or
    coalescible onto an in-flight computation — cost no pool work, so
    under overload they are admitted ahead of fresh computations
    through a separate follower lane (its own ``limit``-sized bound,
    only there to cap handler threads).  ``lake_quota=0`` disables
    fairness *and* the follower lane: one global gate over every
    request, exactly the pre-quota behavior (the load harness uses it
    as the starvation control).
    """

    def __init__(
        self, limit: int, lake_quota: Optional[int] = None
    ) -> None:
        self.limit = max(1, limit)
        self.lake_quota = lake_quota
        self._lock = threading.Lock()
        self._fresh = 0
        self._followers = 0
        self._lake_fresh: Dict[str, int] = {}
        self._lake_rejected: Dict[str, int] = {}
        self._rejected_global = 0
        self._admitted_followers = 0

    @property
    def fair(self) -> bool:
        """Whether per-lake quotas (and the follower lane) are on."""
        return self.lake_quota != 0

    def effective_quota(
        self, n_lakes: int, override: Optional[int] = None
    ) -> Optional[int]:
        """The quota one lake is held to right now (``None`` = off).

        Resolution order: the lake's explicit ``override``, else the
        gate-wide ``lake_quota``, else the derived share
        ``max(1, limit // n_lakes)`` — the floor of one slot
        guarantees every mounted lake can always make progress.
        """
        if not self.fair:
            return None
        if override is not None:
            return max(1, override)
        if self.lake_quota is not None:
            return max(1, self.lake_quota)
        return max(1, self.limit // max(1, n_lakes))

    def try_acquire(
        self,
        lake: str,
        n_lakes: int = 1,
        quota: Optional[int] = None,
        warm: bool = False,
    ) -> Union[_Admission, str]:
        """Claim a slot without blocking.

        Returns an :class:`_Admission` token (pass it to
        :meth:`release`) or the rejection scope: ``"global"`` when
        the global cap is exhausted, ``"lake"`` when only this lake's
        quota is.  ``quota`` is the lake's explicit override (or
        ``None``); ``warm`` routes the request through the follower
        lane when fairness is on.
        """
        with self._lock:
            if warm and self.fair:
                if self._followers < self.limit:
                    self._followers += 1
                    self._admitted_followers += 1
                    return _Admission(lake, follower=True)
                # Lane full (pathological): fall through to the
                # fresh-computation rules rather than fail outright.
            if self._fresh >= self.limit:
                self._rejected_global += 1
                return "global"
            effective = self.effective_quota(n_lakes, quota)
            if (
                effective is not None
                and self._lake_fresh.get(lake, 0) >= effective
            ):
                self._lake_rejected[lake] = (
                    self._lake_rejected.get(lake, 0) + 1
                )
                return "lake"
            self._fresh += 1
            self._lake_fresh[lake] = self._lake_fresh.get(lake, 0) + 1
            return _Admission(lake, follower=False)

    def release(self, admission: _Admission) -> None:
        """Return the slot claimed by :meth:`try_acquire`."""
        with self._lock:
            if admission.follower:
                self._followers -= 1
                return
            self._fresh -= 1
            remaining = self._lake_fresh.get(admission.lake, 0) - 1
            if remaining <= 0:
                # Drop zeroed entries so detached lakes do not pin
                # dict slots forever on a long-lived server.
                self._lake_fresh.pop(admission.lake, None)
            else:
                self._lake_fresh[admission.lake] = remaining

    @property
    def in_flight(self) -> int:
        """Requests currently holding a slot (fresh + followers)."""
        with self._lock:
            return self._fresh + self._followers

    @property
    def rejected(self) -> int:
        """Total rejections, both scopes (legacy ``/stats`` counter)."""
        with self._lock:
            return (
                self._rejected_global
                + sum(self._lake_rejected.values())
            )

    def stats(
        self, lake_quotas: Dict[str, Optional[int]]
    ) -> Dict[str, object]:
        """The ``gate`` block of ``GET /stats``.

        ``lake_quotas`` maps every *mounted* lake to its explicit
        override (or ``None``); lakes that were detached after
        accruing counters stay listed so their rejection history
        remains visible.
        """
        n_lakes = max(1, len(lake_quotas))
        with self._lock:
            names = (
                set(lake_quotas)
                | set(self._lake_fresh)
                | set(self._lake_rejected)
            )
            lakes = {
                name: {
                    "in_flight": self._lake_fresh.get(name, 0),
                    "quota": self.effective_quota(
                        n_lakes, lake_quotas.get(name)
                    ),
                    "rejected": self._lake_rejected.get(name, 0),
                }
                for name in sorted(names)
            }
            return {
                "limit": self.limit,
                "lake_quota": self.lake_quota,
                "fair": self.fair,
                "in_flight": self._fresh + self._followers,
                "fresh_in_flight": self._fresh,
                "followers_in_flight": self._followers,
                "admitted_followers": self._admitted_followers,
                "rejected_global": self._rejected_global,
                "lakes": lakes,
            }


class DrainingThreadingHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` with keep-alive-aware draining.

    The transport plumbing PR 4/5 hardened for the workspace server,
    extracted so other front-ends (the cluster router) inherit it
    verbatim: non-daemon handler threads joined on close, idle
    keep-alive sockets tracked and shut down on drain, a race-free
    ``serve_forever``/``drain`` handshake, and a background accept
    loop.  Subclasses call :meth:`_drain_transport` from their own
    ``drain`` and hang their payload teardown after it.
    """

    # Handler threads are joined on server_close(): a drain must wait
    # for in-flight requests instead of abandoning them mid-response.
    daemon_threads = False
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a burst of
    # concurrent clients dialing at once (the load harness spawns its
    # whole worker fleet simultaneously) overflows that and surfaces
    # as connection resets on first write.  The kernel caps this at
    # net.core.somaxconn, so a large value is safe everywhere.
    request_queue_size = 128
    #: Name of the background accept-loop thread.
    background_thread_name = "homograph-http"

    def __init__(
        self,
        address: Tuple[str, int],
        handler_class,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        quiet: bool = True,
    ) -> None:
        if not request_timeout or request_timeout <= 0:
            raise ValueError(
                f"invalid request_timeout {request_timeout!r}: "
                "expected a positive number of seconds"
            )
        super().__init__(address, handler_class)
        self.request_timeout = request_timeout
        self.quiet = quiet
        self._loop_started = threading.Event()
        self._draining = False
        self._drain_lock = threading.Lock()
        self._idle_lock = threading.Lock()
        self._idle_sockets: set = set()
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Keep-alive bookkeeping
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has started."""
        with self._drain_lock:
            return self._draining

    def track_idle(self, connection) -> bool:
        """Register a keep-alive socket about to wait for a request.

        Returns ``False`` when the server is draining — the handler
        must close instead of reading, or it would hold the drain's
        thread-join hostage until the socket timeout.
        """
        with self._idle_lock:
            if self._draining:
                return False
            self._idle_sockets.add(connection)
            return True

    def untrack_idle(self, connection) -> None:
        """Unregister a socket that got a request (or hit EOF)."""
        with self._idle_lock:
            self._idle_sockets.discard(connection)

    def _shutdown_idle_sockets(self) -> None:
        """Wake idle keep-alive readers so their threads can exit."""
        with self._idle_lock:
            idle = list(self._idle_sockets)
        for connection in idle:
            with contextlib.suppress(OSError):
                connection.shutdown(socket.SHUT_RDWR)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the accept loop; returns after :meth:`drain`/``shutdown``.

        The started-flag flip and the draining check share the drain
        lock: either a racing :meth:`drain` sees the flag and waits
        for the loop via ``shutdown()``, or this call sees the drain
        and never touches the (already closed) socket.
        """
        with self._drain_lock:
            if self._draining:
                return
            self._loop_started.set()
        super().serve_forever(poll_interval)

    def start_background(self) -> "DrainingThreadingHTTPServer":
        """Run :meth:`serve_forever` on a daemon thread; returns self."""
        thread = threading.Thread(
            target=self.serve_forever,
            name=self.background_thread_name,
            daemon=True,
        )
        self._thread = thread
        thread.start()
        return self

    def _drain_transport(self) -> None:
        """Stop accepting, wake idle sockets, join every handler thread.

        Safe to call from any thread and idempotent; subclasses'
        ``drain`` methods run their payload teardown after this
        returns (every in-flight response has been delivered by then).
        """
        with self._drain_lock:
            already = self._draining
            self._draining = True
        if not already:
            self._shutdown_idle_sockets()
            if self._loop_started.is_set():
                self.shutdown()
            self.server_close()
        if self._thread is not None and self._thread is not \
                threading.current_thread():
            self._thread.join()

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close."""
        self._drain_transport()

    def __enter__(self) -> "DrainingThreadingHTTPServer":
        """Enter a ``with`` block; the server itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Drain on ``with``-block exit."""
        self.drain()


class HomographHTTPServer(DrainingThreadingHTTPServer):
    """The serving front-end; see the module docstring for the API.

    Parameters
    ----------
    workspace:
        The :class:`~repro.api.Workspace` of lakes every handler
        thread queries — or a bare :class:`HomographIndex`, adopted
        into a fresh one-lake workspace under the name ``"default"``.
        The server *owns* the workspace lifecycle by default:
        :meth:`drain` closes it (pass ``close_index=False`` to keep
        it).
    address:
        ``(host, port)`` to bind; port ``0`` picks an ephemeral port
        (read it back from :attr:`url` / ``server_address``).
    max_body_bytes / max_concurrent / retry_after:
        The protocol limits documented in the module docstring.
    lake_quota:
        Per-lake cap on concurrently admitted fresh computations.
        ``None`` (default) derives each lake's fair share of the
        global gate — ``max(1, max_concurrent // n_lakes)``,
        re-derived as lakes mount and unmount; an explicit integer
        pins every lake (per-lake overrides from
        :meth:`Workspace.set_quota` or the ``POST /lakes`` mount
        option still win); ``0`` disables per-lake fairness entirely,
        restoring the single global gate.
    request_timeout:
        Per-connection socket timeout in seconds.  A client that
        stalls mid-request-body gets a 408 ``request-timeout`` and
        its connection closed instead of wedging a handler thread
        (and, between requests, the idle keep-alive wait uses the
        same bound).
    auth_token:
        When set, every route except ``GET /healthz`` requires
        ``Authorization: Bearer <token>``; failures are structured
        401 responses.
    job_ttl / max_jobs:
        Seconds a finished async job stays pollable at
        ``GET /jobs/<id>`` before eviction, and the cap on tracked
        jobs (submits past it are 503s with ``Retry-After``).
    job_dir:
        Optional directory finished async-job payloads are spilled
        to and restored from across restarts (see
        :class:`~repro.serving.jobs.JobManager`); ``domainnet serve
        --snapshot`` points it at the snapshot's ``jobs/`` directory.
    oplogs:
        Optional mapping of lake name to a mutation log (duck-typed;
        the cluster package's :class:`~repro.cluster.MutationLog`).
        When a lake has one, every applied ``POST /tables`` /
        ``DELETE /tables/<t>`` is recorded to it *atomically with the
        mutation* (the log's lock brackets both), the mutation
        response gains an ``"oplog_seq"`` field, and ``GET /oplog``
        serves the recorded entries to replicas; lakes without one
        answer 404 ``no-oplog`` there.  The logs are closed on
        :meth:`drain`.
    """

    def __init__(
        self,
        workspace: Union[Workspace, HomographIndex],
        address: Tuple[str, int] = ("127.0.0.1", 0),
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
        retry_after: int = DEFAULT_RETRY_AFTER,
        quiet: bool = True,
        auth_token: Optional[str] = None,
        job_ttl: float = DEFAULT_JOB_TTL,
        max_jobs: int = DEFAULT_MAX_JOBS,
        job_dir: Optional[str] = None,
        lake_quota: Optional[int] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        oplogs: Optional[Dict[str, object]] = None,
    ) -> None:
        if lake_quota is not None and (
            isinstance(lake_quota, bool)
            or not isinstance(lake_quota, int)
            or lake_quota < 0
        ):
            raise ValueError(
                f"invalid lake_quota {lake_quota!r}: expected None, "
                "0 (fairness off), or an integer >= 1"
            )
        super().__init__(
            address,
            HomographRequestHandler,
            request_timeout=request_timeout,
            quiet=quiet,
        )
        if isinstance(workspace, HomographIndex):
            index, workspace = workspace, Workspace()
            workspace.attach_index(DEFAULT_LAKE_NAME, index)
        self.workspace = workspace
        self.jobs = JobManager(
            ttl=job_ttl, max_jobs=max_jobs, persist_dir=job_dir
        )
        self.max_body_bytes = max_body_bytes
        self.retry_after = retry_after
        self.auth_token = auth_token
        self.oplogs: Dict[str, object] = dict(oplogs or {})
        self.gate = _AdmissionGate(max_concurrent, lake_quota=lake_quota)
        self._served = 0
        self._errors = 0
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def index(self) -> Optional[HomographIndex]:
        """The default lake's index (legacy single-lake accessor)."""
        return self.workspace.default_index()

    def count(self, ok: bool) -> None:
        """Record one completed response for ``/stats``."""
        with self._counters_lock:
            if ok:
                self._served += 1
            else:
                self._errors += 1

    def http_stats(self) -> Dict[str, object]:
        """HTTP-layer counters (the ``http`` block of ``GET /stats``).

        The legacy flat counters stay (``rejected`` totals both
        rejection scopes); ``gate`` breaks admission down per lake —
        occupancy, effective quota, and rejections — plus the
        follower-lane counters.
        """
        with self._counters_lock:
            served, errors = self._served, self._errors
        workspace = self.workspace
        quotas = {
            name: workspace.quota(name) for name in workspace.names()
        }
        return {
            "served": served,
            "errors": errors,
            "rejected": self.gate.rejected,
            "in_flight": self.gate.in_flight,
            "max_concurrent": self.gate.limit,
            "max_body_bytes": self.max_body_bytes,
            "auth": self.auth_token is not None,
            "gate": self.gate.stats(quotas),
        }

    def oplog_for(self, lake_name: str):
        """The mutation log recording ``lake_name`` (or ``None``)."""
        return self.oplogs.get(lake_name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, close_index: bool = True) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Safe to call from any thread and idempotent.  Steps: stop the
        accept loop, shut down idle keep-alive sockets (their handler
        threads see EOF and exit), close the listening socket and join
        every in-flight handler thread (their responses are delivered,
        not cut), then close the workspace — every index drains its
        admitted ``detect`` calls, queued async jobs land in their
        cancelled terminal state, and the shared worker pool plus its
        shared-memory segments are released last.  Pass
        ``close_index=False`` to keep the workspace (and its indexes)
        alive for reuse.
        """
        self._drain_transport()
        # No handler can be recording once the transport is drained;
        # close the oplogs before (possibly) republishing snapshots.
        for log in self.oplogs.values():
            close = getattr(log, "close", None)
            if close is not None:
                close()
        # Not gated on first-drain: a first drain(close_index=False)
        # must not turn a later drain(close_index=True) into a leak.
        # workspace.close() and jobs.drain() are both idempotent.
        if close_index:
            self.workspace.close()
            # Queued jobs were cancelled by the workspace close; wait
            # for stragglers so their snapshots are terminal.
            self.jobs.drain(timeout=30.0)


def start_server(
    workspace: Union[Workspace, HomographIndex],
    host: str = "127.0.0.1",
    port: int = 0,
    **options,
) -> HomographHTTPServer:
    """Construct a server and run its accept loop in the background.

    ``workspace`` is a :class:`~repro.api.Workspace` or a bare
    :class:`HomographIndex` (adopted as the one-lake workspace).  The
    accept loop runs on a daemon thread; the returned server is
    already reachable at ``server.url``.  Call
    :meth:`HomographHTTPServer.drain` (or use the server as a context
    manager) to stop it and close the workspace.
    """
    server = HomographHTTPServer(workspace, (host, port), **options)
    return server.start_background()


class KeepAliveRequestHandler(BaseHTTPRequestHandler):
    """Keep-alive handler plumbing shared by the serving front-ends.

    Pairs with :class:`DrainingThreadingHTTPServer`: one thread per
    connection serving its whole keep-alive lifetime, idle waits
    registered with the server so a drain can cut them, and the
    pipelining/buffered-bytes corner cases handled once.  Subclasses
    implement the ``do_*`` verbs.
    """

    # HTTP/1.1 with keep-alive: every response carries an exact
    # Content-Length (errors included), so one connection can carry
    # many requests.  Idle connections are tracked with the server
    # and shut down on drain — joining handler threads never waits on
    # an idle socket.
    protocol_version = "HTTP/1.1"
    # Per-connection socket timeout: a stalled client (headers sent,
    # body never arriving) must not wedge a non-daemon handler thread
    # forever — drain() joins them all.  setup() replaces this class
    # fallback with the server's configured request_timeout.
    timeout = DEFAULT_REQUEST_TIMEOUT

    def setup(self) -> None:
        """Apply the server's request timeout before the socket setup.

        ``StreamRequestHandler.setup`` reads ``self.timeout`` when it
        configures the connection, so the override must land first.
        """
        self.timeout = self.server.request_timeout
        super().setup()

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Route access logs through the server's quiet flag."""
        if not self.server.quiet:
            super().log_message(format, *args)

    def handle(self) -> None:
        """Serve the connection's requests until close or drain.

        Between requests the socket is registered with the server as
        *idle* so :meth:`HomographHTTPServer.drain` can shut it down;
        it is unregistered the moment request bytes arrive, so a
        drain never cuts a request that is already being processed —
        its handler thread is simply joined and the response
        delivered.
        """
        self.close_connection = True
        self.handle_one_request()
        if self.close_connection:
            return
        # One selector per connection, registered once: the idle wait
        # runs between every keep-alive request, so per-wait selector
        # construction would churn a kernel object per request.
        # selectors (poll/epoll) rather than select.select, which
        # raises on fds past FD_SETSIZE under many connections.
        try:
            selector = selectors.DefaultSelector()
        except OSError:  # pragma: no cover - fd exhaustion
            return
        try:
            selector.register(self.connection, selectors.EVENT_READ)
        except (OSError, ValueError):  # pragma: no cover - closed
            selector.close()
            return
        try:
            while not self.close_connection:
                if not self.server.track_idle(self.connection):
                    break  # draining: do not start another idle read
                try:
                    ready = self._await_request(selector)
                finally:
                    self.server.untrack_idle(self.connection)
                if not ready:
                    break
                self.handle_one_request()
        finally:
            selector.close()

    def _await_request(self, selector) -> bool:
        """Block until the idle socket has request bytes (or dies).

        Returns ``False`` when the connection should close instead:
        the idle timeout expired, the socket failed, or a drain shut
        it down (which makes it readable — the subsequent read sees
        EOF and closes cleanly, so readability is returned as
        ``True`` there).
        """
        if self._has_buffered_bytes():
            return True
        try:
            return bool(selector.select(self.timeout))
        except (OSError, ValueError):  # closed under us
            return False

    def _has_buffered_bytes(self) -> bool:
        """Whether ``rfile`` already buffered part of the next request.

        A pipelining client can put two requests in one segment; the
        buffered reader then over-reads the second one, and the raw
        socket never turns readable for ``select``.  Peek with the
        socket briefly non-blocking so an empty buffer answers
        ``False`` instead of blocking.
        """
        try:
            self.connection.settimeout(0)
            try:
                return bool(self.rfile.peek(1))
            finally:
                self.connection.settimeout(self.timeout)
        except (BlockingIOError, InterruptedError):
            return False
        except (OSError, ValueError):  # closed under us
            return False


class HomographRequestHandler(KeepAliveRequestHandler):
    """Routes one HTTP request onto the shared workspace.

    Instantiated per connection by :class:`HomographHTTPServer` (one
    thread each, serving the connection's whole keep-alive lifetime);
    every route is a small parse step around an index call, with
    failures normalized into :class:`_HTTPProblem`.
    """

    server_version = "DomainNetServe/2.0"

    def _accepts_gzip(self) -> bool:
        """Whether the request advertised ``Accept-Encoding: gzip``.

        Honors q-values: ``gzip;q=0`` is an explicit refusal, not an
        acceptance.
        """
        raw = self.headers.get("Accept-Encoding", "")
        for token in raw.split(","):
            name, _, params = token.partition(";")
            if name.strip().lower() not in ("gzip", "x-gzip"):
                continue
            quality = 1.0
            for param in params.split(";"):
                key, _, value = param.partition("=")
                if key.strip().lower() == "q":
                    try:
                        quality = float(value.strip())
                    except ValueError:
                        quality = 0.0
            if quality > 0.0:
                # Any acceptable gzip-family token wins; keep
                # scanning past refused aliases ('x-gzip;q=0, gzip').
                return True
        return False

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
        compress: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = dict(extra_headers or {})
        if compress:
            # Negotiated compression: the uncompressed shape stays
            # available to clients that did not ask for gzip.
            headers.setdefault("Vary", "Accept-Encoding")
            if self._accepts_gzip():
                buffer = io.BytesIO()
                # mtime=0 keeps equal payloads byte-identical.
                with gzip.GzipFile(
                    fileobj=buffer, mode="wb", mtime=0
                ) as stream:
                    stream.write(body)
                body = buffer.getvalue()
                headers["Content-Encoding"] = "gzip"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        # Count before the body write: a client that reads this
        # response and immediately asks /stats must see it counted.
        self.server.count(ok=status < 400)
        self.wfile.write(body)

    def _send_problem(self, problem: _HTTPProblem) -> None:
        headers = {}
        if problem.retry_after is not None:
            headers["Retry-After"] = str(problem.retry_after)
        if problem.status == 401:
            headers["WWW-Authenticate"] = "Bearer"
        # An errored request may leave an unread body on the socket
        # (auth failures, unknown routes); reusing the connection
        # would parse those bytes as the next request line.  Close it.
        self.close_connection = True
        headers["Connection"] = "close"
        error: Dict[str, object] = {
            "status": problem.status,
            "code": problem.code,
            "message": problem.message,
        }
        if problem.lake is not None:
            error["lake"] = problem.lake
        self._send_json(
            problem.status, {"error": error}, extra_headers=headers
        )

    def _read_json_body(self) -> Dict[str, object]:
        """Read and parse the request body, enforcing the size cap."""
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HTTPProblem(
                411, "length-required",
                "request must carry a Content-Length header",
            ) from None
        if length < 0:
            # rfile.read(-1) would block until the client hangs up.
            raise _HTTPProblem(
                400, "malformed-json",
                f"invalid Content-Length {length}",
            )
        if length > self.server.max_body_bytes:
            # Drain (a bounded amount of) the oversized body first so
            # the client can finish sending and read the 413 instead
            # of hitting a connection reset mid-upload.
            remaining = min(length, 1 << 20)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _HTTPProblem(
                413, "body-too-large",
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
            )
        body = self.rfile.read(length) if length else b""
        self._body_consumed = True
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPProblem(
                400, "malformed-json",
                f"request body is not valid JSON: {error}",
            ) from None
        if not isinstance(payload, dict):
            raise _HTTPProblem(
                400, "malformed-json",
                "request body must be a JSON object",
            )
        return payload

    def _authorize(self, segments: List[str]) -> None:
        """Enforce bearer-token auth when the server has a token.

        ``GET /healthz`` and ``GET /version`` stay open so liveness
        probes and the supervisor's compatibility check keep working
        without credentials.
        """
        token = self.server.auth_token
        if token is None or segments in (["healthz"], ["version"]):
            return
        supplied = self.headers.get("Authorization", "")
        expected = f"Bearer {token}"
        if not hmac.compare_digest(
            supplied.encode("utf-8"), expected.encode("utf-8")
        ):
            raise _HTTPProblem(
                401, "unauthorized",
                "missing or invalid bearer token; send "
                "'Authorization: Bearer <token>'",
            )

    @staticmethod
    def _check_open(index: HomographIndex) -> None:
        if index.closed:
            raise _HTTPProblem(
                409, "index-closed",
                "the index has been closed; the service is draining",
            )

    def _admit(
        self, lake_name: str, warm: bool
    ) -> _Admission:
        """Claim an admission slot or fail with 503 + Retry-After.

        ``warm`` (the caller probed :meth:`HomographIndex.is_warm`)
        routes the request through the gate's follower lane — cached
        or coalescible responses are admitted ahead of fresh
        computations under overload.  A global rejection keeps the
        legacy ``over-capacity`` code; a quota rejection answers
        ``lake-over-capacity`` with the lake's name in the body.
        """
        workspace = self.server.workspace
        gate = self.server.gate
        outcome = gate.try_acquire(
            lake_name,
            n_lakes=len(workspace),
            quota=workspace.quota(lake_name),
            warm=warm,
        )
        if isinstance(outcome, _Admission):
            return outcome
        if outcome == "lake":
            quota = gate.effective_quota(
                max(1, len(workspace)), workspace.quota(lake_name)
            )
            raise _HTTPProblem(
                503, "lake-over-capacity",
                f"lake {lake_name!r} is over its quota of {quota} "
                f"concurrent computation(s); sibling lakes are "
                f"unaffected",
                retry_after=self.server.retry_after,
                lake=lake_name,
            )
        raise _HTTPProblem(
            503, "over-capacity",
            f"all {gate.limit} compute slots are busy",
            retry_after=self.server.retry_after,
            lake=lake_name,
        )

    @staticmethod
    def _check_measure(measure: str) -> None:
        if measure not in available_measures():
            raise _HTTPProblem(
                404, "unknown-measure",
                f"unknown measure {measure!r}; available: "
                f"{', '.join(available_measures())}",
            )

    def _detect(
        self,
        lake_name: str,
        index: HomographIndex,
        request: DetectRequest,
    ):
        """Run one admitted detection, mapping index errors to HTTP."""
        self._check_measure(request.measure)
        self._check_open(index)
        admission = self._admit(lake_name, warm=index.is_warm(request))
        try:
            return index.detect(request)
        except RuntimeError as error:
            if index.closed:
                raise _HTTPProblem(
                    409, "index-closed", str(error)
                ) from None
            raise
        finally:
            self.server.gate.release(admission)

    # -- routing -------------------------------------------------------
    def _discard_unread_body(self) -> None:
        """Drain a request body no handler read, keeping framing valid.

        A GET/DELETE may legally carry a body; if nobody consumed it,
        its bytes would be parsed as the next request line on this
        keep-alive connection.  Small leftovers are read and dropped;
        oversized or chunked ones just close the connection.
        """
        if self.close_connection or self._body_consumed:
            return
        if self.headers.get("Transfer-Encoding"):
            self.close_connection = True  # framing we do not speak
            return
        try:
            remaining = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self.close_connection = True
            return
        if remaining <= 0:
            return
        if remaining > 1 << 20:
            self.close_connection = True  # not worth draining
            return
        try:
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
        except OSError:
            # The response already went out; never raise past here —
            # a second (error) response would corrupt the stream.
            self.close_connection = True

    def _route(self, method: str) -> None:
        parts = urlsplit(self.path)
        # Split on raw slashes first, then percent-decode each
        # segment: clients quote() names (tables, measures, job ids),
        # and an encoded %2F stays inside its segment.
        segments = [
            unquote(s) for s in parts.path.split("/") if s
        ]
        query = parse_qs(parts.query)
        self._body_consumed = False
        try:
            self._authorize(segments)
            self._dispatch(method, segments, query)
            self._discard_unread_body()
        except _HTTPProblem as problem:
            # The client may have hung up while its request was being
            # rejected (a stalled body closed under us reads as
            # malformed): deliver the verdict best-effort, never let
            # the failed delivery escape as a second error.
            try:
                self._send_problem(problem)
            except (ConnectionError, TimeoutError, OSError):
                self.close_connection = True
        except ConnectionError:  # pragma: no cover - client went away
            self.close_connection = True  # broken pipe: stop reusing
        except TimeoutError:
            # The client stalled mid-request (body bytes never came).
            # Its *receive* side may still be reading: attempt a 408
            # so it learns why, but never let a second socket error
            # escape — the connection closes either way.
            try:
                self._send_problem(_HTTPProblem(
                    408, "request-timeout",
                    f"no request bytes for {self.timeout:g}s; "
                    f"closing the connection",
                ))
            except (ConnectionError, TimeoutError, OSError):
                self.close_connection = True
        except Exception as error:  # noqa: BLE001 - last-resort mapping
            # The connection may already be half-written or dead (e.g.
            # the failure *was* a mid-response disconnect): attempt the
            # 500, but never let a second write error escape into
            # socketserver's stderr traceback path.
            try:
                self._send_problem(_HTTPProblem(
                    500, "internal-error",
                    f"{type(error).__name__}: {error}",
                ))
            except (ConnectionError, TimeoutError, OSError):
                self.close_connection = True  # pragma: no cover

    def _dispatch(self, method: str, segments: List[str], query) -> None:
        """Top-level router: global, ``/lakes``, ``/jobs``, legacy."""
        head = segments[0] if segments else ""
        if head == "healthz" and len(segments) == 1:
            if method != "GET":
                raise self._unknown_route(method, segments)
            return self._handle_healthz()
        if head == "stats" and len(segments) == 1:
            if method != "GET":
                raise self._unknown_route(method, segments)
            return self._handle_stats()
        if head == "version" and len(segments) == 1:
            if method != "GET":
                raise self._unknown_route(method, segments)
            return self._handle_version()
        if head == "lakes":
            if len(segments) == 1:
                if method == "GET":
                    return self._handle_lakes()
                if method == "POST":
                    return self._handle_mount_lake()
                raise self._unknown_route(method, segments)
            name, rest = segments[1], segments[2:]
            if method == "DELETE" and not rest:
                return self._handle_unmount_lake(name)
            return self._lake_route(method, name, rest, query)
        if head == "jobs":
            if len(segments) != 2:
                raise self._unknown_route(method, segments)
            if method == "GET":
                return self._handle_job_poll(segments[1])
            if method == "DELETE":
                return self._handle_job_cancel(segments[1])
            raise self._unknown_route(method, segments)
        # Legacy un-prefixed routes resolve against the default lake.
        return self._lake_route(method, None, segments, query)

    @staticmethod
    def _unknown_route(method: str, segments: List[str]) -> _HTTPProblem:
        return _HTTPProblem(
            404, "unknown-route",
            f"no such endpoint: {method} /{'/'.join(segments)}",
        )

    def _resolve_lake(
        self, name: Optional[str]
    ) -> Tuple[str, HomographIndex]:
        """Map a lake name (``None`` = default) to its index or 404."""
        workspace = self.server.workspace
        if name is None:
            default = workspace.default_name
            if default is None:
                raise _HTTPProblem(
                    404, "unknown-lake",
                    "no lakes are mounted on this server",
                )
            name = default
        try:
            return name, workspace.get(name)
        except UnknownLakeError:
            raise _HTTPProblem(
                404, "unknown-lake",
                f"no lake named {name!r}; mounted: "
                f"{', '.join(workspace.names()) or '(none)'}",
            ) from None

    def _lake_route(
        self,
        method: str,
        name: Optional[str],
        rest: List[str],
        query,
    ) -> None:
        """Dispatch one lake-scoped operation (legacy or namespaced)."""
        lake_name, index = self._resolve_lake(name)
        head = rest[0] if rest else ""
        if method == "POST" and rest == ["detect"]:
            return self._handle_detect(lake_name, index, query)
        if method == "GET" and head == "ranking" and len(rest) == 2:
            return self._handle_ranking(lake_name, index, rest[1], query)
        if method == "POST" and rest == ["tables"]:
            return self._handle_add_table(lake_name, index)
        if method == "DELETE" and head == "tables" and len(rest) == 2:
            return self._handle_remove_table(lake_name, index, rest[1])
        if method == "GET" and rest == ["oplog"]:
            return self._handle_oplog(lake_name, query)
        if method == "GET" and rest == ["healthz"]:
            return self._handle_lake_healthz(lake_name, index)
        if method == "GET" and rest == ["stats"]:
            return self._send_json(200, index.stats())
        prefix = [] if name is None else ["lakes", name]
        raise self._unknown_route(method, prefix + rest)

    # -- global routes -------------------------------------------------
    def _handle_healthz(self) -> None:
        index = self.server.index
        if self.server.workspace.closed or (
            index is not None and index.closed
        ):
            self._send_json(503, {"status": "closed"})
            return
        names = self.server.workspace.names()
        self._send_json(
            200,
            {
                "status": "ok",
                "tables": 0 if index is None else len(index.lake),
                "lakes": list(names),
            },
        )

    def _handle_stats(self) -> None:
        """Merged snapshot: default-lake counters + per-lake blocks."""
        workspace = self.server.workspace
        workspace_stats = workspace.stats()
        default = workspace_stats["default_lake"]
        # Legacy shape first: the default lake's counters stay at the
        # top level so single-lake dashboards keep reading.  Reuse
        # the snapshot already taken for the `lakes` block instead of
        # walking the index's lock twice per monitoring poll.
        stats: Dict[str, object] = (
            dict(workspace_stats["lakes"][default])
            if default is not None
            else {"closed": workspace.closed}
        )
        stats["lakes"] = workspace_stats["lakes"]
        stats["default_lake"] = workspace_stats["default_lake"]
        stats["workspace"] = {
            "closed": workspace_stats["closed"],
            "pool": workspace_stats["pool"],
        }
        stats["jobs"] = self.server.jobs.stats()
        stats["http"] = self.server.http_stats()
        self._send_json(200, stats)

    def _handle_version(self) -> None:
        """``GET /version``: everything a replica must agree on.

        The cluster supervisor compares these payloads across its
        fleet and refuses to mix incompatible replicas — a library or
        snapshot-format skew between replicas would silently break
        the bit-identical-convergence contract.
        """
        import platform

        import numpy

        from .. import __version__
        from ..snapshot.store import FORMAT_VERSION

        self._send_json(200, {
            "library": __version__,
            "snapshot_format": FORMAT_VERSION,
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "server": self.server_version,
        })

    def _handle_lakes(self) -> None:
        workspace = self.server.workspace
        default = workspace.default_name
        lakes = []
        for name in workspace.names():
            try:
                index = workspace.get(name)
            except UnknownLakeError:  # pragma: no cover - detach race
                continue
            lakes.append({
                "name": name,
                "tables": len(index.lake),
                "default": name == default,
                "closed": index.closed,
            })
        self._send_json(
            200, {"lakes": lakes, "default": default}
        )

    def _handle_mount_lake(self) -> None:
        """``POST /lakes``: mount a CSV directory or snapshot at runtime.

        The expensive part — loading CSVs, or verifying and mmapping a
        snapshot — happens inside :meth:`Workspace.attach` *outside*
        the membership lock, so mounting a large lake never stalls
        sibling lakes' requests.
        """
        payload = self._read_json_body()
        name = payload.get("name")
        path = payload.get("path")
        quota = payload.get("quota")
        if not isinstance(name, str) or not isinstance(path, str):
            raise _HTTPProblem(
                400, "invalid-mount",
                'mount payloads look like {"name": "zoo", '
                '"path": "/data/zoo"} where path is a CSV directory '
                "or a snapshot directory (optional \"quota\": this "
                "lake's admission quota, an integer >= 1)",
            )
        workspace = self.server.workspace
        try:
            index = workspace.attach(name, path, quota=quota)
        except DuplicateLakeError as error:
            raise _HTTPProblem(
                409, "duplicate-lake", str(error)
            ) from None
        except ValueError as error:  # bad lake name
            raise _HTTPProblem(
                400, "invalid-mount", str(error)
            ) from None
        except SnapshotError as error:
            raise _HTTPProblem(
                400, "invalid-snapshot",
                f"snapshot at {path!r} cannot be mounted: {error}",
            ) from None
        except WorkspaceError as error:
            raise _HTTPProblem(
                409, "workspace-closed", str(error)
            ) from None
        except (LakeError, OSError) as error:
            raise _HTTPProblem(
                400, "invalid-lake-path",
                f"cannot load a lake from {path!r}: {error}",
            ) from None
        snapshot = index.snapshot_path
        self._send_json(201, {
            "lake": name,
            "tables": len(index.lake),
            "snapshot": None if snapshot is None else str(snapshot),
            "quota": quota,
        })

    def _handle_unmount_lake(self, name: str) -> None:
        """``DELETE /lakes/<name>``: detach and close one lake.

        The detached index drains its admitted calls and releases its
        graph export (shared-memory segments or snapshot mmap
        handles); siblings keep serving throughout.
        """
        workspace = self.server.workspace
        try:
            workspace.detach(name)
        except UnknownLakeError:
            raise _HTTPProblem(
                404, "unknown-lake",
                f"no lake named {name!r}; mounted: "
                f"{', '.join(workspace.names()) or '(none)'}",
            ) from None
        self._send_json(200, {"lake": name, "detached": True})

    def _handle_lake_healthz(
        self, lake_name: str, index: HomographIndex
    ) -> None:
        if index.closed:
            self._send_json(503, {"status": "closed", "lake": lake_name})
        else:
            self._send_json(200, {
                "status": "ok",
                "lake": lake_name,
                "tables": len(index.lake),
            })

    # -- jobs ----------------------------------------------------------
    def _handle_job_poll(self, job_id: str) -> None:
        try:
            snapshot = self.server.jobs.get(job_id)
        except UnknownJobError as error:
            raise _HTTPProblem(
                404, "unknown-job", str(error)
            ) from None
        self._send_json(200, snapshot)

    def _handle_job_cancel(self, job_id: str) -> None:
        try:
            snapshot = self.server.jobs.cancel(job_id)
        except UnknownJobError as error:
            raise _HTTPProblem(
                404, "unknown-job", str(error)
            ) from None
        self._send_json(200, snapshot)

    # -- lake-scoped routes --------------------------------------------
    def _parse_detect_request(self, payload) -> DetectRequest:
        try:
            return DetectRequest.from_dict(payload)
        except (TypeError, ValueError) as error:
            raise _HTTPProblem(
                400, "invalid-request",
                f"not a valid DetectRequest payload: {error}",
            ) from None

    def _handle_detect(
        self, lake_name: str, index: HomographIndex, query
    ) -> None:
        payload = self._read_json_body()
        request = self._parse_detect_request(payload)
        # Validate the paging knob up front: a bad ?top= must fail
        # before the (potentially expensive) computation — or before
        # a doomed async job is queued.
        top = self._int_param(query, "top", default=None, minimum=0)
        if self._flag_param(query, "async"):
            return self._handle_detect_async(
                lake_name, index, request, top
            )
        response = self._detect(lake_name, index, request)
        self._send_json(200, response.to_dict(top=top))

    def _handle_detect_async(
        self,
        lake_name: str,
        index: HomographIndex,
        request: DetectRequest,
        top: Optional[int] = None,
    ) -> None:
        """``?async=1``: queue the request, answer 202 with a job id.

        Async submissions are not admission-gated — they occupy an
        index dispatcher slot, not a handler thread — but the measure
        and index-open checks still apply, so an immediately-doomed
        job fails here instead of as a polled error.  ``top`` carries
        the synchronous route's ranking truncation into the job's
        terminal payload.
        """
        self._check_measure(request.measure)
        self._check_open(index)
        try:
            job_id = self.server.jobs.submit(
                lake_name, index, request, top=top
            )
        except JobOverflowError as error:
            raise _HTTPProblem(
                503, "jobs-overloaded", str(error),
                retry_after=self.server.retry_after,
            ) from None
        except RuntimeError as error:
            raise _HTTPProblem(
                409, "index-closed", str(error)
            ) from None
        self._send_json(202, {
            "job": job_id,
            "lake": lake_name,
            "state": "queued",
            "poll": f"/jobs/{job_id}",
        })

    def _handle_ranking(
        self,
        lake_name: str,
        index: HomographIndex,
        measure: str,
        query,
    ) -> None:
        request = DetectRequest(
            measure=measure,
            sample_size=self._int_param(query, "sample_size", None, 1),
            seed=self._int_param(query, "seed", None, 0),
            lcc_variant=self._str_param(
                query, "lcc_variant", "attribute-jaccard"
            ),
            endpoints=self._str_param(query, "endpoints", "all"),
        )
        cursor = self._str_param(query, "cursor", None)
        limit = self._int_param(
            query, "limit", DEFAULT_PAGE_LIMIT, minimum=1
        )
        if limit > MAX_PAGE_LIMIT:
            raise _HTTPProblem(
                400, "invalid-paging",
                f"limit {limit} exceeds the {MAX_PAGE_LIMIT} maximum",
            )
        response = self._detect(lake_name, index, request)
        try:
            page = response.ranking.page(cursor=cursor, limit=limit)
        except ValueError as error:
            raise _HTTPProblem(
                400, "invalid-paging", str(error)
            ) from None
        payload = page.to_dict()
        payload["cached"] = response.cached
        self._send_json(200, payload, compress=True)

    def _handle_oplog(self, lake_name: str, query) -> None:
        """``GET /oplog?since=N``: the lake's recorded mutation tail.

        Replicas poll this on the primary and replay the entries
        through their own mutation routes; ``since`` is the last
        sequence number already applied (0 = everything).
        """
        log = self.server.oplog_for(lake_name)
        if log is None:
            raise _HTTPProblem(
                404, "no-oplog",
                f"lake {lake_name!r} does not record a mutation "
                f"oplog; start the primary with --record-oplog",
                lake=lake_name,
            )
        since = self._int_param(query, "since", default=0, minimum=0)
        payload = log.read_since(since)
        payload["lake"] = lake_name
        self._send_json(200, payload, compress=True)

    def _apply_mutation(self, lake_name: str, apply, record):
        """Apply one table mutation, recording it when oplogged.

        ``apply`` mutates the index; ``record`` appends the exact
        mutation payload to the lake's oplog.  The log's lock
        brackets both so concurrent mutations land in the log in
        application order.  Returns the new oplog sequence number, or
        ``None`` when the lake does not record one.
        """
        log = self.server.oplog_for(lake_name)
        if log is None:
            apply()
            return None
        with log.exclusive():
            apply()
            return record(log)

    def _handle_add_table(
        self, lake_name: str, index: HomographIndex
    ) -> None:
        self._check_open(index)
        payload = self._read_json_body()
        name = payload.get("name")
        columns = payload.get("columns")
        if not isinstance(name, str) or not isinstance(columns, dict):
            raise _HTTPProblem(
                400, "invalid-table",
                'table payloads look like {"name": "t", '
                '"columns": {"col": ["v1", ...]}}',
            )
        try:
            table = Table.from_columns(name, columns)
        except (TableError, TypeError, ValueError) as error:
            raise _HTTPProblem(
                400, "invalid-table", str(error)
            ) from None

        def apply() -> None:
            try:
                index.add_table(table)
            except LakeError as error:
                raise _HTTPProblem(
                    409, "duplicate-table", str(error)
                ) from None

        seq = self._apply_mutation(
            lake_name,
            apply,
            lambda log: log.append(
                {"op": "add", "table": name, "columns": columns}
            ),
        )
        body: Dict[str, object] = {
            "table": name,
            "tables": len(index.lake),
            "mutation": index.last_mutation,
        }
        if seq is not None:
            body["oplog_seq"] = seq
        self._send_json(201, body)

    def _handle_remove_table(
        self, lake_name: str, index: HomographIndex, name: str
    ) -> None:
        self._check_open(index)

        def apply() -> None:
            try:
                index.remove_table(name)
            except LakeError as error:
                raise _HTTPProblem(
                    404, "unknown-table", str(error)
                ) from None

        seq = self._apply_mutation(
            lake_name,
            apply,
            lambda log: log.append({"op": "remove", "table": name}),
        )
        body: Dict[str, object] = {
            "table": name,
            "tables": len(index.lake),
            "mutation": index.last_mutation,
        }
        if seq is not None:
            body["oplog_seq"] = seq
        self._send_json(200, body)

    # -- param parsing -------------------------------------------------
    @staticmethod
    def _str_param(query, name: str, default):
        values = query.get(name)
        return values[-1] if values else default

    @staticmethod
    def _flag_param(query, name: str) -> bool:
        values = query.get(name)
        if not values:
            return False
        return values[-1].strip().lower() in _TRUTHY

    @staticmethod
    def _int_param(query, name: str, default, minimum: int):
        values = query.get(name)
        if not values:
            return default
        try:
            value = int(values[-1])
        except ValueError:
            raise _HTTPProblem(
                400, "invalid-paging",
                f"query parameter {name!r} must be an integer, "
                f"got {values[-1]!r}",
            ) from None
        if value < minimum:
            raise _HTTPProblem(
                400, "invalid-paging",
                f"query parameter {name!r} must be >= {minimum}",
            )
        return value

    # -- stdlib entry points -------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch GET requests."""
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch POST requests."""
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        """Dispatch DELETE requests."""
        self._route("DELETE")
