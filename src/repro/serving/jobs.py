"""Async detection jobs: submit now, poll later, evict on TTL.

A synchronous ``POST /detect`` holds an HTTP connection for the whole
kernel run — fine for warm caches, hostile for a cold exact-BC pass
over a large lake.  :class:`JobManager` is the server-side bookkeeping
for the asynchronous spelling (``POST /lakes/<name>/detect?async=1``):
it submits the request through :meth:`HomographIndex.asubmit` (so jobs
ride the index's score cache, single-flight coalescing, and the shared
worker pool exactly like synchronous calls) and tracks each future
under a process-unique job id::

    manager = JobManager(ttl=300.0)
    job_id = manager.submit("zoo", index, DetectRequest(measure="lcc"))
    manager.get(job_id)          # {"state": "queued" | "running" | ...}
    ...
    snapshot = manager.get(job_id)
    snapshot["state"]            # "done"
    snapshot["response"]         # the DetectResponse payload

States: ``queued`` (future not started), ``running``, ``done``
(``response`` holds the full payload), ``error`` (``error`` holds
``{"type", "message"}``; a cancelled job reports ``type:
"CancelledError"``).  Terminal snapshots are kept for ``ttl`` seconds
after completion and then evicted lazily — a later ``get`` raises
:class:`UnknownJobError`, which the HTTP layer maps to 404.

Job ids are ``uuid4`` hex strings, so ids never collide across
managers, workspaces, or server restarts.

With ``persist_dir`` set, every *terminal* snapshot is additionally
spilled to ``<persist_dir>/<job_id>.json`` (atomic tmp + rename,
best-effort) and restored on the next boot — a client that submitted
before a restart can still poll its result afterwards, until the same
TTL that governs in-memory eviction expires it.  ``domainnet serve
--snapshot`` points this at the snapshot's ``jobs/`` directory.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from concurrent.futures import CancelledError
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..api.index import HomographIndex
from ..api.requests import DetectRequest

#: Seconds a finished job stays pollable before eviction.
DEFAULT_JOB_TTL = 300.0
#: Jobs (running + finished-but-not-evicted) tracked before submits
#: are refused — the async path must not sidestep the server's
#: bounded-surface discipline into unbounded queueing.
DEFAULT_MAX_JOBS = 1024


class UnknownJobError(KeyError):
    """Raised for ids never issued or already evicted by the TTL."""

    def __str__(self) -> str:
        """Render like a RuntimeError, not KeyError's quoted repr."""
        return self.args[0] if self.args else ""


class JobOverflowError(RuntimeError):
    """Raised by ``submit`` when ``max_jobs`` are already tracked.

    The HTTP layer maps this to a 503 with ``Retry-After`` — the
    caller should poll/evict existing jobs (or just wait) and retry.
    """


class _JobRecord:
    """Internal mutable state of one submitted job."""

    __slots__ = (
        "id", "lake", "request", "future", "top",
        "created_wall", "created", "finished", "payload", "stored",
    )

    def __init__(
        self, job_id, lake, request, future, now, wall, top=None
    ) -> None:
        self.id = job_id
        self.lake = lake
        self.request = request
        self.future = future
        self.top = top          # ranking truncation for the payload
        self.created_wall = wall
        self.created = now      # monotonic, for runtime/TTL math
        self.finished: Optional[float] = None
        self.payload: Optional[Dict[str, object]] = None
        # A snapshot restored from persist_dir after a restart; when
        # set there is no future, and this frozen dict *is* the job.
        self.stored: Optional[Dict[str, object]] = None


class JobManager:
    """Track async detection futures under TTL-evicted job ids.

    Parameters
    ----------
    ttl:
        Seconds a *finished* job (done, error, or cancelled) stays
        pollable.  Eviction is lazy — performed on ``submit``, ``get``
        and ``cancel`` — so no background reaper thread exists to
        leak.
    max_jobs:
        Cap on tracked jobs (queued, running, and finished ones the
        TTL has not evicted yet).  ``submit`` past the cap raises
        :class:`JobOverflowError` instead of queueing without bound.
    clock:
        Monotonic clock, injectable for TTL tests.
    persist_dir:
        Optional directory terminal snapshots are spilled to (one
        ``<job_id>.json`` each, atomic rename) and restored from on
        construction.  Restored jobs obey the same TTL, measured in
        wall-clock time across the restart.  ``None`` (default) keeps
        results purely in memory, as before.

    All methods are thread-safe.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_JOB_TTL,
        max_jobs: int = DEFAULT_MAX_JOBS,
        clock: Callable[[], float] = time.monotonic,
        persist_dir: Optional[Union[str, "os.PathLike"]] = None,
    ) -> None:
        if ttl <= 0:
            # ttl=0 would evict a finished job on the very next
            # sweep, before any poll could read its result.
            raise ValueError(f"job ttl must be > 0, got {ttl!r}")
        self.ttl = ttl
        self.max_jobs = max(1, max_jobs)
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, _JobRecord] = {}
        self._persist_dir: Optional[Path] = None
        if persist_dir is not None:
            self._persist_dir = Path(persist_dir)
            self._persist_dir.mkdir(parents=True, exist_ok=True)
            self._restore()

    @property
    def persist_dir(self) -> Optional[Path]:
        """Where terminal snapshots are spilled, if anywhere."""
        return self._persist_dir

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        lake: str,
        index: HomographIndex,
        request: DetectRequest,
        top: Optional[int] = None,
    ) -> str:
        """Queue ``request`` on ``index``; returns the new job id.

        The job runs through :meth:`HomographIndex.asubmit`, so it
        participates in the score cache and single-flight exactly as
        a synchronous call would.  ``top`` truncates the terminal
        ``response`` payload's ranking, mirroring the synchronous
        route's ``?top=`` knob.  Raises :class:`JobOverflowError`
        when ``max_jobs`` are already tracked, and whatever
        ``asubmit`` raises (e.g. ``RuntimeError`` on a closed index)
        without registering a job.
        """
        self.sweep()
        job_id = uuid.uuid4().hex
        # Cap check and registration share one lock hold, so N racing
        # submits cannot each pass the check and overshoot the bound.
        # The slot is *reserved* (record inserted with no future yet)
        # before asubmit runs outside the lock — a cold asubmit can
        # fork the worker pool, and holding the manager lock across
        # that would stall every concurrent poll/cancel/stats call.
        record = _JobRecord(
            job_id, lake, request, future=None,
            now=self._clock(), wall=time.time(), top=top,
        )
        with self._lock:
            if len(self._jobs) >= self.max_jobs:
                raise JobOverflowError(
                    f"{len(self._jobs)} jobs already tracked (cap "
                    f"{self.max_jobs}); retry after some finish and "
                    f"age out"
                )
            self._jobs[job_id] = record
        try:
            future = index.asubmit(request)
        except BaseException:
            with self._lock:  # roll the reservation back
                self._jobs.pop(job_id, None)
            raise
        record.future = future

        def _stamp_finished(_future) -> None:
            with self._lock:
                record.finished = self._clock()
            # Spill outside the lock: serializing a large response
            # and fsync-renaming it must not stall polls.
            self._persist_terminal(record)

        # Registered outside the lock: an already-finished future runs
        # the callback synchronously, and the callback takes the lock.
        future.add_done_callback(_stamp_finished)
        return job_id

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Dict[str, object]:
        """A JSON-safe snapshot of one job's current state.

        Raises :class:`UnknownJobError` for ids never issued or
        evicted after sitting finished for longer than the TTL.
        """
        self.sweep()
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(
                f"no job {job_id!r} (unknown id, or finished more than "
                f"{self.ttl:.0f}s ago and evicted)"
            )
        return self._snapshot(record)

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Best-effort cancel; returns the post-attempt snapshot.

        A queued job is cancelled (terminal ``error`` state with type
        ``CancelledError``); a running or finished job is left alone —
        cancelling a finished job is an explicit no-op, not an error.
        """
        self.sweep()
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"no job {job_id!r}")
        if record.future is not None:
            record.future.cancel()
        return self._snapshot(record)

    def ids(self) -> List[str]:
        """Ids of every tracked (not yet evicted) job."""
        with self._lock:
            return list(self._jobs)

    def __len__(self) -> int:
        """Number of tracked jobs."""
        with self._lock:
            return len(self._jobs)

    def stats(self) -> Dict[str, object]:
        """Counters for ``/stats``: jobs per state plus the TTL."""
        with self._lock:
            records = list(self._jobs.values())
        states: Dict[str, int] = {}
        for record in records:
            state = self._state(record)
            states[state] = states.get(state, 0) + 1
        return {"tracked": len(records), "states": states,
                "ttl_seconds": self.ttl, "max_jobs": self.max_jobs}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Evict finished jobs older than the TTL; returns the count.

        Eviction also deletes the job's spilled ``<id>.json`` (when
        persistence is on), so the TTL bounds disk growth exactly as
        it bounds memory growth.
        """
        now = self._clock()
        with self._lock:
            expired = [
                job_id
                for job_id, record in self._jobs.items()
                if record.finished is not None
                and now - record.finished > self.ttl
            ]
            for job_id in expired:
                del self._jobs[job_id]
        if self._persist_dir is not None:
            for job_id in expired:
                try:
                    (self._persist_dir / f"{job_id}.json").unlink()
                except OSError:
                    pass
        return len(expired)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Wait for every unfinished job to reach a terminal state.

        Called on server shutdown *after* the index's own close has
        cancelled queued futures, so queued jobs land in their
        cancelled-terminal state rather than hanging a poller forever.
        """
        with self._lock:
            futures = [
                record.future for record in self._jobs.values()
                if record.finished is None and record.future is not None
            ]
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for future in futures:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                future.exception(timeout=remaining)
            # CancelledError is a BaseException on stock CPython >= 3.8
            # — it must be named, or a cancel racing the drain would
            # crash the server's shutdown path.
            except CancelledError:
                pass
            except Exception:  # noqa: BLE001 - timed out / failed
                pass

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @staticmethod
    def _state(record: _JobRecord) -> str:
        if record.stored is not None:  # restored from persist_dir
            return str(record.stored.get("state", "error"))
        future = record.future
        if future is None:  # reservation window inside submit()
            return "queued"
        if future.cancelled():
            return "error"
        if future.done():
            return "error" if future.exception() is not None else "done"
        return "running" if future.running() else "queued"

    def _snapshot(self, record: _JobRecord) -> Dict[str, object]:
        if record.stored is not None:
            # Restored jobs are terminal and frozen: the spilled
            # snapshot is the job, runtime included.
            return dict(record.stored)
        state = self._state(record)
        finished = record.finished
        runtime = (
            (finished if finished is not None else self._clock())
            - record.created
        )
        payload: Dict[str, object] = {
            "id": record.id,
            "lake": record.lake,
            "state": state,
            "measure": record.request.measure,
            "created_at": record.created_wall,
            "runtime_seconds": runtime,
        }
        if state == "done":
            if record.payload is None:
                # Serialized once, then reused by every later poll.
                record.payload = record.future.result().to_dict(
                    top=record.top
                )
            payload["response"] = record.payload
        elif state == "error":
            future = record.future
            if future.cancelled():
                payload["error"] = {
                    "type": "CancelledError",
                    "message": "job was cancelled before it ran",
                }
            else:
                error = future.exception()
                payload["error"] = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
        return payload

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _persist_terminal(self, record: _JobRecord) -> None:
        """Best-effort spill of one finished job to ``persist_dir``.

        Persistence must never take the serving path down: any
        serialization or filesystem failure is swallowed and the job
        simply stays memory-only (its TTL still applies).
        """
        if self._persist_dir is None:
            return
        try:
            data = json.dumps(
                {
                    "job": self._snapshot(record),
                    "finished_wall": time.time(),
                },
                sort_keys=True,
            )
            target = self._persist_dir / f"{record.id}.json"
            tmp = target.with_suffix(".tmp")
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, target)
        except Exception:  # noqa: BLE001 - persistence is best-effort
            pass

    def _restore(self) -> None:
        """Rehydrate terminal jobs spilled by a previous process.

        Runs once, from ``__init__`` (no locking needed).  Expired or
        unreadable files are deleted on sight; restore stops at the
        ``max_jobs`` cap so a crashed-in-a-loop server cannot flood
        memory with stale results.
        """
        assert self._persist_dir is not None
        now_wall = time.time()
        for path in sorted(self._persist_dir.glob("*.json")):
            if len(self._jobs) >= self.max_jobs:
                break
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                stored = data["job"]
                job_id = str(stored["id"])
                age = max(0.0, now_wall - float(data["finished_wall"]))
            except (OSError, ValueError, KeyError, TypeError):
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            if age > self.ttl:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            record = _JobRecord(
                job_id,
                str(stored.get("lake", "")),
                request=None,
                future=None,
                now=self._clock(),
                wall=float(stored.get("created_at", now_wall)),
            )
            # Back-date on the monotonic clock so the ordinary sweep
            # math expires the restored job TTL-minus-age from now.
            record.finished = self._clock() - age
            record.stored = stored
            self._jobs[job_id] = record
