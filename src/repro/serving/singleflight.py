"""Thread-safe single-flight execution: coalesce duplicate work.

A *single-flight group* guarantees that, among concurrent calls with
the same key, exactly one caller (the *leader*) executes the supplied
function while the rest (the *followers*) block and receive the
leader's result — or its exception — without recomputing.  This is the
serving-layer primitive behind ``HomographIndex.detect``: N analysts
asking for the same ``(measure, config)`` at once trigger one kernel
computation, not N.

The design follows Go's ``golang.org/x/sync/singleflight``: calls are
deduplicated only while one is in flight.  Once the leader finishes,
the key is forgotten — memoization across completed calls is the
caller's job (``HomographIndex`` layers its score cache on top).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Tuple, TypeVar

T = TypeVar("T")


class _Flight:
    """One in-flight computation: a latch plus its outcome."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class SingleFlight:
    """Deduplicate concurrent calls per key; see the module docstring.

    Example::

        group = SingleFlight()
        value, leader = group.do("expensive", compute)

    ``leader`` is ``True`` for the caller that actually ran
    ``compute`` and ``False`` for every coalesced caller.  Exceptions
    raised by the leader propagate to all waiters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}

    def do(
        self, key: Hashable, fn: Callable[[], T]
    ) -> Tuple[T, bool]:
        """Run ``fn`` once per key among concurrent callers.

        Returns ``(result, leader)``.  The leader executes ``fn``;
        followers arriving while it runs block until it finishes and
        share its result.  The key is released when the leader
        completes, so a *later* call with the same key runs afresh.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False

        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, False

        try:
            flight.result = fn()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, True

    def in_flight(self) -> int:
        """Number of keys currently being computed (diagnostics)."""
        with self._lock:
            return len(self._flights)

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` has a computation in flight right now.

        A snapshot, not a reservation: the flight may finish the
        instant after this returns.  Callers use it as a scheduling
        hint — "a :meth:`do` with this key would coalesce" — never as
        a correctness guarantee.
        """
        with self._lock:
            return key in self._flights
