"""Serving-layer primitives: make detection behave like a service.

``repro.api`` gives applications a stateful index; this package holds
the concurrency machinery that turns that index into something that
can sit behind a request stream:

* :class:`SingleFlight` — coalesce concurrent duplicate computations
  (N identical in-flight requests → one kernel run);
* the persistent worker pool itself lives in :mod:`repro.perf`
  (``ProcessBackend(persistent=True)``), since it is an execution
  concern; ``HomographIndex`` composes the two.

See ``docs/serving.md`` for the end-to-end serving guide (pool
lifecycle, invalidation rules, batch submission).
"""

from .singleflight import SingleFlight

__all__ = ["SingleFlight"]
