"""Serving layer: make detection behave like a deployable service.

``repro.api`` gives applications a stateful index; this package holds
everything that turns that index into something that can sit behind a
request stream:

* :class:`SingleFlight` — coalesce concurrent duplicate computations
  (N identical in-flight requests → one kernel run);
* :mod:`repro.serving.http` — the stdlib HTTP/JSON front-end
  (:class:`HomographHTTPServer`, :func:`start_server`) hosting a
  whole multi-lake :class:`~repro.api.Workspace` behind namespaced
  routes, with cursor pagination, gzip, keep-alive, bearer auth,
  bounded admission, and drain-on-shutdown;
* :mod:`repro.serving.jobs` — the async job API
  (:class:`JobManager`: submit a detection, poll a job id, TTL
  eviction of finished jobs);
* :mod:`repro.serving.client` — the matching ``urllib`` client
  (:class:`HomographClient` with per-lake handles and job helpers,
  :class:`ServiceError`, :class:`JobFailed`);
* the persistent worker pool itself lives in :mod:`repro.perf`
  (``ProcessBackend(persistent=True)``), since it is an execution
  concern; ``Workspace`` composes the two.

See ``docs/serving.md`` for the end-to-end serving guide (HTTP API,
pool lifecycle, invalidation rules, batch submission, async jobs).
"""

from .singleflight import SingleFlight

__all__ = [
    "HomographClient",
    "HomographHTTPServer",
    "JobFailed",
    "JobManager",
    "JobOverflowError",
    "ServiceError",
    "ServiceUnavailable",
    "SingleFlight",
    "UnknownJobError",
    "start_server",
]

# The HTTP front-end and client import repro.api, which imports this
# package for SingleFlight; loading them lazily (PEP 562) keeps the
# import graph acyclic while `from repro.serving import HomographClient`
# keeps working.
_LAZY = {
    "HomographClient": "client",
    "JobFailed": "client",
    "ServiceError": "client",
    "ServiceUnavailable": "client",
    "HomographHTTPServer": "http",
    "start_server": "http",
    "JobManager": "jobs",
    "JobOverflowError": "jobs",
    "UnknownJobError": "jobs",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    value = getattr(import_module(f".{submodule}", __name__), name)
    globals()[name] = value
    return value
