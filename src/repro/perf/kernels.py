"""Compute kernels the execution backends fan out over chunks.

A *kernel* is a pure function ``(ctx, payload, common) -> partial``
where ``ctx`` is a :class:`GraphContext` (the CSR arrays plus sizes),
``payload`` is one chunk of the work list, and ``common`` carries the
chunk-independent knobs.  Kernels are registered by name so a task can
be shipped to a worker process as ``(name, payload, common)`` without
pickling code objects.

Three kernels cover the paper's hot paths:

* ``"brandes"`` — per-source Brandes dependency accumulations
  (exact or source-sampled betweenness); partial = weighted score
  vector over all nodes, reduced by :func:`repro.perf.tree_sum`.
* ``"rk"`` — Riondato–Kornaropoulos shortest-path samples; each sample
  carries its own :class:`numpy.random.SeedSequence` so results are
  independent of how samples are chunked across workers.
* ``"lcc"`` — local clustering coefficients for one contiguous range
  of value nodes; partial = ``(lo, hi, segment)``, stitched by the
  caller.
* ``"lcc_subset"`` — the same math over an explicit id set; partial =
  ``(ids, segment)``.  Used by delta maintenance to recompute only the
  values a splice touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from ..core.approx import _sample_shortest_path
from ..core.betweenness import _single_source_dependency
from ..core.lcc import (
    _lcc_attribute_jaccard_ids,
    _lcc_attribute_jaccard_range,
    _lcc_value_neighbors_ids,
    _lcc_value_neighbors_range,
)


@dataclass(frozen=True)
class GraphContext:
    """The slice of a graph a kernel needs: CSR arrays and sizes.

    Workers rebuild this from shared memory; in-process execution just
    wraps the graph's own (read-only) arrays.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int
    num_values: int

    @classmethod
    def from_graph(cls, graph) -> "GraphContext":
        """Wrap a graph's own CSR arrays (no copy) for in-process use."""
        return cls(
            indptr=graph.indptr,
            indices=graph.indices,
            num_nodes=graph.num_nodes,
            num_values=graph.num_values,
        )


Kernel = Callable[[GraphContext, object, Mapping], object]

_KERNELS: Dict[str, Kernel] = {}


def register_kernel(name: str) -> Callable[[Kernel], Kernel]:
    """Decorator registering a kernel under ``name``.

    Registered kernels can be shipped to worker processes by name —
    including native replacements for the built-ins (see ROADMAP):
    re-registering a name overrides it for every backend.
    """
    def _register(fn: Kernel) -> Kernel:
        _KERNELS[name] = fn
        return fn

    return _register


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name, raising ``ValueError`` if unknown."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; registered: {sorted(_KERNELS)}"
        ) from None


def _target_weight(endpoints: str, ctx: GraphContext) -> np.ndarray:
    """Per-node target weights for the chosen endpoint mode."""
    if endpoints == "all":
        return np.ones(ctx.num_nodes, dtype=np.float64)
    weight = np.zeros(ctx.num_nodes, dtype=np.float64)
    weight[: ctx.num_values] = 1.0
    return weight


@register_kernel("brandes")
def brandes_kernel(
    ctx: GraphContext,
    payload: Tuple[np.ndarray, np.ndarray],
    common: Mapping,
) -> np.ndarray:
    """Weighted sum of single-source dependency vectors for one chunk."""
    sources, weights = payload
    target_weight = _target_weight(common["endpoints"], ctx)
    acc = np.zeros(ctx.num_nodes, dtype=np.float64)
    for source, weight in zip(sources, weights):
        acc += weight * _single_source_dependency(
            int(source), ctx.indptr, ctx.indices, ctx.num_nodes,
            target_weight,
        )
    return acc


@register_kernel("rk")
def rk_kernel(
    ctx: GraphContext,
    payload: Tuple[np.ndarray, list],
    common: Mapping,
) -> np.ndarray:
    """Path-sample accumulation for one chunk of (u, v, seed) draws."""
    pairs, seeds = payload
    inv_r = common["inv_r"]
    acc = np.zeros(ctx.num_nodes, dtype=np.float64)
    for (u, v), seed_seq in zip(pairs, seeds):
        u, v = int(u), int(v)
        if u == v:
            continue
        rng = np.random.default_rng(seed_seq)
        path = _sample_shortest_path(
            u, v, ctx.indptr, ctx.indices, ctx.num_nodes, rng
        )
        if path:
            acc[path] += inv_r
    return acc


@register_kernel("lcc_subset")
def lcc_subset_kernel(
    ctx: GraphContext,
    payload: np.ndarray,
    common: Mapping,
) -> Tuple[np.ndarray, np.ndarray]:
    """LCC scores for an explicit set of value-node ids.

    Delta maintenance recomputes only the values whose neighborhoods a
    splice touched; per-value independence makes the subset result
    bit-identical to the same slots of a full sweep.
    """
    ids = np.asarray(payload, dtype=np.int64)
    if common["variant"] == "attribute-jaccard":
        segment = _lcc_attribute_jaccard_ids(ctx.indptr, ctx.indices, ids)
    else:
        segment = _lcc_value_neighbors_ids(ctx.indptr, ctx.indices, ids)
    return ids, segment


@register_kernel("lcc")
def lcc_kernel(
    ctx: GraphContext,
    payload: Tuple[int, int],
    common: Mapping,
) -> Tuple[int, int, np.ndarray]:
    """LCC scores for the value-node range ``[lo, hi)``."""
    lo, hi = payload
    if common["variant"] == "attribute-jaccard":
        segment = _lcc_attribute_jaccard_range(
            ctx.indptr, ctx.indices, lo, hi
        )
    else:
        segment = _lcc_value_neighbors_range(ctx.indptr, ctx.indices, lo, hi)
    return lo, hi, segment
