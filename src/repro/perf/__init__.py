"""Parallel compute engine: pluggable execution backends for the hot paths.

The core measures (exact/sampled Brandes betweenness, the Riondato–
Kornaropoulos sampler, the LCC) express their work as chunkable lists
— sources, path samples, value ranges — and dispatch them through an
:class:`ExecutionBackend`:

* :class:`SerialBackend` (default) runs chunks in-process, bit-exact
  with the historical implementation;
* :class:`ProcessBackend` ships the CSR arrays to a worker pool once
  via ``multiprocessing.shared_memory`` and fans chunks across cores,
  reducing partial score vectors with :func:`tree_sum`.

Selection threads through the public API as an
:class:`ExecutionConfig` (``DetectRequest(execution=...)``,
``HomographIndex(execution=...)``, CLI ``--jobs``)::

    from repro import ExecutionConfig, HomographIndex

    index = HomographIndex(lake, execution=ExecutionConfig(n_jobs=4))
    index.detect(measure="betweenness")          # scored on 4 cores

Parallel results match serial to float tolerance always, and exactly
when ``chunk_size`` is pinned (see ``tests/test_perf_backends.py``).

For serving workloads, ``ExecutionConfig(persistent=True)`` (or
``ProcessBackend(persistent=True)`` directly) keeps the worker pool
and the shared-memory graph export alive across calls; see
``docs/serving.md`` and :func:`use_backend` for how a long-lived owner
shares one pool across measures.
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    chunk_spans,
    resolve_backend,
    tree_sum,
    use_backend,
)
from .config import BACKEND_NAMES, ExecutionConfig, available_cores
from .kernels import GraphContext, get_kernel, register_kernel

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ExecutionConfig",
    "GraphContext",
    "ProcessBackend",
    "SerialBackend",
    "available_cores",
    "chunk_spans",
    "get_kernel",
    "register_kernel",
    "resolve_backend",
    "tree_sum",
    "use_backend",
]
