"""Execution configuration for the parallel compute engine.

One small value object, :class:`ExecutionConfig`, describes *how* a
score computation should run — which backend, how many worker
processes, how finely the work is chunked — without saying anything
about *what* is computed.  It threads from the public API
(``DetectRequest(execution=...)``, the CLI ``--jobs`` flag) down to the
core measures, which hand their per-source / per-sample / per-value
work lists to the resolved backend.

Execution choice never changes results beyond floating-point
summation order: the serial backend remains the bit-exact reference,
and the process backend is required (and tested) to match it to tight
tolerance — identically, when the chunking is pinned.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping, Optional

#: Recognized backend names.  ``auto`` picks ``process`` when more
#: than one worker is requested and ``serial`` otherwise.
BACKEND_NAMES = ("auto", "serial", "process")


def available_cores() -> int:
    """CPUs usable by this process (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How a score computation is executed.

    Parameters
    ----------
    backend:
        ``"serial"`` runs everything in-process (the bit-exact
        default), ``"process"`` fans chunks across a worker pool fed
        through shared memory, and ``"auto"`` (default) resolves to
        ``process`` exactly when the effective job count exceeds one.
    n_jobs:
        Worker processes.  ``None`` means *one* under ``auto``/
        ``serial`` (conservative default) and *all available cores*
        under ``process``.
    chunk_size:
        Work items (Brandes sources, RK samples, LCC values) per task.
        ``None`` derives a size from the job count; pin it explicitly
        when bit-identical results across backends are required.
    persistent:
        ``False`` (default) keeps the historical per-call behavior: a
        process backend forks its worker pool inside each
        ``map_chunks`` call and tears it down afterwards.  ``True``
        asks for a *serving* backend whose pool and shared-memory
        graph export stay alive across calls; the owner must then
        release it explicitly (``backend.close()``, or
        ``HomographIndex.close()`` when the config is attached to an
        index).  Serial execution ignores the flag.
    """

    backend: str = "auto"
    n_jobs: Optional[int] = None
    chunk_size: Optional[int] = None
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if self.n_jobs is not None and self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @property
    def effective_jobs(self) -> int:
        """The concrete worker count this configuration asks for."""
        if self.backend == "serial":
            return 1
        if self.n_jobs is not None:
            return self.n_jobs
        return available_cores() if self.backend == "process" else 1

    @property
    def resolved_backend(self) -> str:
        """``auto`` collapsed to a concrete backend name."""
        if self.backend == "auto":
            return "process" if self.effective_jobs > 1 else "serial"
        return self.backend

    def with_overrides(self, **overrides) -> "ExecutionConfig":
        """A copy with some fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization (rides inside DetectRequest.to_dict / from_dict)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation; inverse of :meth:`from_dict`."""
        return {
            "backend": self.backend,
            "n_jobs": self.n_jobs,
            "chunk_size": self.chunk_size,
            "persistent": self.persistent,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExecutionConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Older payloads without ``persistent`` default to the per-call
        behavior.
        """
        return cls(
            backend=str(payload.get("backend", "auto")),
            n_jobs=payload.get("n_jobs"),
            chunk_size=payload.get("chunk_size"),
            persistent=bool(payload.get("persistent", False)),
        )
