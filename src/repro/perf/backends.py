"""Execution backends: in-process serial and shared-memory multi-process.

The contract is deliberately tiny — a backend maps a named kernel over
a list of chunk payloads against one graph::

    backend = resolve_backend(ExecutionConfig(n_jobs=4))
    partials = backend.map_chunks(graph, "brandes", payloads, common)

:class:`SerialBackend` runs the chunks in a plain loop and is the
bit-exact reference.  :class:`ProcessBackend` copies the graph's CSR
arrays (``indptr``/``indices``) into
:mod:`multiprocessing.shared_memory` segments *once*, forks a worker
pool whose initializer attaches them zero-copy, and maps the chunk
tasks across the pool.  Only the small per-chunk payloads (source ids,
sample seeds, value ranges) cross the pipe; score vectors come back
once per chunk and are reduced caller-side with :func:`tree_sum`.

Determinism: chunk spans depend only on the work-list length, the job
count, and the configured ``chunk_size`` — never on scheduling — so a
given configuration always produces the same chunking, and pinning
``chunk_size`` makes serial and process results bit-identical.
"""

from __future__ import annotations

import abc
import multiprocessing
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .config import ExecutionConfig, available_cores
from .kernels import GraphContext, get_kernel

#: Tasks per worker when ``chunk_size`` is not pinned: enough slack
#: for load balancing without drowning the queue in tiny messages.
_CHUNKS_PER_JOB = 4


def chunk_spans(
    num_items: int, jobs: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Deterministic ``[lo, hi)`` spans covering ``range(num_items)``.

    With ``chunk_size=None`` a serial run gets one span (no overhead)
    and a parallel run gets ``~4 * jobs`` spans for load balancing.
    """
    if num_items <= 0:
        return []
    if chunk_size is None:
        if jobs <= 1:
            chunk_size = num_items
        else:
            chunk_size = max(1, -(-num_items // (_CHUNKS_PER_JOB * jobs)))
    return [
        (lo, min(lo + chunk_size, num_items))
        for lo in range(0, num_items, chunk_size)
    ]


def tree_sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise (tree) reduction of partial score vectors.

    Associates the sum as a balanced tree, which keeps float error
    growth logarithmic in the chunk count and — more importantly —
    makes the reduction order a function of the chunk list alone, so
    equal chunkings give bit-identical totals on every backend.
    """
    items = list(arrays)
    if not items:
        raise ValueError("tree_sum of no arrays")
    while len(items) > 1:
        paired = [
            items[i] + items[i + 1]
            for i in range(0, len(items) - 1, 2)
        ]
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


class ExecutionBackend(abc.ABC):
    """Maps kernels over chunk payloads; see the module docstring."""

    #: Effective worker count (1 for serial).
    jobs: int = 1
    #: Pinned chunk size, or ``None`` for the derived default.
    chunk_size: Optional[int] = None

    def spans(self, num_items: int) -> List[Tuple[int, int]]:
        """Chunk spans this backend uses for ``num_items`` work items."""
        return chunk_spans(num_items, self.jobs, self.chunk_size)

    @abc.abstractmethod
    def map_chunks(
        self,
        graph,
        kernel: str,
        payloads: Sequence,
        common: Mapping,
    ) -> List:
        """Run ``kernel`` over every payload, in payload order."""


class SerialBackend(ExecutionBackend):
    """In-process execution — the bit-exact reference backend."""

    name = "serial"

    def __init__(self, chunk_size: Optional[int] = None) -> None:
        self.jobs = 1
        self.chunk_size = chunk_size

    def map_chunks(self, graph, kernel, payloads, common):
        fn = get_kernel(kernel)
        ctx = GraphContext.from_graph(graph)
        return [fn(ctx, payload, common) for payload in payloads]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SerialBackend(chunk_size={self.chunk_size})"


# ---------------------------------------------------------------------
# Process backend: worker-side state
# ---------------------------------------------------------------------
# Set by the pool initializer in each worker; maps nothing in the
# parent.  ``_WORKER_SHM`` keeps the SharedMemory objects alive for the
# worker's lifetime (dropping them would invalidate the array views).
_WORKER_CTX: Optional[GraphContext] = None
_WORKER_SHM: List = []


def _attach_shared_array(spec) -> np.ndarray:
    from multiprocessing import shared_memory

    name, shape, dtype = spec
    # Attaching registers the segment with the resource tracker as if
    # this worker owned it; it does not — the parent unlinks once the
    # pool drains — and the duplicate registration makes the tracker
    # spew KeyError noise at exit (bpo-39959).  Suppress registration
    # for the attach only.
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
    except Exception:  # pragma: no cover - tracker is a CPython detail
        resource_tracker = None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        if resource_tracker is not None:
            resource_tracker.register = original_register
    _WORKER_SHM.append(shm)
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.flags.writeable = False
    return array


def _worker_init(indptr_spec, indices_spec, num_nodes, num_values) -> None:
    global _WORKER_CTX
    _WORKER_CTX = GraphContext(
        indptr=_attach_shared_array(indptr_spec),
        indices=_attach_shared_array(indices_spec),
        num_nodes=num_nodes,
        num_values=num_values,
    )


def _worker_task(task):
    kernel, payload, common = task
    return get_kernel(kernel)(_WORKER_CTX, payload, common)


def _export_shared_array(array: np.ndarray):
    """Copy an array into a fresh shared-memory segment.

    Returns ``(shm, spec)`` where ``spec`` is the picklable
    ``(name, shape, dtype)`` triple workers attach with.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes)
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, (shm.name, array.shape, array.dtype.str)


class ProcessBackend(ExecutionBackend):
    """Multi-core execution over a shared-memory worker pool.

    The CSR arrays are shipped to workers once per :meth:`map_chunks`
    call via :mod:`multiprocessing.shared_memory`; per-chunk traffic is
    limited to the payloads and the returned partials.  Prefers the
    ``fork`` start method (cheap on Linux) and falls back to the
    platform default elsewhere.
    """

    name = "process"

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.jobs = max(1, n_jobs if n_jobs is not None else available_cores())
        self.chunk_size = chunk_size

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def map_chunks(self, graph, kernel, payloads, common):
        payloads = list(payloads)
        if not payloads:
            return []
        get_kernel(kernel)  # fail fast in the parent on unknown names
        workers = min(self.jobs, len(payloads))
        segments = []
        try:
            indptr_shm, indptr_spec = _export_shared_array(graph.indptr)
            segments.append(indptr_shm)
            indices_shm, indices_spec = _export_shared_array(graph.indices)
            segments.append(indices_shm)
            ctx = self._context()
            with ctx.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(
                    indptr_spec,
                    indices_spec,
                    graph.num_nodes,
                    graph.num_values,
                ),
            ) as pool:
                tasks = [(kernel, payload, common) for payload in payloads]
                return pool.map(_worker_task, tasks, chunksize=1)
        finally:
            for shm in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessBackend(n_jobs={self.jobs}, "
            f"chunk_size={self.chunk_size})"
        )


def resolve_backend(
    execution: Optional[ExecutionConfig],
) -> ExecutionBackend:
    """Turn an (optional) :class:`ExecutionConfig` into a backend.

    ``None`` — the default everywhere — is the serial reference path.
    """
    if execution is None:
        return SerialBackend()
    if execution.resolved_backend == "process":
        return ProcessBackend(
            n_jobs=execution.effective_jobs,
            chunk_size=execution.chunk_size,
        )
    return SerialBackend(chunk_size=execution.chunk_size)
