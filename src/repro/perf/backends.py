"""Execution backends: in-process serial and shared-memory multi-process.

The contract is deliberately tiny — a backend maps a named kernel over
a list of chunk payloads against one graph::

    backend = resolve_backend(ExecutionConfig(n_jobs=4))
    partials = backend.map_chunks(graph, "brandes", payloads, common)

:class:`SerialBackend` runs the chunks in a plain loop and is the
bit-exact reference.  :class:`ProcessBackend` copies the graph's CSR
arrays (``indptr``/``indices``) into
:mod:`multiprocessing.shared_memory` segments, forks a worker pool that
attaches them zero-copy, and maps the chunk tasks across the pool.
Only the small per-chunk payloads (source ids, sample seeds, value
ranges) cross the pipe; score vectors come back once per chunk and are
reduced caller-side with :func:`tree_sum`.

Two pool lifecycles are supported:

* **per-call** (default): each ``map_chunks`` exports the graph,
  forks a pool, runs, and tears everything down — simple and safe for
  one-shot batch scoring, but it pays ~0.1 s of setup per call;
* **persistent** (``ProcessBackend(persistent=True)``): the pool and
  the graph exports survive across calls, so repeated queries against
  one graph pay the setup cost once.  Exports are keyed to the graph
  *objects*: one backend can hold several live exports at once — this
  is what lets a multi-lake :class:`~repro.api.Workspace` share one
  worker pool across indexes, each serving its own graph.  Scoring a
  graph that has no export yet adds one (the pool itself survives),
  :meth:`ProcessBackend.invalidate_export` releases a single graph's
  export (or all of them) eagerly when the owner knows the graph
  mutated, and a garbage-collected graph releases its export
  automatically.  A persistent backend must be released with
  :meth:`ProcessBackend.close` (or used as a context manager) so its
  shared-memory segments are unlinked deterministically.

Determinism: chunk spans depend only on the work-list length, the job
count, and the configured ``chunk_size`` — never on scheduling — so a
given configuration always produces the same chunking, and pinning
``chunk_size`` makes serial and process results bit-identical.
"""

from __future__ import annotations

import abc
import contextlib
import contextvars
import multiprocessing
import threading
import weakref
from collections import OrderedDict
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .config import ExecutionConfig, available_cores
from .kernels import GraphContext, get_kernel

#: Tasks per worker when ``chunk_size`` is not pinned: enough slack
#: for load balancing without drowning the queue in tiny messages.
_CHUNKS_PER_JOB = 4


def chunk_spans(
    num_items: int, jobs: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Deterministic ``[lo, hi)`` spans covering ``range(num_items)``.

    With ``chunk_size=None`` a serial run gets one span (no overhead)
    and a parallel run gets ``~4 * jobs`` spans for load balancing.
    """
    if num_items <= 0:
        return []
    if chunk_size is None:
        if jobs <= 1:
            chunk_size = num_items
        else:
            chunk_size = max(1, -(-num_items // (_CHUNKS_PER_JOB * jobs)))
    return [
        (lo, min(lo + chunk_size, num_items))
        for lo in range(0, num_items, chunk_size)
    ]


def tree_sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise (tree) reduction of partial score vectors.

    Associates the sum as a balanced tree, which keeps float error
    growth logarithmic in the chunk count and — more importantly —
    makes the reduction order a function of the chunk list alone, so
    equal chunkings give bit-identical totals on every backend.
    """
    items = list(arrays)
    if not items:
        raise ValueError("tree_sum of no arrays")
    while len(items) > 1:
        paired = [
            items[i] + items[i + 1]
            for i in range(0, len(items) - 1, 2)
        ]
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


class ExecutionBackend(abc.ABC):
    """Maps kernels over chunk payloads; see the module docstring.

    Backends are context managers: ``with resolve_backend(cfg) as b:``
    guarantees :meth:`close` runs, which matters for persistent
    process backends holding a pool and shared-memory segments (it is
    a no-op for serial and per-call process backends).
    """

    #: Effective worker count (1 for serial).
    jobs: int = 1
    #: Pinned chunk size, or ``None`` for the derived default.
    chunk_size: Optional[int] = None

    def spans(self, num_items: int) -> List[Tuple[int, int]]:
        """Chunk spans this backend uses for ``num_items`` work items."""
        return chunk_spans(num_items, self.jobs, self.chunk_size)

    @abc.abstractmethod
    def map_chunks(
        self,
        graph,
        kernel: str,
        payloads: Sequence,
        common: Mapping,
    ) -> List:
        """Run ``kernel`` over every payload, in payload order."""

    def map_sources(
        self,
        graph,
        kernel: str,
        sources: np.ndarray,
        weights: np.ndarray,
        common: Mapping,
    ) -> np.ndarray:
        """Run one accumulator kernel over an explicit source subset.

        The delta-maintenance entry point: the subset is shipped as a
        *single ordered chunk*, so the kernel's sequential float
        accumulation order matches what the same sources contributed
        inside a one-chunk full run — the property that makes patched
        scores bit-identical to a rebuild.  On a persistent process
        backend the call reuses the pool and the graph's keyed export
        (no re-export of unchanged arrays); the result is the partial
        score vector, ``zeros`` when the subset is empty.
        """
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0:
            return np.zeros(graph.num_nodes, dtype=np.float64)
        partials = self.map_chunks(
            graph, kernel, [(sources, np.asarray(weights))], common
        )
        return partials[0]

    def close(self) -> None:
        """Release any long-lived resources (pool, shared memory)."""

    def invalidate_export(self, graph=None) -> None:
        """Drop cached graph exports (call when a graph mutates).

        ``graph=None`` drops every export; passing a graph drops only
        that graph's export, which is how a multi-index owner (e.g. a
        :class:`~repro.api.Workspace` member) invalidates its own
        graph without disturbing siblings sharing the backend.
        """

    def __enter__(self) -> "ExecutionBackend":
        """Enter a ``with`` block; the backend itself is the target."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the backend on ``with``-block exit."""
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution — the bit-exact reference backend."""

    name = "serial"

    def __init__(self, chunk_size: Optional[int] = None) -> None:
        self.jobs = 1
        self.chunk_size = chunk_size

    def map_chunks(self, graph, kernel, payloads, common):
        """Run the kernel over each payload in a plain loop."""
        fn = get_kernel(kernel)
        ctx = GraphContext.from_graph(graph)
        return [fn(ctx, payload, common) for payload in payloads]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SerialBackend(chunk_size={self.chunk_size})"


# ---------------------------------------------------------------------
# Process backend: worker-side state
# ---------------------------------------------------------------------
# Set by the pool initializer in each worker; maps nothing in the
# parent.  ``_WORKER_SHM`` keeps the SharedMemory objects alive for the
# worker's lifetime (dropping them would invalidate the array views).
_WORKER_CTX: Optional[GraphContext] = None
_WORKER_SHM: List = []

# Persistent-pool workers attach lazily per task instead: a small LRU
# of attachments keyed by segment names, so one long-lived pool can
# interleave tasks for several graphs (a workspace of lakes) without
# re-attaching on every swap.  Stale entries (a graph swap in the
# parent) are evicted by capacity; the parent's unlink reclaims the
# memory once the last attachment closes.
_WORKER_EXPORTS: "OrderedDict[Tuple[str, str], Tuple[GraphContext, List]]" = (
    OrderedDict()
)
#: Attachments a persistent worker keeps before evicting the oldest.
_WORKER_EXPORT_CAP = 8


def _open_shared_array(spec):
    """Attach one exported array; returns ``(array, shm_or_None)``.

    Two spec shapes exist (``spec[0]`` is a unique key either way):

    * ``(name, shape, dtype)`` — a shared-memory segment exported by
      :func:`_export_shared_array`; the returned handle must be kept
      alive (and closed) by the caller.
    * ``("file:...", path, offset, shape, dtype)`` — a file-backed
      array (a snapshot's mmap-loaded CSR): the worker maps the file
      read-only itself, no shared memory involved, and the handle
      slot is ``None``.

    Attaching a segment registers it with the resource tracker as if
    this worker owned it; it does not — the parent unlinks once it is
    done — and the duplicate registration makes the tracker spew
    KeyError noise at exit (bpo-39959).  Suppress registration for the
    attach only.
    """
    from multiprocessing import shared_memory

    if len(spec) == 5:
        _key, path, offset, shape, dtype = spec
        array = np.memmap(
            path, dtype=np.dtype(dtype), mode="r",
            offset=offset, shape=shape,
        )
        array.flags.writeable = False
        return array, None
    name, shape, dtype = spec
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
    except Exception:  # pragma: no cover - tracker is a CPython detail
        resource_tracker = None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        if resource_tracker is not None:
            resource_tracker.register = original_register
    array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    array.flags.writeable = False
    return array, shm


def _attach_shared_array(spec) -> np.ndarray:
    """Attach an array for the worker's whole lifetime (per-call pools)."""
    array, shm = _open_shared_array(spec)
    if shm is not None:
        _WORKER_SHM.append(shm)
    return array


def _worker_init(indptr_spec, indices_spec, num_nodes, num_values) -> None:
    """Per-call pool initializer: attach the CSR export once per worker."""
    global _WORKER_CTX
    _WORKER_CTX = GraphContext(
        indptr=_attach_shared_array(indptr_spec),
        indices=_attach_shared_array(indices_spec),
        num_nodes=num_nodes,
        num_values=num_values,
    )


def _worker_task(task):
    """Per-call pool task: run one kernel chunk against the fixed export."""
    kernel, payload, common = task
    return get_kernel(kernel)(_WORKER_CTX, payload, common)


def _evict_worker_export(key=None) -> None:
    """Drop one attachment (worker side): ``key``, or the LRU entry.

    The array views must be released before ``shm.close()`` —
    closing a segment whose buffer still has exported views raises
    ``BufferError`` — so the GraphContext reference is dropped first.
    """
    if key is None:
        _, stale = _WORKER_EXPORTS.popitem(last=False)
    else:
        stale = _WORKER_EXPORTS.pop(key)
    shms = stale[1]
    del stale  # free the GraphContext so its buffer views are released
    for shm in shms:
        with contextlib.suppress(Exception):
            shm.close()


def _persistent_worker_task(task):
    """Persistent pool task: (re)attach the export named by the task.

    Each task carries the export specs plus the set of exports live in
    the parent; a worker looks its segment names up in the attachment
    LRU and attaches on miss (evicting the oldest entry at capacity).
    Cached attachments whose export the parent has dropped are closed
    eagerly — an unlinked segment's memory is only reclaimed once the
    last attachment closes, so retaining stale generations would pin
    up to the LRU cap's worth of dead graphs.  This is what lets one
    long-lived pool serve many graphs — several lakes' worth,
    interleaved — without a restart, per-task re-attachment, or
    memory retention across graph swaps.
    """
    kernel, payload, common, specs, live_keys = task
    indptr_spec, indices_spec, num_nodes, num_values = specs
    names = (indptr_spec[0], indices_spec[0])
    live = set(live_keys)
    live.add(names)
    for cached in [k for k in _WORKER_EXPORTS if k not in live]:
        _evict_worker_export(cached)
    entry = _WORKER_EXPORTS.get(names)
    if entry is None:
        while len(_WORKER_EXPORTS) >= _WORKER_EXPORT_CAP:
            _evict_worker_export()
        indptr, indptr_shm = _open_shared_array(indptr_spec)
        indices, indices_shm = _open_shared_array(indices_spec)
        entry = (
            GraphContext(
                indptr=indptr,
                indices=indices,
                num_nodes=num_nodes,
                num_values=num_values,
            ),
            # File-backed attachments have no segment handle; their
            # mmap closes when the GraphContext is evicted.
            [s for s in (indptr_shm, indices_shm) if s is not None],
        )
        _WORKER_EXPORTS[names] = entry
    else:
        _WORKER_EXPORTS.move_to_end(names)
    return get_kernel(kernel)(entry[0], payload, common)


def _export_shared_array(array: np.ndarray):
    """Copy an array into a fresh shared-memory segment.

    Returns ``(shm, spec)`` where ``spec`` is the picklable
    ``(name, shape, dtype)`` triple workers attach with.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes)
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, (shm.name, array.shape, array.dtype.str)


def _export_array(array: np.ndarray):
    """Export one CSR array by the cheapest route; ``(shm, spec)``.

    A file-backed :class:`numpy.memmap` — a snapshot's
    ``np.load(mmap_mode="r")`` array — is *not* copied back through
    shared memory: its spec names the backing file and data offset,
    and each worker maps the same file read-only (the page cache makes
    that one physical copy system-wide).  Anything else is copied into
    a fresh shared-memory segment as before; only then is the first
    slot a live handle the caller must track.
    """
    filename = getattr(array, "filename", None)
    offset = getattr(array, "offset", None)
    if (
        filename is not None
        and offset is not None
        and getattr(array, "mode", None) in ("r", "c")
        and array.ndim == 1
        and array.flags["C_CONTIGUOUS"]
    ):
        spec = (
            f"file:{filename}@{int(offset)}",
            str(filename),
            int(offset),
            array.shape,
            array.dtype.str,
        )
        return None, spec
    return _export_shared_array(array)


def _release_segments(segments) -> None:
    """Close and unlink exported segments (idempotent, best-effort)."""
    for shm in segments:
        with contextlib.suppress(Exception):
            shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        except Exception:  # pragma: no cover - platform quirks
            pass


class _GraphExport:
    """One live shared-memory export: graph ref, task specs, segments."""

    __slots__ = ("ref", "specs", "segments")

    def __init__(self, ref, specs, segments) -> None:
        self.ref = ref
        self.specs = specs
        self.segments = segments


class ProcessBackend(ExecutionBackend):
    """Multi-core execution over a shared-memory worker pool.

    The CSR arrays are shipped to workers via
    :mod:`multiprocessing.shared_memory`; per-chunk traffic is limited
    to the payloads and the returned partials.  Prefers the ``fork``
    start method (cheap on Linux) and falls back to the platform
    default elsewhere.

    With ``persistent=False`` (default) the pool and the export live
    for one ``map_chunks`` call.  With ``persistent=True`` both
    survive across calls: the first call forks the pool and exports
    the graph; later calls against the *same* graph object reuse both,
    and a call against a different graph adds a second live export
    while the pool keeps running — one pool can serve many graphs
    concurrently (the multi-lake ``Workspace`` relies on this).  An
    export is released when its graph is garbage-collected, when the
    owner calls :meth:`invalidate_export`, or at :meth:`close`.
    Persistent backends are thread-safe — the export table is locked,
    and concurrent ``map_chunks`` calls share the pool — and must be
    released with :meth:`close` (or a ``with`` block).
    """

    name = "process"

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        persistent: bool = False,
    ) -> None:
        self.jobs = max(1, n_jobs if n_jobs is not None else available_cores())
        self.chunk_size = chunk_size
        self.persistent = persistent
        self._lock = threading.RLock()
        self._pool = None
        # Live exports, keyed by the exporting graph's id().  Each
        # entry holds a weak reference to the graph (its death-watch
        # callback releases the export), the picklable specs tasks
        # carry, and the parent-side SharedMemory handles.
        self._exports: "OrderedDict[int, _GraphExport]" = OrderedDict()
        self._closed = False
        # Concurrency bookkeeping for the persistent path: exports
        # replaced while `_inflight` maps are running are parked in
        # `_retired` and unlinked only once the last map drains, so an
        # in-flight call never loses its segments mid-computation;
        # `close()` waits on `_idle` for the same drain before it
        # terminates the pool.
        self._inflight = 0
        self._retired: List = []
        self._idle = threading.Condition(self._lock)
        # close() barrier: `_closed` flips as soon as a closer commits
        # (rejecting new maps), `_close_complete` only once teardown
        # finished.  A second concurrent close() waits for the first
        # to *complete* instead of returning while segments still
        # exist — callers (backend_scope's finally, HomographIndex
        # teardown, __del__) treat "close() returned" as "resources
        # released".
        self._close_complete = False

    @staticmethod
    def _context():
        """The multiprocessing context (``fork`` where available)."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    # ------------------------------------------------------------------
    # Persistent lifecycle
    # ------------------------------------------------------------------
    @property
    def pool_alive(self) -> bool:
        """Whether a persistent worker pool is currently running."""
        return self._pool is not None

    @property
    def export_names(self) -> Tuple[str, ...]:
        """Names of the live shared-memory segments (diagnostics)."""
        with self._lock:
            return tuple(
                shm.name
                for export in self._exports.values()
                for shm in export.segments
            )

    @property
    def _segments(self) -> List:
        """Flat view of every live export's segments (diagnostics)."""
        with self._lock:
            return [
                shm
                for export in self._exports.values()
                for shm in export.segments
            ]

    def export_names_for(self, graph) -> Tuple[str, ...]:
        """Segment names of one graph's live export (empty if none)."""
        with self._lock:
            export = self._exports.get(id(graph))
            if export is None or export.ref() is not graph:
                return ()
            return tuple(shm.name for shm in export.segments)

    def _ensure_pool(self):
        """Fork the persistent pool on first use."""
        if self._pool is None:
            self._pool = self._context().Pool(processes=self.jobs)
        return self._pool

    def ensure_started(self) -> None:
        """Fork the persistent pool now, on the calling thread.

        Serving owners call this before handing work to background
        threads: forking from a thread pool risks inheriting a
        sibling thread's locks in the child (and warns on 3.12+), so
        the fork is best taken on the caller's own thread while the
        process is still single-threaded.  No-op for per-call mode
        (those pools are forked inside each ``map_chunks`` by design)
        and for an already-started or closed backend.
        """
        if not self.persistent:
            return
        with self._lock:
            if not self._closed:
                self._ensure_pool()

    def _ensure_export(self, graph):
        """Reuse or build the shared-memory export for ``graph``.

        Exports are keyed to graph objects via weak references: each
        distinct live graph gets its own export (a workspace of lakes
        shares the one pool), and a graph's death releases its export
        automatically through the weakref callback.
        """
        key = id(graph)
        export = self._exports.get(key)
        if export is not None:
            if export.ref() is graph:
                return export.specs
            # id() reuse: the original graph died (its callback is
            # pending or suppressed) and `graph` recycled the address.
            self._drop_export_locked(key)
        indptr_shm, indptr_spec = _export_array(graph.indptr)
        segments = [s for s in (indptr_shm,) if s is not None]
        indices_shm, indices_spec = _export_array(graph.indices)
        if indices_shm is not None:
            segments.append(indices_shm)
        specs = (
            indptr_spec, indices_spec, graph.num_nodes, graph.num_values
        )

        def _on_collect(_ref, self_ref=weakref.ref(self), key=key):
            backend = self_ref()
            if backend is not None:
                backend._release_dead_export(key)

        self._exports[key] = _GraphExport(
            ref=weakref.ref(graph, _on_collect),
            specs=specs,
            segments=segments,
        )
        return specs

    def _release_dead_export(self, key: int) -> None:
        """Weakref callback target: a graph died, drop its export."""
        with self._lock:
            if not self._closed and key in self._exports:
                self._drop_export_locked(key)

    def _drop_export_locked(self, key: int) -> None:
        """Retire or release one export (caller holds the lock).

        With maps in flight the segments are parked instead of
        unlinked — a worker that has not attached yet would otherwise
        hit ``FileNotFoundError`` mid-call; the last draining map
        unlinks the parked segments.
        """
        export = self._exports.pop(key, None)
        if export is None:
            return
        if self._inflight > 0:
            self._retired.extend(export.segments)
        else:
            _release_segments(export.segments)

    def invalidate_export(self, graph=None) -> None:
        """Release cached exports now (the pool keeps running).

        Called by owners that know a graph changed — e.g.
        ``HomographIndex`` table mutations — so segment memory is
        freed before the next query re-exports.  ``graph=None`` drops
        every export (the single-index spelling); passing a graph
        drops only that graph's export, leaving siblings that share
        the backend untouched.  In-flight calls keep their segments
        until they finish.
        """
        with self._lock:
            if graph is None:
                for key in list(self._exports):
                    self._drop_export_locked(key)
            else:
                key = id(graph)
                export = self._exports.get(key)
                if export is not None and export.ref() in (graph, None):
                    self._drop_export_locked(key)

    def close(self) -> None:
        """Shut the pool down and unlink every exported segment.

        Marks the backend closed first (new ``map_chunks`` calls fail
        fast with ``RuntimeError``), then waits for in-flight calls to
        drain before terminating the pool, so a concurrent ``detect``
        finishes cleanly rather than dying mid-``pool.map``.

        Idempotent *and* a barrier: when two threads race — e.g. an
        index drain and a ``backend_scope`` exit after a failed map —
        the loser blocks until the winner's teardown completes, so
        ``close()`` returning always means the pool is gone and the
        shared-memory segments are unlinked.
        """
        with self._lock:
            if self._closed:
                # Another closer won the race (or a failed map's
                # cleanup already closed us): wait for its teardown to
                # finish so *this* return also means "released".
                while not self._close_complete:
                    self._idle.wait()
                return
            self._closed = True
            while self._inflight > 0:
                self._idle.wait()
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.terminate()
                pool.join()
            for export in self._exports.values():
                _release_segments(export.segments)
            _release_segments(self._retired)
            self._exports = OrderedDict()
            self._retired = []
            self._close_complete = True
            self._idle.notify_all()

    def __del__(self):  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_chunks(self, graph, kernel, payloads, common):
        """Fan the payloads across worker processes; see the class doc."""
        payloads = list(payloads)
        if not payloads:
            return []
        get_kernel(kernel)  # fail fast in the parent on unknown names
        if self.persistent:
            return self._map_persistent(graph, kernel, payloads, common)
        return self._map_per_call(graph, kernel, payloads, common)

    def _map_persistent(self, graph, kernel, payloads, common):
        """Serve one call from the long-lived pool + cached export."""
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "ProcessBackend is closed; create a new backend"
                )
            specs = self._ensure_export(graph)
            pool = self._ensure_pool()
            # Snapshot of every live export's cache key: workers use
            # it to close attachments for exports we have dropped.
            live_keys = tuple(
                (export.specs[0][0], export.specs[1][0])
                for export in self._exports.values()
            )
            self._inflight += 1
        try:
            tasks = [
                (kernel, payload, common, specs, live_keys)
                for payload in payloads
            ]
            return pool.map(_persistent_worker_task, tasks, chunksize=1)
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight == 0:
                    if self._retired:
                        _release_segments(self._retired)
                        self._retired = []
                    self._idle.notify_all()

    def _map_per_call(self, graph, kernel, payloads, common):
        """Historical one-shot path: pool and export live for this call."""
        workers = min(self.jobs, len(payloads))
        segments = []
        try:
            indptr_shm, indptr_spec = _export_array(graph.indptr)
            if indptr_shm is not None:
                segments.append(indptr_shm)
            indices_shm, indices_spec = _export_array(graph.indices)
            if indices_shm is not None:
                segments.append(indices_shm)
            ctx = self._context()
            with ctx.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(
                    indptr_spec,
                    indices_spec,
                    graph.num_nodes,
                    graph.num_values,
                ),
            ) as pool:
                tasks = [(kernel, payload, common) for payload in payloads]
                return pool.map(_worker_task, tasks, chunksize=1)
        finally:
            _release_segments(segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessBackend(n_jobs={self.jobs}, "
            f"chunk_size={self.chunk_size}, "
            f"persistent={self.persistent})"
        )


def backend_stats(
    backend: Optional[ExecutionBackend], configured: bool
) -> dict:
    """JSON-safe health block for one backend (``None``-safe).

    The shared shape behind every ``pool`` block in
    ``HomographIndex.stats`` / ``Workspace.stats`` / ``GET /stats``,
    so a new diagnostic field lands everywhere at once.
    """
    pool: dict = {"configured": configured}
    if backend is not None:
        pool["backend"] = type(backend).__name__
        pool["jobs"] = backend.jobs
        pool["persistent"] = getattr(backend, "persistent", False)
        pool["alive"] = getattr(backend, "pool_alive", False)
        pool["segments"] = len(getattr(backend, "export_names", ()))
    return pool


# ---------------------------------------------------------------------
# Backend resolution and the serving override
# ---------------------------------------------------------------------
#: Per-thread override installed by :func:`use_backend`; lets an owner
#: of a long-lived backend (e.g. ``HomographIndex``) route the core
#: measures' ``resolve_backend`` calls onto its shared pool without
#: widening every measure signature.
_ACTIVE_BACKEND: contextvars.ContextVar[Optional[ExecutionBackend]] = (
    contextvars.ContextVar("repro_perf_active_backend", default=None)
)


@contextlib.contextmanager
def use_backend(backend: ExecutionBackend) -> Iterator[ExecutionBackend]:
    """Route ``resolve_backend`` onto ``backend`` inside the block.

    Scoped to the current thread (a :mod:`contextvars` variable), so
    concurrent requests on other threads are unaffected.  This is how
    a serving owner keeps one persistent pool shared across the core
    measures without changing their signatures::

        backend = ProcessBackend(n_jobs=4, persistent=True)
        with use_backend(backend):
            betweenness_scores(graph)        # runs on the shared pool
    """
    token = _ACTIVE_BACKEND.set(backend)
    try:
        yield backend
    finally:
        _ACTIVE_BACKEND.reset(token)


def resolve_backend(execution) -> ExecutionBackend:
    """Turn an execution spec into a backend.

    Accepts ``None`` (the serial reference path — unless a
    :func:`use_backend` override is active, which then wins), an
    :class:`ExecutionConfig`, or an already-constructed
    :class:`ExecutionBackend` (returned as-is, so long-lived backends
    can be threaded through APIs that accept configs).

    A backend constructed *here* from a bare config has no owner to
    close it later; call sites that only need it for one computation
    should prefer :func:`backend_scope`, which closes constructed
    backends on exit (releasing a persistent pool nobody could ever
    reuse) while leaving caller-owned instances and overrides alone.
    """
    if isinstance(execution, ExecutionBackend):
        return execution
    active = _ACTIVE_BACKEND.get()
    if active is not None:
        return active
    if execution is None:
        return SerialBackend()
    if execution.resolved_backend == "process":
        return ProcessBackend(
            n_jobs=execution.effective_jobs,
            chunk_size=execution.chunk_size,
            persistent=execution.persistent,
        )
    return SerialBackend(chunk_size=execution.chunk_size)


@contextlib.contextmanager
def backend_scope(execution) -> Iterator[ExecutionBackend]:
    """Resolve a backend for one computation, closing it if owned.

    *Owned* means :func:`resolve_backend` constructed it here from a
    config (or ``None``) — as opposed to an :class:`ExecutionBackend`
    instance passed by the caller or a :func:`use_backend` override,
    both of which stay the caller's responsibility.  Closing owned
    backends keeps a stray ``ExecutionConfig(persistent=True)`` on a
    one-shot call (e.g. carried inside a deserialized
    ``DetectRequest``) from leaking a worker pool and its
    shared-memory segments: with no one holding the instance, the
    pool could never be reused anyway.  The core measures run their
    ``map_chunks`` calls inside this scope.
    """
    owned = (
        not isinstance(execution, ExecutionBackend)
        and _ACTIVE_BACKEND.get() is None
    )
    backend = resolve_backend(execution)
    try:
        yield backend
    finally:
        if owned:
            backend.close()
