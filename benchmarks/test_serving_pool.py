"""Serving-layer benchmark (ISSUE 3): warm pool vs per-call pools.

Times repeated ``HomographIndex.detect`` calls (sampled betweenness,
fresh seed per call so the score cache never short-circuits) in three
configurations — serial reference, per-call ``ProcessBackend`` (a pool
forked and torn down inside every call), and a warm *persistent* pool
(forked once, reused) — and proves the two ISSUE-3 claims:

* the warm pool has measurably lower per-call overhead than per-call
  pool creation (asserted: warm mean < cold mean), with scores always
  matching the serial reference;
* K concurrent identical requests trigger exactly one measure
  computation (single-flight, asserted on a thread fan-out).

Artifacts: ``BENCH_PR3.json`` at the repo root (machine-readable) and
``benchmarks/results/serving_pool.txt`` (human-readable), mirroring
the PR-2 perf harness.
"""

import json
import threading
import time
from pathlib import Path

import numpy as np

from conftest import write_result

import repro.api.index as index_module
from repro import DetectRequest, ExecutionConfig, HomographIndex
from repro.perf import available_cores

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Scoring calls per configuration (each with a fresh seed).
REPEATS = 5
#: Sampled-BC sources per call: big enough to be real work, small
#: enough that pool setup is a visible fraction of a cold call.
SAMPLES = 64
#: Concurrent identical requests for the single-flight proof.
FANOUT_THREADS = 8


def _timed_detects(index, seeds):
    """Per-call wall times and the last response's score map."""
    times = []
    scores = None
    for seed in seeds:
        start = time.perf_counter()
        response = index.detect(
            measure="betweenness", sample_size=SAMPLES, seed=seed
        )
        times.append(time.perf_counter() - start)
        scores = response.scores
    return times, scores


def test_warm_pool_beats_per_call_pools(sb, results_dir):
    seeds = list(range(REPEATS))
    lake = sb.lake

    serial_index = HomographIndex(lake)
    serial_times, serial_scores = _timed_detects(serial_index, seeds)

    cold_index = HomographIndex(
        lake, execution=ExecutionConfig(backend="process", n_jobs=2)
    )
    cold_times, cold_scores = _timed_detects(cold_index, seeds)
    cold_index.close()

    with HomographIndex(
        lake,
        execution=ExecutionConfig(
            backend="process", n_jobs=2, persistent=True
        ),
    ) as warm_index:
        # The first call pays the one-time pool fork + export; time it
        # separately, then measure the steady warm state.
        first_start = time.perf_counter()
        warm_index.detect(
            measure="betweenness", sample_size=SAMPLES, seed=seeds[0]
        )
        warm_first_s = time.perf_counter() - first_start
        warm_index.clear_cache()
        warm_times, warm_scores = _timed_detects(warm_index, seeds)

    # Parity: same seed => same sampled sources => identical scores up
    # to float association, on every execution path.
    for name, scores in [("cold", cold_scores), ("warm", warm_scores)]:
        assert scores.keys() == serial_scores.keys()
        np.testing.assert_allclose(
            [scores[v] for v in sorted(scores)],
            [serial_scores[v] for v in sorted(serial_scores)],
            atol=1e-9,
            err_msg=f"{name} pool diverged from the serial reference",
        )

    cold_mean = sum(cold_times) / len(cold_times)
    warm_mean = sum(warm_times) / len(warm_times)
    serial_mean = sum(serial_times) / len(serial_times)
    # The headline assertion: reusing the pool removes the per-call
    # fork + export overhead, so a warm call must be cheaper than a
    # cold one on any machine.
    assert warm_mean < cold_mean, (
        f"warm persistent pool ({warm_mean:.3f}s/call) not faster than "
        f"per-call pools ({cold_mean:.3f}s/call)"
    )

    report = {
        "serving_pool": {
            "repeats": REPEATS,
            "samples": SAMPLES,
            "n_jobs": 2,
            "serial_per_call_s": round(serial_mean, 4),
            "cold_per_call_s": round(cold_mean, 4),
            "warm_per_call_s": round(warm_mean, 4),
            "warm_first_call_s": round(warm_first_s, 4),
            "overhead_saved_s": round(cold_mean - warm_mean, 4),
            "speedup_vs_cold": round(cold_mean / warm_mean, 3)
            if warm_mean > 0 else float("inf"),
            "parity": "asserted vs serial (atol=1e-9)",
        },
        "single_flight": _single_flight_proof(lake),
        "_meta": {
            "cpus": available_cores(),
            "note": (
                "warm vs cold isolates pool reuse; absolute times are "
                "host-dependent, the warm<cold ordering is asserted"
            ),
        },
    }
    (REPO_ROOT / "BENCH_PR3.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"serving pool — cpus={available_cores()}, n_jobs=2, "
        f"repeats={REPEATS}, samples={SAMPLES}",
        f"serial   {serial_mean:7.3f}s/call",
        f"cold     {cold_mean:7.3f}s/call  (pool forked per call)",
        f"warm     {warm_mean:7.3f}s/call  "
        f"(persistent pool; first call {warm_first_s:.3f}s)",
        f"saved    {cold_mean - warm_mean:7.3f}s/call  "
        f"({cold_mean / warm_mean:.2f}x)",
        f"single-flight: {report['single_flight']['threads']} threads -> "
        f"{report['single_flight']['computations']} computation(s)",
    ]
    write_result(results_dir, "serving_pool", "\n".join(lines))


def _single_flight_proof(lake):
    """K concurrent identical requests must run the measure once."""
    calls = {"n": 0}
    real_run_measure = index_module.run_measure

    def counting_run_measure(graph, request):
        calls["n"] += 1
        time.sleep(0.2)  # hold the flight open so followers coalesce
        return real_run_measure(graph, request)

    index = HomographIndex(lake)
    index.graph  # pre-build: threads contend on scoring only
    request = DetectRequest(measure="lcc")
    barrier = threading.Barrier(FANOUT_THREADS)
    responses = []

    index_module.run_measure = counting_run_measure
    try:
        def call():
            barrier.wait(5)
            responses.append(index.detect(request))

        threads = [
            threading.Thread(target=call) for _ in range(FANOUT_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        index_module.run_measure = real_run_measure

    assert calls["n"] == 1, (
        f"{FANOUT_THREADS} concurrent identical requests triggered "
        f"{calls['n']} computations; expected exactly 1"
    )
    reference = responses[0].scores
    assert all(r.scores == reference for r in responses)
    return {
        "threads": FANOUT_THREADS,
        "computations": calls["n"],
        "coalesced_plus_hits": index.cache_info().coalesced
        + index.cache_info().hits,
    }
