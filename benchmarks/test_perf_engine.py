"""Perf regression harness for the parallel compute engine (ISSUE 2).

Times the four hot workloads — exact Brandes BC, source-sampled BC
(s=256), the Riondato–Kornaropoulos estimator, and the LCC — on the
synthetic SB and TUS-default lakes, serial vs. ``ProcessBackend`` with
``n_jobs`` in {2, 4}.  Two artifacts come out of every run:

* ``BENCH_PR2.json`` at the repo root — machine-readable
  ``{workload: {serial_s, parallel_s, speedup, ...}}`` so speedups are
  comparable PR-over-PR;
* ``benchmarks/results/perf_engine.txt`` — the human-readable table.

Parity between backends is *asserted* on every workload (that part is
enforced regardless of machine); the timings are informational when
the host has fewer cores than ``n_jobs`` — a process pool cannot beat
serial on one core, and ``_meta.cpus`` in the JSON records the
context.

Scale knob (``REPRO_PERF_SCALE``):

* ``smoke`` — CI-sized: thinner TUS slice, fewer samples, n_jobs=2
  only; surfaces pickling/shared-memory breakage fast.
* ``default`` — tier-1-sized: exact BC on a footnote-9 attribute
  slice of TUS (~20k edges) to keep the suite quick.
* ``full`` — the acceptance workload: exact BC on the *entire*
  TUS-default graph (minutes serial; run on a multi-core box).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import write_result

from repro.core.approx import riondato_kornaropoulos_bc
from repro.core.betweenness import betweenness_scores
from repro.core.builder import build_graph
from repro.core.lcc import lcc_scores
from repro.perf import ExecutionConfig, available_cores

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALE = os.environ.get("REPRO_PERF_SCALE", "default")
_PARAMS = {
    # (tus exact-BC attribute slice, sb exact-BC attribute slice,
    #  sampled-BC sources, RK sample cap, parallel job counts)
    "smoke": dict(tus_attrs=80, sb_attrs=16, samples=64, rk_samples=64,
                  jobs=(2,)),
    "default": dict(tus_attrs=160, sb_attrs=None, samples=256,
                    rk_samples=256, jobs=(2, 4)),
    "full": dict(tus_attrs=None, sb_attrs=None, samples=256,
                 rk_samples=256, jobs=(2, 4)),
}
PARAMS = _PARAMS.get(SCALE, _PARAMS["default"])


def _slice_attributes(graph, max_attributes):
    """Footnote-9 extraction: the subgraph of the first K attributes."""
    if max_attributes is None or graph.num_attributes <= max_attributes:
        return graph
    attrs = range(graph.num_values, graph.num_values + max_attributes)
    return graph.subgraph_from_attributes(list(attrs))


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _run_workload(name, fn, report, lines):
    """Serial reference + one parallel run per job count, with parity."""
    reference, serial_s = _time(lambda: fn(None))
    per_jobs = {}
    for jobs in PARAMS["jobs"]:
        execution = ExecutionConfig(backend="process", n_jobs=jobs)
        scores, elapsed = _time(lambda: fn(execution))
        # Enforced on every machine: the parallel engine must
        # reproduce serial scores (float-association noise only).
        np.testing.assert_allclose(
            scores, reference, atol=1e-9,
            err_msg=f"{name}: ProcessBackend(n_jobs={jobs}) diverged "
                    f"from SerialBackend",
        )
        per_jobs[str(jobs)] = round(elapsed, 4)
    best = min(per_jobs, key=per_jobs.get)
    parallel_s = per_jobs[best]
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    report[name] = {
        "serial_s": round(serial_s, 4),
        "parallel_s": parallel_s,
        "speedup": round(speedup, 3),
        "n_jobs": int(best),
        "per_jobs": per_jobs,
    }
    jobs_text = "  ".join(
        f"j{jobs}={seconds:.2f}s" for jobs, seconds in per_jobs.items()
    )
    lines.append(
        f"{name:16s} serial={serial_s:7.2f}s  {jobs_text}  "
        f"speedup={speedup:.2f}x"
    )


def test_perf_engine(sb, tus, results_dir):
    report = {}
    lines = [
        f"perf engine — scale={SCALE}, cpus={available_cores()}, "
        f"jobs={list(PARAMS['jobs'])}",
    ]

    graphs = {
        "sb": build_graph(sb.lake, min_occurrences=2),
        "tus": build_graph(tus.lake, min_occurrences=2),
    }
    for lake_name, graph in graphs.items():
        exact_graph = _slice_attributes(
            graph, PARAMS[f"{lake_name}_attrs"]
        )
        lines.append(
            f"[{lake_name}] {graph!r}; exact-BC graph: {exact_graph!r}"
        )

        _run_workload(
            f"{lake_name}_exact_bc",
            lambda execution, g=exact_graph: betweenness_scores(
                g, execution=execution
            ),
            report, lines,
        )
        _run_workload(
            f"{lake_name}_sampled_bc",
            lambda execution, g=graph: betweenness_scores(
                g, sample_size=PARAMS["samples"], seed=0,
                execution=execution,
            ),
            report, lines,
        )
        _run_workload(
            f"{lake_name}_rk",
            lambda execution, g=graph: riondato_kornaropoulos_bc(
                g, seed=0, max_samples=PARAMS["rk_samples"],
                execution=execution,
            ),
            report, lines,
        )
        _run_workload(
            f"{lake_name}_lcc",
            lambda execution, g=graph: lcc_scores(
                g, execution=execution
            ),
            report, lines,
        )

    report["_meta"] = {
        "scale": SCALE,
        "cpus": available_cores(),
        "jobs": list(PARAMS["jobs"]),
        "note": (
            "speedups require cpus >= n_jobs; parity assertions are "
            "enforced unconditionally"
        ),
    }
    (REPO_ROOT / "BENCH_PR2.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    write_result(results_dir, "perf_engine", "\n".join(lines))

    # Every workload must have produced a positive serial baseline.
    assert all(
        entry["serial_s"] > 0
        for name, entry in report.items()
        if not name.startswith("_")
    )
