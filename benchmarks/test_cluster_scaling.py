"""PR 10: router-vs-direct serving throughput and failover recovery.

Two record-only scenarios publishing to ``BENCH_PR10.json``:

* **Scaling** — the same read-only mixed workload driven twice: once
  directly against the primary replica, once through the
  :class:`~repro.cluster.ClusterRouter` fronting a three-member
  fleet.  On a single-core CI container the fleet cannot beat one
  process (everyone shares the core, and the router adds a hop), so
  throughput is *recorded*, not asserted; what IS asserted is
  correctness — zero client-visible errors on both runs and
  byte-identical rankings across the fleet after a mutation chain.
* **Failover recovery** — SIGKILL one replica and measure how long
  the supervisor takes to respawn it back to healthy, plus how long
  oplog resync takes to lag 0.  Recorded as seconds; asserted only to
  have happened.

Scale knob: ``REPRO_PERF_SCALE=smoke`` (CI) shrinks workers and the
load window.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from conftest import write_result
from repro import HomographIndex, Table
from repro.bench.loadgen import build_mixed_schedule, run_load
from repro.bench.report import update_bench_section
from repro.bench.synthetic import SBConfig, generate_sb
from repro.cluster import start_cluster
from repro.serving.client import HomographClient

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR10.json"
SCALE = os.environ.get("REPRO_PERF_SCALE", "default")

# (workers, seconds per run, ops per schedule)
SHAPE = {
    "smoke": (2, 1.2, 40),
    "default": (4, 3.0, 120),
    "full": (8, 8.0, 400),
}.get(SCALE, (4, 3.0, 120))

#: Read-only mix: every op the router may retry on a sibling replica.
READ_MIX = (
    ("detect_hit", 50),
    ("ranking", 35),
    ("detect_miss", 15),
)


def _meta():
    return {"scale": SCALE, "note": "loadgen closed-loop harness"}


def _wait(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestClusterScaling:
    def test_router_vs_direct_and_failover(self, tmp_path, results_dir):
        workers, seconds, ops = SHAPE
        snapshot = tmp_path / "sb"
        index = HomographIndex(
            generate_sb(SBConfig(rows=60, seed=0)).lake
        )
        index.save(snapshot)

        supervisor, router = start_cluster(snapshot, replicas=3)
        try:
            schedules = [
                build_mixed_schedule(["sb"], ops=ops, seed=w,
                                     mix=READ_MIX)
                for w in range(workers)
            ]
            primary_url = supervisor.replicas.primary.url
            direct = run_load(primary_url, schedules, duration=seconds)
            routed = run_load(router.url, schedules, duration=seconds)
            assert direct.errors == {}, direct.errors
            assert routed.errors == {}, routed.errors
            assert direct.completed > 0 and routed.completed > 0

            # Parity oracle: a mutation chain through the router
            # converges every member to byte-identical rankings.
            client = HomographClient(router.url, timeout=30.0)
            client.add_table(Table.from_columns(
                "B1", {"A": ["Jaguar", "Kestrel"], "B": ["1", "2"]}
            ))
            client.remove_table("B1")
            client.add_table(Table.from_columns(
                "B2", {"A": ["Puma", "Reebok"], "B": ["1", "2"]}
            ))
            assert _wait(lambda: all(
                replica.applied_seq >= 3 and replica.oplog_lag == 0
                for replica in supervisor.replicas
                if replica.role != "primary"
            )), supervisor.replicas.stats()
            rankings = [
                [
                    (entry.rank, entry.value, entry.score)
                    for entry in HomographClient(
                        replica.url, timeout=30.0
                    ).iter_ranking("lcc")
                ]
                for replica in supervisor.replicas
            ]
            assert rankings[0] == rankings[1] == rankings[2]

            # Failover recovery: SIGKILL a replica, time the heal.
            victim = supervisor.replicas.get("replica-2")
            pid = supervisor.stats()["pids"]["replica-2"]
            restarts_before = victim.restarts
            killed_at = time.monotonic()
            os.kill(pid, signal.SIGKILL)
            assert _wait(
                lambda: victim.restarts > restarts_before
                and victim.healthy
            )
            healthy_s = time.monotonic() - killed_at
            assert _wait(
                lambda: victim.applied_seq >= 3
                and victim.oplog_lag == 0
            )
            resynced_s = time.monotonic() - killed_at
        finally:
            router.drain()
            supervisor.stop()

        payload = {
            "workers": workers,
            "window_s": seconds,
            "direct": direct.to_dict(),
            "router": routed.to_dict(),
            "router_overhead": {
                "direct_rps": round(direct.throughput_rps, 1),
                "router_rps": round(routed.throughput_rps, 1),
            },
            "failover": {
                "healthy_s": round(healthy_s, 3),
                "resynced_s": round(resynced_s, 3),
            },
        }
        update_bench_section(
            BENCH_PATH, "cluster_scaling", payload, _meta()
        )
        lines = [
            f"cluster scaling over 3-member fleet "
            f"(scale={SCALE}, {seconds:.1f}s per run, "
            f"{workers} workers)",
            "[direct -> primary]",
            *direct.format_lines(),
            "[via router]",
            *routed.format_lines(),
            f"failover: healthy in {healthy_s:.2f}s, "
            f"resynced in {resynced_s:.2f}s",
        ]
        write_result(results_dir, "cluster_scaling", "\n".join(lines))
