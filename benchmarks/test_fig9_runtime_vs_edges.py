"""E-F9: regenerate Figure 9 — approx-BC runtime vs subgraph size.

Paper: over random subgraphs of the NYC-education graph (footnote-9
extraction), the runtime of approximate BC with 1% sampled nodes grows
linearly with the number of edges (the O(s*m) bound).  Expectation
here: runtime increases with edge count and runtime-per-edge stays
within a band (no super-linear blow-up).
"""

from conftest import write_result

from repro.eval.experiments import experiment_runtime_scaling

EDGE_TARGETS = (25_000, 50_000, 75_000, 100_000)


def test_fig9_runtime_vs_edges(benchmark, results_dir):
    result = benchmark.pedantic(
        experiment_runtime_scaling,
        kwargs={"edge_targets": EDGE_TARGETS},
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig9_runtime_vs_edges", result.format())

    times = [seconds for _e, _n, seconds in result.rows]
    edges = [e for e, _n, _s in result.rows]
    assert edges == sorted(edges)
    assert times[-1] > times[0]
    # Linear shape: per-edge cost does not drift by more than 60%
    # between the smallest and largest subgraph.
    assert result.is_roughly_linear(tolerance=0.6)
