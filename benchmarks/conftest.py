"""Shared fixtures for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md §4 for the experiment index).  Datasets are built
once per session; each benchmark writes the regenerated series to
``benchmarks/results/<experiment>.txt`` so the numbers survive the
pytest-benchmark timing table.

Scale knob: set ``REPRO_BENCH_SCALE=paper`` to run the TUS-like lake at
published scale (slow — intended for a full reproduction run, not CI).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.injection import remove_homographs
from repro.bench.synthetic import generate_sb
from repro.bench.tus import TUSConfig, generate_tus

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def sb():
    return generate_sb()


@pytest.fixture(scope="session")
def tus():
    if bench_scale() == "paper":
        return generate_tus(TUSConfig.paper())
    return generate_tus()


@pytest.fixture(scope="session")
def tus_clean(tus):
    """TUS-I base: the TUS-like lake with all homographs removed."""
    lake, groups = remove_homographs(tus)
    return lake, groups


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's regenerated series."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
