"""E-F10: regenerate Figure 10 — impact of injected homographs on D4.

Paper: on TUS-I, D4 finds 134 domains with no injected homographs; the
count and the max/average domains assigned per column all grow as
homographs are injected (134 -> ~160 at 200 injections; max 2 -> 4;
avg 1.031 -> 1.04; at 5,000 injections max 22, avg 1.7).

Expectation here: per-column domain assignment degrades as injections
increase — the average domains-per-column at the heaviest injection
level exceeds the clean baseline.  (Total domain count is noisier in
this reimplementation; the per-column pollution is the asserted trend,
see EXPERIMENTS.md.)
"""

from conftest import write_result

from repro.bench.tus import TUSConfig, generate_tus
from repro.eval.experiments import experiment_d4_impact

INJECTIONS = (50, 100, 150, 200)
MEANINGS = (2, 4, 6)

# Mid-size lake: enough domains and string values that the heaviest
# injection level (200 x 6 distinct-domain values) stays satisfiable.
FIG10_CONFIG = TUSConfig(
    num_domains=24,
    num_seed_tables=8,
    seed_columns_range=(3, 7),
    seed_rows_range=(300, 1500),
    slices_per_seed_range=(6, 12),
    slice_rows_range=(10, 500),
    vocab_size_range=(60, 1500),
    seed=3,
)


def test_fig10_d4_domain_inflation(benchmark, results_dir):
    tus = generate_tus(FIG10_CONFIG)
    result = benchmark.pedantic(
        experiment_d4_impact,
        kwargs={
            "tus": tus,
            "injection_counts": INJECTIONS,
            "meanings": MEANINGS,
        },
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig10_d4_domain_inflation", result.format())

    # The heaviest injection level must pollute per-column assignment.
    heaviest = [
        avg for n, m, _d, _mx, avg in result.rows
        if n == max(INJECTIONS) and m == max(MEANINGS)
    ]
    assert heaviest[0] > result.baseline_avg_per_column

    # And pollution grows with the number of meanings at fixed n.
    by_meanings = {
        m: avg for n, m, _d, _mx, avg in result.rows if n == max(INJECTIONS)
    }
    assert by_meanings[max(MEANINGS)] >= by_meanings[min(MEANINGS)]
