"""Adversarial homoglyph detection: skeleton-aware vs exact-match.

Forge confusable collisions into the SB lake and the homograph-free
TUS-I lake (``forge_homoglyphs``), then measure precision/recall@k of
``skeleton_betweenness`` against the exact-match ``betweenness``
baseline.  The exact pipeline treats each forged variant as a fresh
low-centrality value, so it must miss *every* purely-confusable
forgery; the skeleton quotient merges the variant with its anchor and
recovers the collision.  Results land in the ``homoglyph`` section of
``BENCH_PR9.json`` (shared schema, PR 8).

Scale knob: ``REPRO_PERF_SCALE=smoke`` forges fewer collisions and
swaps the session TUS lake for the small configuration so the CI job
finishes in seconds.
"""

import json
import os
from pathlib import Path

import pytest
from conftest import write_result

from repro.api.index import HomographIndex
from repro.bench.injection import (
    ForgeConfig,
    forge_homoglyphs,
    remove_homographs,
)
from repro.bench.report import update_bench_section
from repro.bench.tus import TUSConfig, generate_tus
from repro.eval.metrics import precision_recall_at_k

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR9.json"
SCALE = os.environ.get("REPRO_PERF_SCALE", "default")
NUM_FORGERIES = 4 if SCALE == "smoke" else 10
# Default-scale TUS graphs are too large for exact BC in a benchmark
# run; 1000 sources matches the Figure-7 harness.
TUS_SAMPLE = None if SCALE == "smoke" else 1000


def _merge_homoglyph_section(key, payload):
    """Fold one dataset's results into the shared ``homoglyph`` section."""
    section = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
        if isinstance(existing, dict) and isinstance(
            existing.get("homoglyph"), dict
        ):
            section = dict(existing["homoglyph"])
    section[key] = payload
    update_bench_section(
        BENCH_PATH, "homoglyph", section, meta={"scale": SCALE}
    )


def _evaluate(forged, sample_size=None, seed=0, extra_k=0):
    """Rank the forged lake under both measures and score them.

    Returns the results payload plus the two ``PrecisionRecall`` rows
    over the forged-variant ground truth at k = |targets| + ``extra_k``
    (anchors plus variants is the cut a perfect skeleton ranking can
    fill; ``extra_k`` grants headroom for a lake's *natural*
    homographs, which legitimately out-rank forged pairs).
    """
    truth = forged.forged_set
    k = len(forged.targets) + extra_k
    with HomographIndex(forged.lake) as index:
        baseline = index.detect(
            measure="betweenness", sample_size=sample_size, seed=seed
        )
        skeletal = index.detect(
            measure="skeleton_betweenness",
            sample_size=sample_size,
            seed=seed,
        )
        graph_values = index.graph.num_values
    base_pr = precision_recall_at_k(baseline.ranking.values, truth, k)
    skel_pr = precision_recall_at_k(skeletal.ranking.values, truth, k)
    payload = {
        "num_forgeries": len(forged.forgeries),
        "k": k,
        "graph_values": graph_values,
        "sample_size": sample_size,
        "skeleton_collisions": skeletal.parameters[
            "skeleton_collisions"
        ],
        "baseline": {
            "precision": base_pr.precision,
            "recall": base_pr.recall,
            "f1": base_pr.f1,
            "measure_seconds": baseline.measure_seconds,
        },
        "skeleton": {
            "precision": skel_pr.precision,
            "recall": skel_pr.recall,
            "f1": skel_pr.f1,
            "measure_seconds": skeletal.measure_seconds,
        },
    }
    return payload, base_pr, skel_pr


def _assert_separation(payload, base_pr, skel_pr):
    """The acceptance contract shared by both forged lakes."""
    # The exact-match baseline must miss every purely-confusable
    # forgery: variants are fresh values it has no reason to rank.
    assert base_pr.recall == 0.0
    # The skeleton-aware measure strictly beats it and recovers the
    # planted collisions nearly completely.
    assert skel_pr.recall > base_pr.recall
    assert skel_pr.recall >= 0.9
    assert payload["skeleton_collisions"] >= payload["num_forgeries"]


def _format(name, payload):
    base = payload["baseline"]
    skel = payload["skeleton"]
    return (
        f"{name}: {payload['num_forgeries']} forgeries, "
        f"k={payload['k']}, {payload['graph_values']} values\n"
        f"  baseline  P={base['precision']:.3f} "
        f"R={base['recall']:.3f} F1={base['f1']:.3f}\n"
        f"  skeleton  P={skel['precision']:.3f} "
        f"R={skel['recall']:.3f} F1={skel['f1']:.3f}"
    )


@pytest.fixture(scope="module")
def forged_sb(sb):
    # SB's planted natural homographs stay out of the forge so the
    # forged ground truth is exactly the confusable collisions.
    return forge_homoglyphs(
        sb.lake,
        sb.ground_truth.attribute_groups,
        ForgeConfig(num_forgeries=NUM_FORGERIES, seed=0),
        exclude=set(sb.homographs),
    )


@pytest.fixture(scope="module")
def forged_tus(request):
    if SCALE == "smoke":
        lake, groups = remove_homographs(
            generate_tus(TUSConfig.small(seed=1))
        )
    else:
        lake, groups = request.getfixturevalue("tus_clean")
    return forge_homoglyphs(
        lake, groups, ForgeConfig(num_forgeries=NUM_FORGERIES, seed=0)
    )


def test_sb_skeleton_recall_beats_exact_baseline(
    benchmark, sb, forged_sb, results_dir
):
    # SB's 55 planted natural homographs legitimately crowd the top
    # ranks, so the cut leaves room for them above the forged pairs.
    payload, base_pr, skel_pr = benchmark.pedantic(
        _evaluate,
        args=(forged_sb,),
        kwargs={"extra_k": len(sb.homographs)},
        rounds=1,
        iterations=1,
    )
    _merge_homoglyph_section("sb", payload)
    write_result(
        results_dir, "homoglyph_sb", _format("SB (forged)", payload)
    )
    _assert_separation(payload, base_pr, skel_pr)


def test_tus_skeleton_recall_beats_exact_baseline(
    benchmark, forged_tus, results_dir
):
    payload, base_pr, skel_pr = benchmark.pedantic(
        _evaluate,
        args=(forged_tus,),
        kwargs={"sample_size": TUS_SAMPLE, "seed": 0},
        rounds=1,
        iterations=1,
    )
    _merge_homoglyph_section("tus", payload)
    write_result(
        results_dir, "homoglyph_tus",
        _format("TUS-I (forged)", payload),
    )
    _assert_separation(payload, base_pr, skel_pr)


def test_bench_report_section_is_schema_valid():
    from repro.bench.report import validate_bench_report

    report = json.loads(BENCH_PATH.read_text())
    assert validate_bench_report(report) == []
    assert set(report["homoglyph"]) >= {"sb", "tus"}
