"""E-T1: regenerate Table 1 — dataset statistics.

Paper row (SB):        13 tables,   39 attrs,  17,633 values,    55 hom
Paper row (TUS):    1,327 tables, 9,859 attrs, 190,399 values, 26,035 hom
Expectation here: same structure; SB matches exactly on tables/attrs/
homographs, the TUS-like scale is configuration-dependent.
"""

from conftest import write_result

from repro.eval.experiments import experiment_table1


def test_table1_dataset_statistics(benchmark, sb, tus, results_dir):
    result = benchmark.pedantic(
        experiment_table1, kwargs={"sb": sb, "tus": tus},
        rounds=1, iterations=1,
    )
    text = result.format()
    write_result(results_dir, "table1_dataset_stats", text)

    lines = text.splitlines()
    sb_row = next(line for line in lines if line.startswith("SB"))
    cells = sb_row.split()
    assert cells[1] == "13"    # tables
    assert cells[2] == "39"    # attributes
    assert cells[4] == "55"    # homographs
    assert cells[6] == "2"     # meanings
