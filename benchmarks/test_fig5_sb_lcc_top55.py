"""E-F5: regenerate Figure 5 — SB top-55 values by (ascending) LCC.

Paper: fewer than 25% of the top-55 LCC values are homographs — the
local measure does not separate them.  Expectation here: LCC finds
strictly fewer homographs in its top-55 than betweenness does (the
BC side is asserted in the Figure 6 benchmark).
"""

from conftest import write_result

from repro.eval.experiments import experiment_sb_top55


def test_fig5_lcc_top55(benchmark, sb, results_dir):
    result = benchmark.pedantic(
        experiment_sb_top55, args=("lcc",), kwargs={"sb": sb},
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig5_sb_lcc_top55", result.format())

    assert result.total_homographs == 55
    # LCC is the weak measure: it must not dominate its own top-55.
    assert result.homographs_in_top < 45
