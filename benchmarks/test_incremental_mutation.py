"""Incremental mutation benchmark: delta splice vs full rebuild.

One table lands in a warm TUS-small index that is already serving the
paper's two rankings (LCC and exact betweenness).  Two ways to absorb
it:

* **full rebuild** — what every mutation cost before delta awareness:
  rebuild the bipartite graph from the mutated lake and recompute both
  rankings from scratch;
* **delta** — ``add_table`` splices the new rows into the CSR arrays
  and patches the cached scores, recomputing only the sources the new
  component touches; the follow-up detects are cache hits.

The headline assertion is the tentpole's reason to exist: the delta
path must be at least ``MIN_SPEEDUP``x faster than the rebuild *and*
bit-identical to it (exact float equality on every score, same ranking
order — parity is asserted in the same run the speedup is measured).
Artifacts: ``BENCH_PR7.json`` at the repo root (machine-readable) and
``benchmarks/results/incremental_mutation.txt``, mirroring the PR-2/
PR-3/PR-6 harnesses.

Scale knob (``REPRO_PERF_SCALE``): ``smoke`` shrinks the injected
table for CI; any other value uses the default size.  The lake is
TUS-small either way.
"""

import json
import os
import time
from pathlib import Path

from conftest import write_result

from repro import DataLake, DetectRequest, HomographIndex, Table
from repro.bench.tus import TUSConfig, generate_tus

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALE = os.environ.get("REPRO_PERF_SCALE", "default")

#: The delta path must beat the full rebuild by at least this factor.
MIN_SPEEDUP = 5.0

#: Rankings the index serves while the mutation lands: the paper's two
#: measures, exactly as a server would publish them.
WARM_REQUESTS = (
    DetectRequest(measure="lcc"),
    DetectRequest(measure="betweenness"),
)

#: Rows in the injected table (each value appears twice, so the table
#: survives min-occurrence pruning and forms its own component).
INJECT_ROWS = 40 if SCALE == "smoke" else 120


def _injected_table() -> Table:
    values = [f"bench-zz-{i:04d}" for i in range(INJECT_ROWS)]
    shifted = values[1:] + values[:1]
    return Table.from_columns(
        "bench-incremental", {"left": values, "right": shifted}
    )


def _full_rebuild(lake):
    """Fresh index on the mutated lake: graph build + both rankings."""
    start = time.perf_counter()
    index = HomographIndex(DataLake(t for t in lake))
    responses = [index.detect(request) for request in WARM_REQUESTS]
    seconds = time.perf_counter() - start
    index.close()
    return seconds, responses


def test_delta_mutation_beats_full_rebuild(results_dir):
    dataset = generate_tus(TUSConfig.small(seed=0))
    index = HomographIndex(dataset.lake)
    for request in WARM_REQUESTS:
        index.detect(request)

    # Delta path: splice + scoped score maintenance + cache-hit serves.
    start = time.perf_counter()
    index.add_table(_injected_table())
    delta_responses = [index.detect(request) for request in WARM_REQUESTS]
    delta_seconds = time.perf_counter() - start

    mutation = index.last_mutation
    assert mutation["fallback"] is None, (
        f"delta path expected, fell back: {mutation}"
    )
    assert mutation["patched_entries"] == len(WARM_REQUESTS)
    assert all(r.cached for r in delta_responses), (
        "patched entries must serve as cache hits"
    )

    full_seconds, full_responses = _full_rebuild(index.lake)

    # Parity in the same run the speedup is measured: every score
    # bit-identical, same ranking order.
    for got, want in zip(delta_responses, full_responses):
        assert got.scores == want.scores, (
            f"delta scores diverged from rebuild for "
            f"{want.request.measure}"
        )
        assert (
            [(e.value, e.score) for e in got.ranking]
            == [(e.value, e.score) for e in want.ranking]
        )

    speedup = full_seconds / delta_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"delta mutation ({delta_seconds * 1000:.1f}ms) is only "
        f"{speedup:.1f}x faster than the full rebuild "
        f"({full_seconds:.3f}s); the tentpole promises "
        f">= {MIN_SPEEDUP:.0f}x on TUS-small"
    )

    graph = index.graph
    report = {
        "incremental_mutation": {
            "lake": "tus-small",
            "tables": len(index.lake),
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "injected_rows": INJECT_ROWS,
            "delta_values": mutation["delta_values"],
            "delta_edges": mutation["delta_edges"],
            "recomputed_sources": mutation["recomputed_sources"],
            "splice_s": round(mutation["splice_seconds"], 5),
            "delta_path_s": round(delta_seconds, 4),
            "full_rebuild_s": round(full_seconds, 4),
            "speedup": round(speedup, 1),
            "min_speedup_asserted": MIN_SPEEDUP,
            "warm_configurations": len(WARM_REQUESTS),
            "parity": (
                "asserted: exact float equality on every score and "
                "ranking position vs a from-scratch rebuild"
            ),
        },
        "_meta": {
            "scale": SCALE,
            "note": (
                "delta = add_table (CSR splice + scoped score patch) "
                "+ both rankings as cache hits; full = graph rebuild "
                "+ both rankings from scratch; absolute times are "
                "host-dependent, the >=5x ordering is asserted"
            ),
        },
    }
    (REPO_ROOT / "BENCH_PR7.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"incremental mutation — tus-small + 1 table "
        f"({INJECT_ROWS} rows, {mutation['delta_values']} new values, "
        f"{mutation['delta_edges']} edge slots)",
        f"full rebuild {full_seconds * 1000:9.1f}ms  "
        f"(graph build + LCC + exact BC)",
        f"delta splice {delta_seconds * 1000:9.1f}ms  "
        f"(splice {mutation['splice_seconds'] * 1000:.1f}ms, "
        f"{mutation['recomputed_sources']} sources recomputed)",
        f"speedup      {speedup:9.1f}x  (asserted >= {MIN_SPEEDUP:.0f}x)",
    ]
    write_result(results_dir, "incremental_mutation", "\n".join(lines))
    index.close()
