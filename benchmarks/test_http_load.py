"""PR 8: the serving tier under real concurrent load, plus fairness.

Two scenarios, both driven by :mod:`repro.bench.loadgen` (the
stdlib-only closed-loop load generator) and both publishing to
``BENCH_PR8.json``:

* **Mixed load** — a real ``python -m repro.cli serve`` subprocess
  hosting two SB lakes takes a seed-reproducible mixed workload
  (cache-hit detects, cache-miss detects, ranking pages, async jobs,
  table mutations) from N keep-alive workers; we record p50/p95/p99,
  throughput at a light and a saturating worker count, and per-lake
  breakdowns.
* **Fairness** — the acceptance scenario for the two-level admission
  gate: six workers hammer a slow "hot" lake while two workers read a
  fast "cold" lake on a 4-slot server.  With per-lake quotas the cold
  lake's p99 stays within a bounded factor of its unloaded baseline
  and the hot lake absorbs every rejection; with ``lake_quota=0``
  (the pre-PR-8 single global gate) the very same traffic starves the
  cold lake, visible as ``over-capacity`` rejections against it.

Scale knob: ``REPRO_PERF_SCALE=smoke`` (CI) shrinks workers and
durations; ``full`` runs a longer, wider sweep.  Latency *assertions*
are bounded-factor comparisons with generous additive floors — the
pass/fail signal comes from rejection accounting, which is a property
of the gate, not of machine speed.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from conftest import write_result
from repro import (
    DataLake,
    MeasureOutput,
    Table,
    Workspace,
    dump_lake,
    register_measure,
    start_server,
    unregister_measure,
)
from repro.bench.loadgen import (
    LoadOp,
    build_mixed_schedule,
    run_load,
    split_schedule,
)
from repro.bench.report import update_bench_section
from repro.bench.synthetic import SBConfig, generate_sb
from repro.serving.client import HomographClient

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR8.json"
SCALE = os.environ.get("REPRO_PERF_SCALE", "default")

# (light workers, heavy workers, seconds per run, schedule ops)
MIXED_SHAPE = {
    "smoke": (2, 6, 1.2, 120),
    "default": (4, 16, 4.0, 400),
    "full": (8, 48, 15.0, 1200),
}.get(SCALE, (4, 16, 4.0, 400))

# (hot workers, cold workers, seconds per run)
FAIRNESS_SHAPE = {
    "smoke": (6, 2, 1.2),
    "default": (6, 2, 2.5),
    "full": (12, 4, 8.0),
}.get(SCALE, (6, 2, 2.5))

#: The fairness bound the gate must hold: the cold lake's p99 under
#: hot-lake bombardment, vs. its unloaded baseline.  The additive
#: floor absorbs scheduler noise on loaded CI machines; the factor is
#: the real contract (starvation inflates p99 by the *hot* compute
#: time, orders of magnitude above this).
FAIRNESS_FACTOR = 5.0
FAIRNESS_FLOOR_S = 0.30

HOT_SLEEP_S = 0.05
COLD_SLEEP_S = 0.002


@pytest.fixture
def leak_guard():
    """Fail the test if it leaks threads, fds, or /dev/shm segments."""
    def fd_count():
        return len(os.listdir("/proc/self/fd"))

    def shm_listing():
        try:
            return set(os.listdir("/dev/shm"))
        except OSError:
            return set()

    threads_before = set(threading.enumerate())
    shm_before = shm_listing()
    fds_before = fd_count()
    yield
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [
            thread for thread in threading.enumerate()
            if thread not in threads_before and thread.is_alive()
        ]
        if not leaked and fd_count() <= fds_before + 4:
            break
        time.sleep(0.05)
    leaked = [
        thread.name for thread in threading.enumerate()
        if thread not in threads_before and thread.is_alive()
    ]
    assert not leaked, f"leaked threads: {leaked}"
    assert fd_count() <= fds_before + 4, (
        f"fd count grew {fds_before} -> {fd_count()}"
    )
    leaked_shm = shm_listing() - shm_before
    assert not leaked_shm, f"leaked /dev/shm segments: {leaked_shm}"


def _meta():
    return {"scale": SCALE, "note": "loadgen closed-loop harness"}


class TestMixedLoad:
    """The tentpole: drive a live serve subprocess with mixed traffic."""

    def test_mixed_workload_over_live_server(
        self, tmp_path, results_dir, leak_guard
    ):
        light_workers, heavy_workers, seconds, ops = MIXED_SHAPE
        for name, seed in (("alpha", 0), ("beta", 1)):
            directory = tmp_path / name
            directory.mkdir()
            dump_lake(generate_sb(SBConfig(rows=60, seed=seed)).lake,
                      directory)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             str(tmp_path / "alpha"), str(tmp_path / "beta"),
             "--port", "0", "--max-concurrent", str(heavy_workers),
             "--request-timeout", "30"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=str(REPO_ROOT),
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address in serve banner: {banner!r}"
            url = f"http://127.0.0.1:{match.group(1)}"
            with HomographClient(url, timeout=30.0) as probe:
                probe.wait_ready()

            schedule = build_mixed_schedule(
                ("alpha", "beta"), ops=ops, seed=0
            )
            light = run_load(
                url, split_schedule(schedule, light_workers),
                duration=seconds,
            )
            heavy = run_load(
                url, split_schedule(schedule, heavy_workers),
                duration=seconds,
            )
            with HomographClient(url, timeout=30.0) as probe:
                gate = probe.stats()["http"]["gate"]
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
            if proc.poll() is None:  # pragma: no cover - stuck server
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err

        for report in (light, heavy):
            assert report.completed > 0
            # No service-level failures at all; allow a whisker of
            # transport-level noise (named after exception classes) —
            # closed-loop harnesses over real sockets see the odd
            # reset on loaded machines.
            service_errors = {
                code: count for code, count in report.errors.items()
                if not code[:1].isupper()
            }
            assert not service_errors, f"load errors: {report.errors}"
            transport_errors = sum(report.errors.values())
            assert transport_errors <= max(2, report.completed // 100), (
                f"excessive transport errors: {report.errors}"
            )
            # Mixed traffic reached both mounted lakes.
            assert set(report.by_lake) == {"alpha", "beta"}
            assert report.overall.percentile(99) > 0
        # Closed-loop saturation: the heavier worker count must not
        # *lose* throughput catastrophically (it may plateau).
        saturation = max(light.throughput_rps, heavy.throughput_rps)
        assert saturation > 0
        assert gate["limit"] == heavy_workers and gate["fair"] is True

        payload = {
            "light": light.to_dict(),
            "heavy": heavy.to_dict(),
            "saturation_rps": round(saturation, 1),
            "gate": gate,
        }
        update_bench_section(BENCH_PATH, "http_load", payload, _meta())
        lines = [
            f"mixed load over live serve subprocess "
            f"(scale={SCALE}, {seconds:.1f}s per run)",
            f"[light x{light.workers}]",
            *light.format_lines(),
            f"[heavy x{heavy.workers}]",
            *heavy.format_lines(),
            f"saturation {saturation:.1f} req/s",
        ]
        write_result(results_dir, "http_load", "\n".join(lines))


def _sleep_lake(name: str) -> DataLake:
    return DataLake([
        Table.from_columns(f"{name}-t1", {"v": ["X", "Y", "X"]}),
        Table.from_columns(f"{name}-t2", {"v": ["X", "Z"]}),
    ])


def _detect_schedule(lake: str, measure: str, worker: int) -> list:
    """An endless-cycle schedule of always-fresh detects on one lake.

    Seeds are unique per (worker, position) so every op misses the
    score cache and really occupies a fresh-compute slot.
    """
    return [
        LoadOp(
            kind="detect_miss",
            lake=lake,
            request={
                "measure": measure,
                "sample_size": 8,
                "seed": worker * 1_000_000 + position,
            },
            op_id=position,
        )
        for position in range(512)
    ]


@pytest.fixture
def sleep_measures():
    """Hot (slow) and cold (fast) compute, as registered measures."""
    def hot(graph, request):
        time.sleep(HOT_SLEEP_S)
        return MeasureOutput(scores={"X": 1.0}, descending=True)

    def cold(graph, request):
        time.sleep(COLD_SLEEP_S)
        return MeasureOutput(scores={"X": 1.0}, descending=True)

    register_measure("bench-hot-sleep", hot)
    register_measure("bench-cold-sleep", cold)
    yield
    unregister_measure("bench-hot-sleep")
    unregister_measure("bench-cold-sleep")


def _fairness_run(hot_workers, cold_workers, seconds, **server_options):
    """One measured window against a fresh two-lake server.

    ``hot_workers=0`` gives the unloaded cold baseline.  Returns a
    (load report, gate stats) pair; the report's per-lake histograms
    split the traffic because each worker targets exactly one lake.
    """
    workspace = Workspace()
    workspace.attach("hot", _sleep_lake("hot"))
    workspace.attach("cold", _sleep_lake("cold"))
    server = start_server(workspace, port=0, **server_options)
    try:
        schedules = [
            _detect_schedule("hot", "bench-hot-sleep", worker)
            for worker in range(hot_workers)
        ] + [
            _detect_schedule("cold", "bench-cold-sleep", 100 + worker)
            for worker in range(cold_workers)
        ]
        report = run_load(
            server.url, schedules, duration=seconds, warmup=False,
        )
        with HomographClient(server.url, timeout=30.0) as probe:
            gate = probe.stats()["http"]["gate"]
    finally:
        server.drain()
    return report, gate


class TestFairness:
    """The acceptance scenario: a hot lake must not starve its sibling."""

    def test_hot_lake_cannot_starve_sibling(
        self, sleep_measures, results_dir, leak_guard
    ):
        hot_workers, cold_workers, seconds = FAIRNESS_SHAPE
        limit = 4

        baseline, _ = _fairness_run(
            0, cold_workers, seconds, max_concurrent=limit,
        )
        fair, fair_gate = _fairness_run(
            hot_workers, cold_workers, seconds, max_concurrent=limit,
        )
        unfair, unfair_gate = _fairness_run(
            hot_workers, cold_workers, seconds, max_concurrent=limit,
            lake_quota=0,
        )

        baseline_p99 = baseline.by_lake["cold"].percentile(99)
        fair_p99 = fair.by_lake["cold"].percentile(99)
        unfair_p99 = unfair.by_lake["cold"].percentile(99)

        # The tentpole's contract: with per-lake quotas, bombarding
        # the hot lake leaves the cold lake's p99 within a bounded
        # factor of its unloaded baseline...
        bound = FAIRNESS_FACTOR * baseline_p99 + FAIRNESS_FLOOR_S
        assert fair_p99 <= bound, (
            f"cold p99 {fair_p99 * 1000:.1f}ms exceeded fairness bound "
            f"{bound * 1000:.1f}ms (baseline {baseline_p99 * 1000:.1f}ms)"
        )
        # ...every rejection lands on the lake that caused the
        # overload.  Most are quota-scoped (lake-over-capacity); a few
        # can be global, when the cold lake's own two slots top up the
        # shared limit at the instant a hot request arrives (the gate
        # checks the global cap first to keep the single-lake error
        # surface stable).  None land on the cold lake.
        assert fair.rejected_for("hot") > 0
        assert fair.rejected.get("hot", {}).get("lake-over-capacity", 0) > 0
        assert fair.rejected_for("cold") == 0
        assert fair_gate["lakes"]["hot"]["rejected"] > 0
        assert fair_gate["lakes"]["cold"]["rejected"] == 0
        # ...and the cold lake keeps making real progress.
        assert fair.by_lake["cold"].count > 0

        # Control: the very same traffic on the pre-PR-8 single global
        # gate starves the cold lake — its requests bounce off a gate
        # the hot lake filled.
        assert unfair_gate["fair"] is False
        assert unfair.rejected_for("cold") > 0
        assert unfair.rejected.get("cold", {}).get("over-capacity", 0) \
            == unfair.rejected_for("cold")

        payload = {
            "baseline": baseline.to_dict(),
            "fair": fair.to_dict(),
            "unfair": unfair.to_dict(),
            "cold_p99_ms": {
                "baseline": round(baseline_p99 * 1000, 3),
                "fair": round(fair_p99 * 1000, 3),
                "unfair": round(unfair_p99 * 1000, 3),
            },
            "bound": {
                "factor": FAIRNESS_FACTOR,
                "floor_ms": FAIRNESS_FLOOR_S * 1000,
            },
            "gate": {"fair": fair_gate, "unfair": unfair_gate},
        }
        update_bench_section(BENCH_PATH, "fairness", payload, _meta())
        lines = [
            f"fairness: {hot_workers} hot vs {cold_workers} cold "
            f"workers on a {limit}-slot server (scale={SCALE})",
            f"cold p99 baseline {baseline_p99 * 1000:8.1f}ms",
            f"cold p99 fair     {fair_p99 * 1000:8.1f}ms "
            f"(bound {bound * 1000:.1f}ms; "
            f"hot rejected {fair.rejected_for('hot')}, "
            f"cold rejected {fair.rejected_for('cold')})",
            f"cold p99 unfair   {unfair_p99 * 1000:8.1f}ms "
            f"(cold rejected {unfair.rejected_for('cold')})",
        ]
        write_result(results_dir, "http_fairness", "\n".join(lines))


def test_bench_report_is_valid():
    """PR 8's own artifact conforms to the shared BENCH schema."""
    if not BENCH_PATH.exists():
        pytest.skip("BENCH_PR8.json not generated in this run order")
    from repro.bench.report import validate_bench_report

    problems = validate_bench_report(json.loads(BENCH_PATH.read_text()))
    assert problems == [], problems
