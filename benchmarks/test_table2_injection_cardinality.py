"""E-T2: regenerate Table 2 — injected-homograph recovery vs cardinality.

Paper (avg of 4 runs): >0: 85%, >=100: 93.5%, >=200: 93.5%, >=300: 95%,
>=400: 94.5%, >=500: 97.5%.  Expectation here: the unconstrained row is
the weakest and the >=500 row recovers nearly everything.
"""

from conftest import write_result

from repro.eval.experiments import experiment_injection_cardinality

THRESHOLDS = (0, 100, 200, 300, 400, 500)


def test_table2_injection_cardinality(benchmark, tus, results_dir):
    result = benchmark.pedantic(
        experiment_injection_cardinality,
        kwargs={"tus": tus, "thresholds": THRESHOLDS, "repeats": 2},
        rounds=1, iterations=1,
    )
    write_result(results_dir, "table2_injection_cardinality", result.format())

    recovery = dict(result.rows)
    # Unconstrained selection includes small-cardinality values and
    # pays for it (paper: 85% vs 97.5%).
    assert recovery[0] <= max(recovery[t] for t in THRESHOLDS[1:])
    assert recovery[500] >= 0.9
    assert all(r >= 0.7 for r in recovery.values())
