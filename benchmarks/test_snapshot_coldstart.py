"""Snapshot cold-start benchmark (ISSUE 6): rebuild vs mmap mount.

Times the two ways a process can start serving the TUS *small* lake:

* **cold** — what a restart costs without persistence: load the lake
  from CSVs, build the bipartite graph, and compute the two warmed
  rankings (LCC plus sampled betweenness) from scratch;
* **snapshot** — ``HomographIndex.load`` on a pre-built snapshot:
  manifest verification, two ``mmap`` calls, and both rankings served
  as cache hits.

The headline assertion is the subsystem's reason to exist: mounting
the snapshot must be at least ``MIN_SPEEDUP``× faster than the cold
rebuild, with identical scores.  Artifacts: ``BENCH_PR6.json`` at the
repo root (machine-readable) and
``benchmarks/results/snapshot_coldstart.txt`` (human-readable),
mirroring the PR-2/PR-3 harnesses.
"""

import json
import time
from pathlib import Path

from conftest import write_result

from repro import DetectRequest, HomographIndex
from repro.bench.tus import TUSConfig, generate_tus
from repro.datalake import dump_lake, load_lake
from repro.snapshot import load_manifest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The snapshot mount must beat the cold rebuild by at least this
#: factor — the subsystem's headline guarantee on TUS-small.
MIN_SPEEDUP = 10.0

#: The configurations shipped warm inside the snapshot (and recomputed
#: on the cold path): the paper's two measures — exact betweenness,
#: because that is the ranking a server actually publishes and the
#: computation a restart would otherwise repeat (still well under a
#: second at TUS-small scale).
WARM_REQUESTS = (
    DetectRequest(measure="lcc"),
    DetectRequest(measure="betweenness"),
)


def _tree_bytes(root: Path) -> int:
    """Total size of every file under ``root``."""
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def _cold_start(csv_dir: Path):
    """CSVs -> graph -> both rankings; seconds and the score maps."""
    start = time.perf_counter()
    index = HomographIndex(load_lake(csv_dir))
    responses = [index.detect(request) for request in WARM_REQUESTS]
    seconds = time.perf_counter() - start
    index.close()
    return seconds, responses


def _snapshot_start(snapshot: Path):
    """Mount + the same rankings (cache hits); seconds and responses."""
    start = time.perf_counter()
    index = HomographIndex.load(snapshot)
    responses = [index.detect(request) for request in WARM_REQUESTS]
    seconds = time.perf_counter() - start
    assert all(r.cached for r in responses), (
        "snapshot mount recomputed a ranking the snapshot shipped warm"
    )
    index.close()
    return seconds, responses


def test_snapshot_mount_beats_cold_rebuild(tmp_path, results_dir):
    dataset = generate_tus(TUSConfig.small(seed=0))
    csv_dir = tmp_path / "csv"
    dump_lake(dataset.lake, csv_dir)

    # Cold generation: rebuild everything from the CSVs, then publish
    # the snapshot the next generation will mount (publication time is
    # reported but not part of either start path — it happens while
    # the previous generation is still serving).
    cold_seconds, cold_responses = _cold_start(csv_dir)
    snapshot = tmp_path / "snapshot"
    with HomographIndex(load_lake(csv_dir)) as warmed:
        for request in WARM_REQUESTS:
            warmed.detect(request)
        save_start = time.perf_counter()
        warmed.save(snapshot)
        save_seconds = time.perf_counter() - save_start

    snapshot_seconds, snapshot_responses = _snapshot_start(snapshot)

    for cold, warm in zip(cold_responses, snapshot_responses):
        assert warm.scores == cold.scores, (
            f"snapshot scores diverged from the cold rebuild for "
            f"{cold.request.measure}"
        )

    speedup = cold_seconds / snapshot_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"snapshot mount ({snapshot_seconds * 1000:.1f}ms) is only "
        f"{speedup:.1f}x faster than the cold rebuild "
        f"({cold_seconds:.3f}s); the subsystem promises "
        f">= {MIN_SPEEDUP:.0f}x on TUS-small"
    )

    manifest = load_manifest(snapshot, verify=False)
    snapshot_bytes = _tree_bytes(snapshot)
    report = {
        "snapshot_coldstart": {
            "lake": "tus-small",
            "tables": len(dataset.lake),
            "edges": manifest["graph"]["num_edges"],
            "warm_configurations": len(WARM_REQUESTS),
            "cold_start_s": round(cold_seconds, 4),
            "snapshot_start_s": round(snapshot_seconds, 4),
            "snapshot_save_s": round(save_seconds, 4),
            "speedup": round(speedup, 1),
            "min_speedup_asserted": MIN_SPEEDUP,
            "snapshot_bytes": snapshot_bytes,
            "parity": "asserted: identical scores, all cache hits",
        },
        "_meta": {
            "note": (
                "cold = CSV load + graph build + both rankings; "
                "snapshot = verify + mmap + both rankings as cache "
                "hits; absolute times are host-dependent, the "
                ">=10x ordering is asserted"
            ),
        },
    }
    (REPO_ROOT / "BENCH_PR6.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"snapshot cold-start — tus-small "
        f"({len(dataset.lake)} tables, "
        f"{manifest['graph']['num_edges']} edges, "
        f"{len(WARM_REQUESTS)} warm configuration(s))",
        f"cold rebuild   {cold_seconds * 1000:9.1f}ms  "
        f"(CSV load + graph build + rankings)",
        f"snapshot mount {snapshot_seconds * 1000:9.1f}ms  "
        f"(verify + mmap + cache hits)",
        f"speedup        {speedup:9.1f}x  (asserted >= {MIN_SPEEDUP:.0f}x)",
        f"snapshot size  {snapshot_bytes / 1024:9.1f}KiB  "
        f"(saved in {save_seconds * 1000:.1f}ms)",
    ]
    write_result(results_dir, "snapshot_coldstart", "\n".join(lines))
