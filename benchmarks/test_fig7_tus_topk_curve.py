"""E-F7 + E-S5.3: regenerate Figure 7 and the §5.3 top-10 listing.

Paper: P@200 = 0.89; precision = recall = 0.622 at k = 26,035 (the
true homograph count); best F1 = 0.655 slightly past that k; the ten
highest-BC values are all homographs.  Expectation here: high precision
at small k, P=R in the paper's band at k = #homographs, best-F1 cut
within 2x of the homograph count, and a strongly homograph-dominated
top-10.
"""

from conftest import write_result

from repro.eval.experiments import experiment_tus_topk
from repro.eval.reporting import ascii_chart, export_series_csv


def test_fig7_topk_curve(benchmark, tus, results_dir):
    result = benchmark.pedantic(
        experiment_tus_topk, kwargs={"tus": tus, "sample_size": 1000},
        rounds=1, iterations=1,
    )
    chart = ascii_chart(
        result.curve_ks,
        {
            "precision": result.curve_precision,
            "recall": result.curve_recall,
            "f1": result.curve_f1,
        },
        title="Figure 7: precision / recall / F1 vs k",
    )
    export_series_csv(
        results_dir / "fig7_tus_topk_curve.csv",
        result.curve_ks,
        {
            "precision": result.curve_precision,
            "recall": result.curve_recall,
            "f1": result.curve_f1,
        },
        x_name="k",
    )
    write_result(
        results_dir, "fig7_tus_topk_curve",
        result.format() + "\n\n" + chart,
    )

    assert result.p_at_200 >= 0.75           # paper: 0.89
    assert 0.4 <= result.pr_at_truth <= 0.9  # paper: 0.622
    assert result.best_f1 >= result.pr_at_truth
    assert result.best_f1_k <= 2 * result.num_homographs

    top10_homographs = sum(1 for _v, _s, h in result.top10 if h)
    assert top10_homographs >= 8             # paper: 10/10
