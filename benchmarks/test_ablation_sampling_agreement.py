"""E-X2 (ours): exact vs sampled BC — ranking agreement vs budget.

Supports the paper's §5.4 claim that ~1% sampling "is very consistent
with the score rankings produced by the exact BC computation": the
top-55 overlap between sampled and exact rankings grows with the
sample budget and is high at ~10% of nodes.
"""

from conftest import write_result

from repro.core.detector import DomainNet
from repro.eval.metrics import ranking_overlap

SAMPLES = (50, 150, 400, 1000)


def test_ablation_sampling_agreement(benchmark, sb, results_dir):
    detector = DomainNet.from_lake(sb.lake)
    exact = detector.detect(measure="betweenness").ranking.values

    def sweep():
        overlaps = []
        for samples in SAMPLES:
            sampled = detector.detect(
                measure="betweenness", sample_size=samples, seed=13
            ).ranking.values
            overlaps.append((
                samples,
                ranking_overlap(exact, sampled, k=30),
                ranking_overlap(exact, sampled, k=55),
            ))
        return overlaps

    overlaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["top-k overlap of sampled vs exact BC ranking (SB)"]
    for samples, at30, at55 in overlaps:
        lines.append(
            f"  samples={samples:>5d}: overlap@30={at30:.2f} "
            f"overlap@55={at55:.2f}"
        )
    write_result(results_dir, "ablation_sampling_agreement", "\n".join(lines))

    # The strongly separated head of the ranking (top-30, where the
    # non-abbreviation homographs live) is stable under sampling; the
    # 30-55 band sits in the low-score noise floor and fluctuates.
    by_samples = {s: at30 for s, at30, _ in overlaps}
    assert by_samples[SAMPLES[-1]] >= 0.85
