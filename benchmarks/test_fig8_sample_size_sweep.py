"""E-F8: regenerate Figure 8 — precision and runtime vs BC sample size.

Paper: precision@|H| stabilizes near its exact-BC level (0.631) from
roughly 1,000 samples (~0.5% of nodes) while runtime grows linearly
with the sample count; exact BC took 150 minutes.  Expectation here:
the largest sample's precision is within a few points of the plateau,
small samples are cheap, and runtime increases with sample size.

The exact-BC reference runs on the small TUS configuration (exact
Brandes over every node of the default lake would dominate the whole
suite, which is the paper's point).
"""

from conftest import write_result

from repro.bench.tus import TUSConfig, generate_tus
from repro.eval.experiments import experiment_sample_size_sweep

SAMPLE_SIZES = (100, 250, 500, 1000, 2000)


def test_fig8_sample_size_sweep(benchmark, tus, results_dir):
    result = benchmark.pedantic(
        experiment_sample_size_sweep,
        kwargs={
            "tus": tus,
            "sample_sizes": SAMPLE_SIZES,
            "include_exact": False,
        },
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig8_sample_size_sweep", result.format())

    precisions = {s: p for s, p, _t in result.rows}
    times = {s: t for s, _p, t in result.rows}
    plateau = precisions[SAMPLE_SIZES[-1]]
    # Paper: precision stabilizes from small sample sizes.
    assert precisions[1000] >= plateau - 0.05
    # Runtime grows with sample count.
    assert times[2000] > times[100]


def test_fig8_exact_reference_small_tus(benchmark, results_dir):
    small = generate_tus(TUSConfig.small(seed=4))
    result = benchmark.pedantic(
        experiment_sample_size_sweep,
        kwargs={
            "tus": small,
            "sample_sizes": (100, 400, 1000),
            "include_exact": True,
        },
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig8_exact_reference", result.format())

    # Sampled precision approaches the exact-BC reference.
    last_precision = result.rows[-1][1]
    assert abs(last_precision - result.exact_precision) <= 0.10
