"""E-T3: regenerate Table 3 — recovery vs number of meanings.

Paper (cardinality >= 500): 2: 97.5%, 3: 97.5%, 4: 98.5%, 5: 98.5%,
6-8: 100%.  Expectation here: recovery stays high throughout and the
many-meanings end is at least as good as the two-meanings end.
"""

from conftest import write_result

from repro.eval.experiments import experiment_injection_meanings

MEANINGS = (2, 3, 4, 5, 6, 7, 8)


def test_table3_injection_meanings(benchmark, tus, results_dir):
    result = benchmark.pedantic(
        experiment_injection_meanings,
        kwargs={"tus": tus, "meanings": MEANINGS, "repeats": 2},
        rounds=1, iterations=1,
    )
    write_result(results_dir, "table3_injection_meanings", result.format())

    recovery = dict(result.rows)
    assert all(r >= 0.85 for r in recovery.values())
    # More meanings -> more hub-like -> at least as discoverable.
    assert recovery[8] >= recovery[2] - 0.05
