"""E-S5.1: the §5.1 headline — D4 baseline vs DomainNet on SB.

Paper: at k = 55 (the number of true homographs, where precision =
recall = F1), the D4-based detector scores 0.38 while DomainNet with
betweenness centrality scores 0.69.  Expectation here: DomainNet beats
D4 by a wide margin; both land in the paper's bands.
"""

from conftest import write_result

from repro.eval.experiments import experiment_sb_baseline


def test_sb_d4_vs_domainnet(benchmark, sb, results_dir):
    result = benchmark.pedantic(
        experiment_sb_baseline, kwargs={"sb": sb},
        rounds=1, iterations=1,
    )
    write_result(results_dir, "sb_d4_vs_domainnet", result.format())

    assert result.k == 55
    # D4 finds some homographs but far from all (paper: 0.38).
    assert 0.10 <= result.d4_precision <= 0.60
    # DomainNet's margin is the headline (paper: 0.69 vs 0.38).
    assert result.domainnet_precision >= result.d4_precision + 0.15
