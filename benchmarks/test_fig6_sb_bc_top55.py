"""E-F6: regenerate Figure 6 — SB top-55 values by (descending) BC.

Paper: 38 of the top-55 BC values are homographs, and every homograph
missing from the top-55 is a country/state abbreviation (their small,
heavily intersecting domains defeat shortest-path centrality).
Expectation here: >= 30/55, with misses drawn only from the
abbreviation class — asserted via the vocabulary registry.
"""

from conftest import write_result

from repro.bench.vocab import PLANTED_HOMOGRAPHS
from repro.eval.experiments import experiment_sb_top55


def test_fig6_bc_top55(benchmark, sb, results_dir):
    result = benchmark.pedantic(
        experiment_sb_top55, args=("betweenness",), kwargs={"sb": sb},
        rounds=1, iterations=1,
    )
    write_result(results_dir, "fig6_sb_bc_top55", result.format())

    assert result.homographs_in_top >= 30  # paper: 38

    found = {v for v, _s, is_hom in result.entries if is_hom}
    missed = sb.homographs - found
    abbreviations = {
        v for v, types in PLANTED_HOMOGRAPHS.items()
        if types == ("country_code", "state_abbr")
    }
    assert missed <= abbreviations
