"""E-X1 (ours): measure ablations the paper calls out but does not plot.

1. LCC variants — the implemented attribute-Jaccard reading vs the
   literal Eq. 1 value-neighbor Jaccard (DESIGN.md §1).  Run on a
   reduced SB because the literal variant is quadratic in |N(u)|.
2. BC endpoint modes — all nodes (paper default) vs value nodes only
   (footnote 2).  The paper found all-endpoints empirically better.
"""

from conftest import write_result

from repro.bench.synthetic import SBConfig, generate_sb
from repro.core.detector import DomainNet


def hits_at(result, homographs, k=55):
    return sum(1 for v in result.top_values(k) if v in homographs)


def test_ablation_lcc_variants(benchmark, results_dir):
    sb = generate_sb(SBConfig(rows=250, seed=0))
    detector = DomainNet.from_lake(sb.lake)

    def run_both():
        attr = detector.detect(measure="lcc", lcc_variant="attribute-jaccard")
        literal = detector.detect(measure="lcc", lcc_variant="value-neighbors")
        return attr, literal

    attr, literal = benchmark.pedantic(run_both, rounds=1, iterations=1)
    attr_hits = hits_at(attr, sb.homographs)
    literal_hits = hits_at(literal, sb.homographs)
    text = (
        "LCC variant ablation (reduced SB, top-55 homograph hits)\n"
        f"  attribute-jaccard (paper's implementation): {attr_hits}/55 "
        f"in {attr.measure_seconds:.1f}s\n"
        f"  value-neighbors (literal Eq. 1)           : {literal_hits}/55 "
        f"in {literal.measure_seconds:.1f}s"
    )
    write_result(results_dir, "ablation_lcc_variants", text)

    # The variants trade places on small lakes; the stable facts are
    # that both detect a substantial share and the literal variant
    # pays a steep computational price (its cost is what motivates the
    # paper's attribute-set implementation).
    assert literal.measure_seconds > attr.measure_seconds
    assert attr_hits >= 15
    assert literal_hits >= 15


def test_ablation_bc_endpoints(benchmark, sb, results_dir):
    detector = DomainNet.from_lake(sb.lake)

    def run_both():
        all_nodes = detector.detect(measure="betweenness", endpoints="all")
        values_only = detector.detect(
            measure="betweenness", endpoints="values"
        )
        return all_nodes, values_only

    all_nodes, values_only = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    all_hits = hits_at(all_nodes, sb.homographs)
    value_hits = hits_at(values_only, sb.homographs)
    text = (
        "BC endpoint ablation (SB, top-55 homograph hits)\n"
        f"  endpoints=all (paper default): {all_hits}/55\n"
        f"  endpoints=values (footnote 2): {value_hits}/55"
    )
    write_result(results_dir, "ablation_bc_endpoints", text)

    # Paper footnote 2: all-endpoints gave the best empirical results.
    assert all_hits >= value_hits - 3
    assert all_hits >= 30
