"""Docs build check: execute every example, verify every link.

There is no Sphinx in the container, so "building" the docs tree means
proving it cannot rot:

* every fenced ``python`` code block in ``README.md`` and
  ``docs/*.md`` is **executed** (blocks in one file share a
  namespace, so a quickstart can build on its earlier snippets);
* every relative markdown link must point at a file that exists
  (external ``http(s)``/``mailto`` links and pure anchors are
  skipped — no network in CI).

The measure registry is snapshotted around each file: examples are
allowed to ``register_measure`` without poisoning the next file (or
the test process, when driven from ``tests/test_docs.py``).

Run directly (CI does)::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose examples and links are enforced.
DOC_FILES = ("README.md", "docs")

_FENCE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    """The markdown files under check, README first."""
    files: List[Path] = []
    for entry in DOC_FILES:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def python_blocks(text: str) -> List[Tuple[int, str]]:
    """``(line, source)`` for every fenced python block in ``text``."""
    blocks = []
    for match in _FENCE.finditer(text):
        info = match.group("info").strip().lower()
        if info in ("python", "py"):
            line = text[: match.start()].count("\n") + 1
            blocks.append((line, match.group("body")))
    return blocks


def check_links(path: Path, text: str) -> List[str]:
    """Relative links in ``text`` that point at missing files."""
    problems = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link -> {target}")
    return problems


def run_blocks(path: Path, blocks=None) -> List[str]:
    """Execute the file's python blocks in one shared namespace.

    ``blocks`` takes pre-parsed ``python_blocks`` output so callers
    that already read the file do not parse it twice.
    """
    problems = []
    if blocks is None:
        blocks = python_blocks(path.read_text())
    if not blocks:
        return problems
    from repro.api import measures

    registry_snapshot = dict(measures._REGISTRY)
    namespace = {"__name__": f"docs_{path.stem}"}
    try:
        for line, source in blocks:
            try:
                exec(compile(source, f"{path}:{line}", "exec"), namespace)
            except Exception:
                problems.append(
                    f"{path.name}:{line}: example failed\n"
                    + traceback.format_exc(limit=3)
                )
    finally:
        measures._REGISTRY.clear()
        measures._REGISTRY.update(registry_snapshot)
        # Examples that open persistent pools are written with `with`
        # blocks, but close any index left in the namespace anyway.
        for value in namespace.values():
            if hasattr(value, "closed") and hasattr(value, "close"):
                try:
                    value.close()
                except Exception:  # pragma: no cover - best effort
                    pass
    return problems


def main() -> int:
    """Check every doc file; print problems, exit non-zero on any."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    files = doc_files()
    if not files:
        print("no documentation files found")
        return 1
    problems = []
    total_blocks = 0
    for path in files:
        text = path.read_text()
        problems.extend(check_links(path, text))
        blocks = python_blocks(text)
        total_blocks += len(blocks)
        problems.extend(run_blocks(path, blocks))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    names = ", ".join(p.name for p in files)
    print(f"docs OK: {len(files)} file(s), {total_blocks} executed "
          f"example block(s) ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
