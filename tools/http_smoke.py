"""HTTP serving smoke: boot two lakes, drive, drain — prove nothing leaks.

The CI ``http-smoke`` job's entry point.  Serves a two-lake
:class:`repro.Workspace` (the TUS *small* fixture plus a second SB
lake) through the real :mod:`repro.serving.http` stack — one shared
persistent 2-worker pool across both lakes — drives the namespaced
routes, the legacy aliases, and an async job to completion with the
bundled :class:`repro.serving.client.HomographClient`, drains, and
then fails on any of the leak classes an in-process test can miss:

* a ``ResourceWarning`` raised anywhere during the run or surfaced by
  the final garbage-collection sweep (unclosed sockets, files);
* a thread still alive after the drain (handler threads, the accept
  loop, dispatcher threads);
* a ``/dev/shm`` shared-memory segment that survived the drain.

Run directly (CI does)::

    python -W error::ResourceWarning tools/http_smoke.py

``--snapshot`` runs the persistence scenario instead: build a
TUS-small snapshot, serve it (job spill in the snapshot's ``jobs/``
area), drive a cache-hit detect plus an async job, *kill* the server,
restart from the same snapshot, and prove the finished job and the
warmed cache both survived — under exactly the same leak checks.

``--cluster`` runs the replication scenario: a
:class:`repro.cluster.ReplicaSupervisor` fleet of two ``domainnet
serve`` subprocesses over one snapshot behind a
:class:`repro.cluster.ClusterRouter`, mutations through the router
replicated to byte-identical state, one replica SIGKILLed and healed
back into the pool — again under the same leak checks (supervisor
loops, router threads, and subprocess pipes must all be gone).
"""

from __future__ import annotations

import gc
import json
import os
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def drive(client, tus_size: int, sb_size: int) -> None:
    """Exercise the multi-lake surface against the served workspace."""
    from repro import Table

    health = client.healthz()
    assert health["status"] == "ok", health
    assert health["tables"] == tus_size, health       # default = tus
    assert health["lakes"] == ["tus", "sb"], health

    listing = client.lakes()
    assert listing["default"] == "tus", listing
    by_name = {lake["name"]: lake for lake in listing["lakes"]}
    assert by_name["sb"]["tables"] == sb_size, listing

    tus = client.lake("tus")
    sb = client.lake("sb")

    # Cross-lake: sampled betweenness on tus, LCC on sb — both ride
    # the one shared pool; the repeated call must come from the cache.
    first = tus.detect(measure="betweenness", sample_size=60, seed=7)
    again = tus.detect(measure="betweenness", sample_size=60, seed=7)
    assert first.scores and not first.cached
    assert again.cached
    assert again.scores == first.scores
    sb_response = sb.detect(measure="lcc")
    assert sb_response.scores
    assert set(sb_response.scores) != set(first.scores)

    # Legacy un-prefixed routes alias the default (tus) lake.
    legacy = client.detect(measure="betweenness", sample_size=60, seed=7)
    assert legacy.cached and legacy.scores == first.scores

    # Cursor pagination must cover the ranking exactly once (and the
    # pages travel gzip-compressed — the client decompresses).
    walked = list(tus.iter_ranking(
        "betweenness", limit=500, sample_size=60, seed=7
    ))
    assert walked == list(first.ranking), "paged traversal diverged"

    # Async job: submit on the sb lake, poll to completion, and check
    # the terminal payload is byte-identical to the synchronous
    # (cached) response.
    job_id = sb.submit(measure="lcc")
    async_response = client.wait(job_id, timeout=120.0)
    assert async_response.cached      # the sync run above computed it
    snapshot = client.poll(job_id)
    sync_payload = json.dumps(
        sb.detect(measure="lcc").to_dict(), sort_keys=True)
    async_payload = json.dumps(snapshot["response"], sort_keys=True)
    assert async_payload == sync_payload, "async/sync payloads diverged"
    cancelled = client.cancel_job(job_id)             # finished: no-op
    assert cancelled["state"] == "done", cancelled

    # Live mutation through the namespaced API invalidates one lake.
    tus.add_table(Table.from_columns(
        "smoke_extra", {"animal": ["Jaguar", "Jaguar"], "n": ["1", "2"]}
    ))
    mutated = tus.detect(measure="betweenness", sample_size=60, seed=7)
    assert not mutated.cached
    sb_again = sb.detect(measure="lcc")
    assert sb_again.cached, "sibling lake's cache was clobbered"
    tus.remove_table("smoke_extra")

    stats = client.stats()
    assert set(stats["lakes"]) == {"tus", "sb"}, stats
    assert stats["cache"]["misses"] >= 2, stats
    assert stats["http"]["rejected"] == 0, stats
    # The two-level admission gate: fair by default, one quota slot
    # per mounted lake, and this single-client drive never rejects.
    gate = stats["http"]["gate"]
    assert gate["fair"] is True, gate
    assert set(gate["lakes"]) == {"tus", "sb"}, gate
    for lake_gate in gate["lakes"].values():
        assert lake_gate["in_flight"] == 0, gate
        assert lake_gate["quota"] >= 1, gate
        assert lake_gate["rejected"] == 0, gate
    assert gate["rejected_global"] == 0, gate
    assert stats["jobs"]["tracked"] == 1, stats
    assert stats["workspace"]["pool"]["alive"] is True, stats
    assert stats["workspace"]["pool"]["jobs"] == 2, stats
    print(f"drove {stats['http']['served']} responses; "
          f"cache={stats['cache']}; pool={stats['workspace']['pool']}; "
          f"jobs={stats['jobs']}")


def scenario_multilake() -> None:
    """The original smoke: two lakes, one pool, drive and drain."""
    from repro import (
        ExecutionConfig,
        HomographClient,
        Workspace,
        start_server,
    )
    from repro.bench.synthetic import SBConfig, generate_sb
    from repro.bench.tus import TUSConfig, generate_tus

    tus_dataset = generate_tus(TUSConfig.small(seed=0))
    sb_dataset = generate_sb(SBConfig(seed=0))
    print(f"TUS small: {len(tus_dataset.lake)} tables; "
          f"SB: {len(sb_dataset.lake)} tables")
    workspace = Workspace(
        execution=ExecutionConfig(
            backend="process", n_jobs=2, persistent=True
        ),
    )
    workspace.attach("tus", tus_dataset.lake)
    workspace.attach("sb", sb_dataset.lake)
    server = start_server(workspace, port=0)
    print(f"serving {len(workspace)} lakes on {server.url}")
    try:
        client = HomographClient(server.url, timeout=120.0)
        client.wait_ready(timeout=30.0)
        drive(
            client,
            tus_size=len(tus_dataset.lake),
            sb_size=len(sb_dataset.lake),
        )
    finally:
        server.drain()
    assert workspace.closed


def scenario_snapshot() -> None:
    """The persistence smoke: snapshot, serve, kill, restart, verify."""
    from repro import (
        DataLake,
        HomographClient,
        HomographIndex,
        Table,
        Workspace,
        start_server,
    )
    from repro.bench.tus import TUSConfig, generate_tus
    from repro.snapshot import jobs_dir, load_manifest

    dataset = generate_tus(TUSConfig.small(seed=0))
    with tempfile.TemporaryDirectory(prefix="domainnet-snap-") as tmp:
        snap = Path(tmp) / "tus"
        started = time.monotonic()
        with HomographIndex(dataset.lake) as builder:
            builder.detect(measure="lcc")       # ship a warm ranking
            builder.save(snap)
        build_seconds = time.monotonic() - started
        manifest = load_manifest(snap)
        print(f"built snapshot in {build_seconds:.2f}s "
              f"({manifest['graph']['num_edges']} edges, "
              f"{manifest['scores']} warm score(s))")

        # First server generation: mount the snapshot, spill jobs
        # into its jobs/ area, complete one async job.
        workspace = Workspace()
        started = time.monotonic()
        workspace.attach("tus", str(snap))
        load_seconds = time.monotonic() - started
        print(f"mounted snapshot in {load_seconds*1000:.1f}ms")
        assert load_seconds < build_seconds, "snapshot load too slow"
        server = start_server(
            workspace, port=0, job_dir=str(jobs_dir(snap))
        )
        try:
            client = HomographClient(
                server.url, timeout=120.0, lake="tus"
            )
            client.wait_ready(timeout=30.0)
            warm = client.detect(measure="lcc")
            assert warm.cached, "snapshot cache was not pre-warmed"
            job_id = client.submit(measure="lcc")
            HomographClient(server.url, timeout=120.0).wait(
                job_id, timeout=120.0
            )
        finally:
            server.drain()        # the "kill": full teardown
        assert workspace.closed
        del client, server, workspace
        gc.collect()

        # Second generation: a brand-new process would do exactly
        # this — same snapshot, same job_dir, nothing else shared.
        workspace = Workspace()
        workspace.attach("tus", str(snap))
        server = start_server(
            workspace, port=0, job_dir=str(jobs_dir(snap))
        )
        try:
            base = HomographClient(server.url, timeout=120.0)
            base.wait_ready(timeout=30.0)
            job = base.poll(job_id)
            assert job["state"] == "done", job
            assert job["response"]["measure"] == "lcc", job
            print("finished job survived the restart")
            tus_client = HomographClient(
                server.url, timeout=120.0, lake="tus"
            )
            again = tus_client.detect(measure="lcc")
            assert again.cached, "restart lost the warmed cache"

            # Mutate-then-detect on the snapshot-mounted (read-only
            # mmap) lake: a freshly computed ranking carries
            # maintenance state, so the add splices the CSR arrays
            # (copy-on-write — the snapshot files stay untouched) and
            # patches the ranking instead of dropping it.
            fresh = tus_client.detect(
                measure="lcc", lcc_variant="value-neighbors"
            )
            assert not fresh.cached
            extra = Table.from_columns(
                "smoke_delta",
                {"a": ["zz-a", "zz-b", "zz-a"],
                 "b": ["zz-b", "zz-c", "zz-c"]},
            )
            body = tus_client.add_table(extra)
            mutation = body["mutation"]
            assert mutation["fallback"] is None, mutation
            assert mutation["patched_entries"] >= 1, mutation
            assert mutation["delta_values"] > 0, mutation
            patched = tus_client.detect(
                measure="lcc", lcc_variant="value-neighbors"
            )
            assert patched.cached, "patched entry must serve as a hit"
            oracle_lake = DataLake(t for t in dataset.lake)
            oracle_lake.add_table(extra)
            with HomographIndex(oracle_lake) as oracle:
                want = oracle.detect(
                    measure="lcc", lcc_variant="value-neighbors"
                )
                assert patched.scores == want.scores, (
                    "patched snapshot-mounted scores diverged from a "
                    "from-scratch rebuild"
                )
            removed = tus_client.remove_table("smoke_delta")
            assert removed["mutation"]["op"] == "remove", removed
            print("snapshot-mounted mutate-then-detect: delta splice "
                  f"patched {mutation['patched_entries']} entr(y/ies), "
                  f"parity vs rebuild held")

            # Runtime mount/unmount over HTTP, against a second copy.
            second = Path(tmp) / "tus2"
            with HomographIndex(dataset.lake) as builder:
                builder.save(second)
            mounted = base.mount_lake("tus2", str(second))
            assert mounted["snapshot"] == str(second), mounted
            assert base.unmount_lake("tus2")["detached"] is True
        finally:
            server.drain()
        del base, server, workspace
        gc.collect()  # release mmap handles before the tempdir dies


def scenario_cluster() -> None:
    """The replication smoke: fleet up, replicate, kill, heal, drain."""
    import signal

    from repro import HomographClient, HomographIndex, Table
    from repro.bench.synthetic import SBConfig, generate_sb
    from repro.cluster import start_cluster

    def wait_for(predicate, timeout=60.0, interval=0.05):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(interval)
        return predicate()

    dataset = generate_sb(SBConfig(seed=0))
    with tempfile.TemporaryDirectory(prefix="domainnet-cluster-") as tmp:
        snap = Path(tmp) / "sb"
        with HomographIndex(dataset.lake) as builder:
            builder.detect(measure="lcc")       # ship a warm ranking
            builder.save(snap)

        started = time.monotonic()
        supervisor, router = start_cluster(snap, replicas=2)
        try:
            print(f"fleet of 2 up in {time.monotonic()-started:.1f}s "
                  f"behind {router.url}")
            client = HomographClient(router.url, timeout=120.0)
            client.wait_ready(timeout=30.0)

            # The router speaks the ordinary protocol: version, warm
            # cache hit, ranking pages — unchanged client code.
            version = client.version()
            assert version["library"], version
            warm = client.lake("sb").detect(measure="lcc")
            assert warm.cached, "snapshot cache was not pre-warmed"
            assert list(client.lake("sb").iter_ranking("lcc", limit=50))

            # Mutations pin to the primary, record in the oplog, and
            # replicate to bit-identical state.
            sb = client.lake("sb")
            body = sb.add_table(Table.from_columns(
                "smoke_repl",
                {"a": ["zz-a", "zz-b"], "b": ["zz-b", "zz-c"]},
            ))
            assert body["oplog_seq"] == 1, body
            sb.remove_table("smoke_repl")
            replica = supervisor.replicas.get("replica-1")
            assert wait_for(
                lambda: replica.applied_seq == 2
                and replica.oplog_lag == 0
            ), supervisor.replicas.stats()
            primary_rank = list(HomographClient(
                supervisor.replicas.primary.url, timeout=120.0,
                lake="sb",
            ).iter_ranking("lcc"))
            replica_rank = list(HomographClient(
                replica.url, timeout=120.0, lake="sb",
            ).iter_ranking("lcc"))
            assert primary_rank == replica_rank, "replica diverged"
            print(f"replicated 2 mutations; rankings identical over "
                  f"{len(primary_rank)} entries")

            # SIGKILL the replica mid-traffic: reads keep answering,
            # the supervisor respawns and resyncs it.
            os.kill(supervisor.stats()["pids"]["replica-1"],
                    signal.SIGKILL)
            for _ in range(8):
                assert client.lake("sb").detect(measure="lcc").scores
            assert wait_for(
                lambda: replica.restarts >= 1 and replica.healthy
            ), supervisor.replicas.stats()
            assert wait_for(
                lambda: replica.applied_seq == 2
                and replica.oplog_lag == 0
            ), supervisor.replicas.stats()
            print(f"replica healed after SIGKILL "
                  f"(restarts={replica.restarts})")

            stats = client._request("GET", "/cluster/stats")
            assert stats["router"]["bad_gateway"] == 0, stats
            assert all(row["healthy"] for row in stats["replicas"]), (
                stats
            )
        finally:
            router.drain()
            supervisor.stop()
        gc.collect()  # release mmap handles before the tempdir dies


def main() -> int:
    """Run the smoke; non-zero exit on any failure or leak."""
    if "--cluster" in sys.argv[1:]:
        scenario = scenario_cluster
    elif "--snapshot" in sys.argv[1:]:
        scenario = scenario_snapshot
    else:
        scenario = scenario_multilake
    shm_before = (
        set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
    )

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ResourceWarning)
        scenario()
        # Surface unclosed-resource finalizers now, inside the recorder.
        gc.collect()
        gc.collect()

    failures = []

    resource_warnings = [
        w for w in caught if issubclass(w.category, ResourceWarning)
    ]
    for warning in resource_warnings:
        failures.append(f"ResourceWarning: {warning.message} "
                        f"({warning.filename}:{warning.lineno})")

    leaked_threads = [
        t for t in threading.enumerate()
        if t is not threading.current_thread() and t.is_alive()
    ]
    for thread in leaked_threads:
        failures.append(f"leaked thread after drain: {thread!r}")

    if shm_before is not None:
        leaked_shm = set(os.listdir("/dev/shm")) - shm_before
        for name in sorted(leaked_shm):
            failures.append(f"leaked /dev/shm segment: {name}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"http smoke OK ({scenario.__name__}): no ResourceWarnings, "
          f"no leaked threads, no leaked shared memory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
