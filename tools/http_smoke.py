"""HTTP serving smoke: boot, drive, drain — and prove nothing leaks.

The CI ``http-smoke`` job's entry point.  Serves the TUS *small*
fixture through the real :mod:`repro.serving.http` stack (persistent
2-worker pool included), drives every endpoint with the bundled
:class:`repro.serving.client.HomographClient`, drains, and then fails
on any of the leak classes an in-process test can miss:

* a ``ResourceWarning`` raised anywhere during the run or surfaced by
  the final garbage-collection sweep (unclosed sockets, files);
* a thread still alive after the drain (handler threads, the accept
  loop, dispatcher threads);
* a ``/dev/shm`` shared-memory segment that survived the drain.

Run directly (CI does)::

    python -W error::ResourceWarning tools/http_smoke.py
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def drive(client, lake_size: int) -> None:
    """Exercise every endpoint once against the served TUS lake."""
    from repro import Table

    health = client.healthz()
    assert health["status"] == "ok", health
    assert health["tables"] == lake_size, health

    # Sampled betweenness keeps the smoke fast; the second call must
    # come back from the score cache.
    first = client.detect(measure="betweenness", sample_size=60, seed=7)
    again = client.detect(measure="betweenness", sample_size=60, seed=7)
    assert first.scores and not first.cached
    assert again.cached
    assert again.scores == first.scores

    # Cursor pagination must cover the ranking exactly once.
    walked = list(client.iter_ranking(
        "betweenness", limit=500, sample_size=60, seed=7
    ))
    assert walked == list(first.ranking), "paged traversal diverged"

    # Live mutation through the API invalidates the caches.
    client.add_table(Table.from_columns(
        "smoke_extra", {"animal": ["Jaguar", "Jaguar"], "n": ["1", "2"]}
    ))
    mutated = client.detect(
        measure="betweenness", sample_size=60, seed=7
    )
    assert not mutated.cached
    client.remove_table("smoke_extra")

    stats = client.stats()
    assert stats["cache"]["misses"] >= 2, stats
    assert stats["http"]["rejected"] == 0, stats
    print(f"drove {stats['http']['served']} responses; "
          f"cache={stats['cache']}; pool={stats['pool']}")


def main() -> int:
    """Run the smoke; non-zero exit on any failure or leak."""
    from repro import (
        ExecutionConfig,
        HomographClient,
        HomographIndex,
        start_server,
    )
    from repro.bench.tus import TUSConfig, generate_tus

    shm_before = (
        set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
    )

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ResourceWarning)
        dataset = generate_tus(TUSConfig.small(seed=0))
        print(f"TUS small: {len(dataset.lake)} tables, "
              f"{dataset.lake.num_attributes} attributes")
        index = HomographIndex(
            dataset.lake,
            execution=ExecutionConfig(
                backend="process", n_jobs=2, persistent=True
            ),
        )
        server = start_server(index, port=0)
        print(f"serving on {server.url}")
        try:
            client = HomographClient(server.url, timeout=120.0)
            client.wait_ready(timeout=30.0)
            drive(client, lake_size=len(dataset.lake))
        finally:
            server.drain()
        assert index.closed

        # Surface unclosed-resource finalizers now, inside the recorder.
        del client, server, index, dataset
        gc.collect()
        gc.collect()

    failures = []

    resource_warnings = [
        w for w in caught if issubclass(w.category, ResourceWarning)
    ]
    for warning in resource_warnings:
        failures.append(f"ResourceWarning: {warning.message} "
                        f"({warning.filename}:{warning.lineno})")

    leaked_threads = [
        t for t in threading.enumerate()
        if t is not threading.current_thread() and t.is_alive()
    ]
    for thread in leaked_threads:
        failures.append(f"leaked thread after drain: {thread!r}")

    if shm_before is not None:
        leaked_shm = set(os.listdir("/dev/shm")) - shm_before
        for name in sorted(leaked_shm):
            failures.append(f"leaked /dev/shm segment: {name}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("http smoke OK: endpoints healthy, no ResourceWarnings, "
          "no leaked threads, no leaked shared memory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
