"""Docstring conventions checker for the public packages.

A dependency-free stand-in for the ``pydocstyle`` / ``ruff D`` rules
this repo cares about (the container pins its toolchain, so the
checker is stdlib-``ast`` only).  Enforced over ``repro.api``,
``repro.perf``, ``repro.serving``, and ``repro.snapshot`` — the
packages whose surface ``docs/api.md`` documents:

* **D100** — every module has a docstring;
* **D101/D102/D103** — every public class / method / function has a
  docstring (names starting with ``_`` and dunders are exempt; the
  repo convention documents ``__init__`` parameters in the class
  docstring);
* **D400** — the docstring summary line ends with proper punctuation
  (``.``, ``!``, ``?``, or a ``:`` introducing a block);
* **D419** — docstrings are not empty.

Run directly (CI does)::

    python tools/check_docstyle.py

or through the test suite (``tests/test_docstyle.py``), which keeps
the rules enforced in the tier-1 run.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages whose public surface is part of docs/api.md.
CHECKED_PACKAGES = (
    REPO_ROOT / "src" / "repro" / "api",
    REPO_ROOT / "src" / "repro" / "cluster",
    REPO_ROOT / "src" / "repro" / "core" / "confusables.py",
    REPO_ROOT / "src" / "repro" / "perf",
    REPO_ROOT / "src" / "repro" / "serving",
    REPO_ROOT / "src" / "repro" / "snapshot",
)

#: Summary lines may end a sentence or introduce an indented block.
_SUMMARY_TERMINATORS = (".", "!", "?", ":")

Violation = Tuple[str, int, str, str]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_docstring(
    node, kind: str, name: str, path: Path, found: List[Violation]
) -> None:
    """Apply the presence + summary-line rules to one definition."""
    docstring = ast.get_docstring(node, clean=True)
    try:
        rel = str(path.relative_to(REPO_ROOT))
    except ValueError:  # outside the repo (self-test fixtures)
        rel = str(path)
    line = getattr(node, "lineno", 1)
    if docstring is None:
        code = {"module": "D100", "class": "D101",
                "method": "D102", "function": "D103"}[kind]
        found.append((rel, line, code, f"missing docstring on {kind} "
                                       f"{name!r}"))
        return
    if not docstring.strip():
        found.append((rel, line, "D419", f"empty docstring on {kind} "
                                         f"{name!r}"))
        return
    summary = docstring.strip().splitlines()[0].strip()
    if not summary.endswith(_SUMMARY_TERMINATORS):
        found.append((
            rel, line, "D400",
            f"summary line of {kind} {name!r} should end with one of "
            f"{_SUMMARY_TERMINATORS}: {summary!r}",
        ))


def check_file(path: Path) -> List[Violation]:
    """All violations in one python file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found: List[Violation] = []
    _check_docstring(tree, "module", path.name, path, found)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            _check_docstring(node, "class", node.name, path, found)
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_public(member.name):
                    _check_docstring(
                        member, "method",
                        f"{node.name}.{member.name}", path, found,
                    )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and _is_public(node.name):
            _check_docstring(node, "function", node.name, path, found)
    return found


def check_paths(paths: Iterable[Path]) -> List[Violation]:
    """All violations under the given files/directories."""
    found: List[Violation] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            found.extend(check_file(file))
    return found


def main() -> int:
    """Check the public packages; print violations, exit non-zero on any."""
    violations = check_paths(CHECKED_PACKAGES)
    for rel, line, code, message in violations:
        print(f"{rel}:{line}: {code} {message}")
    if violations:
        print(f"{len(violations)} docstring violation(s)")
        return 1
    checked = ", ".join(
        str(p.relative_to(REPO_ROOT)) for p in CHECKED_PACKAGES
    )
    print(f"docstyle OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
