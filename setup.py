"""Setup shim.

Metadata lives in pyproject.toml.  This file exists so that
``pip install -e .`` works on offline machines that lack the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` code path,
which does not need to build a wheel).
"""

from setuptools import setup

setup()
