"""Scan a CSV data lake for homographs — the open-data workflow.

This is the scenario the paper's introduction motivates: a lake of CSV
files with unreliable headers, where the same string means different
things in different tables.  The script

1. writes the synthetic benchmark (SB) lake to a temporary directory as
   plain CSV files — stand-ins for a real open-data download,
2. indexes it with :meth:`repro.HomographIndex.from_directory`
   (all strings, no schema),
3. runs DomainNet with sampled betweenness centrality,
4. prints the top-25 suspected homographs with their scores,
5. removes a table *through the index* and re-queries, showing how lake
   updates change homograph status without re-instantiating anything
   (a point §1 of the paper makes: homographs are a property of the
   lake, not of the value), and
6. exports the result as JSON and reads it back — the payload a service
   would return.

Run with:  python examples/data_lake_scan.py
"""

import tempfile
from pathlib import Path

from repro import DetectRequest, DetectResponse, HomographIndex, dump_lake
from repro.bench.synthetic import generate_sb

REQUEST = DetectRequest(measure="betweenness", sample_size=800, seed=7)


def scan(index: HomographIndex, label: str, top: int = 25):
    result = index.detect(REQUEST)
    print(f"\n[{label}] graph: {index.graph}")
    print(f"[{label}] top-{top} suspected homographs "
          f"(cached={result.cached}):")
    for entry in result.ranking.top(top):
        print(f"  {entry.rank:>3}. {entry.score:.5f}  {entry.value}")
    return result


def main() -> None:
    sb = generate_sb()

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "open_data"
        paths = dump_lake(sb.lake, directory)
        print(f"wrote {len(paths)} CSV files to {directory}")

        index = HomographIndex.from_directory(directory)
        result = scan(index, "full lake")

        truth = sb.homographs
        hits = sum(1 for v in result.top_values(25) if v in truth)
        print(f"\nground truth check: {hits}/25 of the top-25 are "
              f"genuine homographs")

        # Drop the zoo table: the animal meaning of JAGUAR, PUMA, ...
        # survives only in endangered_sponsors.species, so they remain
        # homographs, but values that only collided through the zoo's
        # city column lose a meaning.  The index invalidates its graph
        # and score cache and rebuilds lazily on the next query.
        index.remove_table("zoo_inventory")
        after = scan(index, "after removing zoo_inventory", top=10)

        jaguar_before = result.ranking.rank_of("JAGUAR")
        jaguar_after = after.ranking.rank_of("JAGUAR")
        print(f"\nJAGUAR rank before={jaguar_before} after={jaguar_after} "
              f"(still a homograph via the sponsors table)")

        # Results serialize for transport: JSON out, identical object in.
        payload = after.to_json(indent=2, top=5)
        reloaded = DetectResponse.from_json(payload)
        print(f"\nJSON round-trip: {len(payload)} bytes, top value "
              f"{reloaded.top_values(1)[0]!r} "
              f"(rank preserved: {reloaded.ranking[0].rank == 1})")


if __name__ == "__main__":
    main()
