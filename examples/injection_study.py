"""Controlled homograph injection — the §4.3 / Table 2 methodology.

Shows how to use the TUS-I machinery directly: generate a TUS-like
lake, strip its natural homographs, inject 25 artificial ones with
known properties, and measure how many the detector recovers in its
top-25.  Sweep the cardinality threshold to see the paper's Table 2
effect: homographs replacing well-connected values are easier to find.

Each injected lake gets its own :class:`repro.HomographIndex`; the
shared :class:`repro.DetectRequest` makes the sweep's configuration
explicit instead of repeating keyword arguments.

Run with:  python examples/injection_study.py
"""

from repro import DetectRequest, HomographIndex
from repro.bench.injection import (
    InjectionConfig,
    inject_homographs,
    injection_recovery,
    remove_homographs,
)
from repro.bench.tus import TUSConfig, generate_tus

REQUEST = DetectRequest(measure="betweenness", sample_size=400, seed=3)


def main() -> None:
    print("generating TUS-like lake...")
    tus = generate_tus(TUSConfig.small(seed=2))
    truth = tus.ground_truth
    print(f"  {len(tus.lake)} tables, "
          f"{len(truth.meanings)} values, "
          f"{len(truth.homographs)} natural homographs")

    clean, groups = remove_homographs(tus)
    print("removed all natural homographs (verified)")

    # Thresholds sized to the small demo lake (its largest attributes
    # hold a few hundred distinct values; the paper's TUS reaches 500+).
    for min_cardinality in (0, 30, 80):
        config = InjectionConfig(
            num_homographs=25,
            meanings=2,
            min_cardinality=min_cardinality,
            seed=1,
        )
        injected = inject_homographs(clean, groups, config)

        index = HomographIndex(injected.lake)
        result = index.detect(REQUEST)
        recovery = injection_recovery(injected, result.ranking.values)
        print(f"\nmin_cardinality={min_cardinality}: recovered "
              f"{recovery:.0%} of 25 injected homographs in the top-25")

        shown = 0
        for entry in result.ranking.top(25):
            if entry.value in injected.injected_set and shown < 3:
                originals = injected.replaced[entry.value]
                merged = " + ".join(
                    f"{v!r} ({d})" for v, d in originals
                )
                print(f"  rank {entry.rank:>3}: {entry.value} <- {merged}")
                shown += 1


if __name__ == "__main__":
    main()
