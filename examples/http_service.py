"""Serve a two-lake workspace over HTTP and drive it with the client.

The deployable spelling of the serving guide: mount two lakes into a
:class:`repro.Workspace`, boot the :mod:`repro.serving.http` front-end
over it (in-process here, on an ephemeral port — operationally this is
what ``domainnet serve zoo/ cars/`` does), then act as its own first
client:

* list the mounted lakes with ``GET /lakes``;
* ``POST /lakes/<name>/detect`` against each lake — the second
  request to the same lake is served from its score cache;
* run an *async* detection (``?async=1``) and poll ``GET /jobs/<id>``
  to its terminal state;
* walk a gzip-compressed ``GET /lakes/<name>/ranking/<measure>`` with
  cursor pagination;
* mutate one lake through its namespaced ``/tables`` route and watch
  only that lake's caches invalidate;
* read the merged ``GET /stats`` and drain the server cleanly.

Run with:  python examples/http_service.py
"""

from repro import DataLake, HomographClient, Table, Workspace, start_server

ZOO_TABLES = {
    "T1_donations": {
        "Donor": ["Google", "Volkswagen", "BMW", "Amazon"],
        "At Risk": ["Panda", "Puma", "Jaguar", "Pelican"],
    },
    "T2_zoos": {
        "name": ["Panda", "Panda", "Lemur", "Jaguar"],
        "locale": ["Memphis", "Atlanta", "National", "San Diego"],
    },
    "T4_companies": {
        "Name": ["Jaguar", "Puma", "Apple", "Toyota"],
        "Revenue": ["25.80", "4.64", "456", "123"],
    },
}

CAR_TABLES = {
    "makers": {
        "maker": ["Jaguar", "Toyota", "Fiat", "Jaguar"],
        "model": ["XE", "Prius", "500", "XJ"],
    },
    "dealers": {
        "city": ["Memphis", "Austin", "Memphis"],
        "brand": ["Toyota", "Fiat", "Jaguar"],
    },
}


def lake_from(tables: dict) -> DataLake:
    return DataLake(
        Table.from_columns(name, columns)
        for name, columns in tables.items()
    )


def main() -> None:
    workspace = Workspace()
    workspace.attach("zoo", lake_from(ZOO_TABLES))
    workspace.attach("cars", lake_from(CAR_TABLES))
    with start_server(workspace, port=0) as server:
        print(f"serving on {server.url}")
        client = HomographClient(server.url)
        client.wait_ready()

        listing = client.lakes()
        print(f"lakes: {[lake['name'] for lake in listing['lakes']]} "
              f"(default: {listing['default']})")

        zoo, cars = client.lake("zoo"), client.lake("cars")
        first = zoo.detect(measure="betweenness")
        again = zoo.detect(measure="betweenness")
        print(f"zoo top-3 by betweenness: {first.top_values(3)}")
        print(f"second zoo request cached: {again.cached}")

        job_id = cars.submit(measure="lcc")
        async_response = client.wait(job_id, timeout=60.0)
        state = client.poll(job_id)["state"]
        print(f"async cars job {job_id[:8]}…: {state}, "
              f"top-2 {async_response.top_values(2)}")

        walked = list(zoo.iter_ranking("betweenness", limit=2))
        assert walked == list(first.ranking), "pagination mismatch"
        print(f"paged zoo traversal: {len(walked)} entries, no gaps")

        cars.add_table(Table.from_columns(
            "lots", {"lot": ["A1", "A2"], "brand": ["Fiat", "Fiat"]},
        ))
        mutated = cars.detect(measure="lcc")
        untouched = zoo.detect(measure="betweenness")
        print(f"after POST /lakes/cars/tables: cars cached="
              f"{mutated.cached}, zoo cached={untouched.cached}")

        stats = client.stats()
        print(f"stats: {stats['http']['served']} responses served, "
              f"lakes {sorted(stats['lakes'])}, "
              f"jobs {stats['jobs']['states']}")
    print(f"drained; workspace closed: {workspace.closed}")


if __name__ == "__main__":
    main()
