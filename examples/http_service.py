"""Serve a lake over HTTP and drive it with the bundled client.

The deployable spelling of the serving guide: boot the
:mod:`repro.serving.http` front-end over a :class:`repro.HomographIndex`
(in-process here, on an ephemeral port — operationally this is what
``domainnet serve <dir>`` does), then act as its own first client:

* ``POST /detect`` twice — the second response is served from the
  score cache without recomputation;
* walk ``GET /ranking/<measure>`` with cursor pagination and check the
  traversal equals the unpaginated ranking;
* mutate the lake through ``POST /tables`` and watch the ranking
  change;
* read ``GET /stats`` and drain the server cleanly.

Run with:  python examples/http_service.py
"""

from repro import DataLake, HomographClient, HomographIndex, Table, start_server

TABLES = {
    "T1_donations": {
        "Donor": ["Google", "Volkswagen", "BMW", "Amazon"],
        "At Risk": ["Panda", "Puma", "Jaguar", "Pelican"],
    },
    "T2_zoos": {
        "name": ["Panda", "Panda", "Lemur", "Jaguar"],
        "locale": ["Memphis", "Atlanta", "National", "San Diego"],
    },
    "T3_cars": {
        "C1": ["XE", "Prius", "500"],
        "C2": ["Jaguar", "Toyota", "Fiat"],
    },
    "T4_companies": {
        "Name": ["Jaguar", "Puma", "Apple", "Toyota"],
        "Revenue": ["25.80", "4.64", "456", "123"],
    },
}


def main() -> None:
    lake = DataLake(
        Table.from_columns(name, columns)
        for name, columns in TABLES.items()
    )
    index = HomographIndex(lake)
    with start_server(index, port=0) as server:
        print(f"serving on {server.url}")
        client = HomographClient(server.url)
        client.wait_ready()

        first = client.detect(measure="betweenness")
        again = client.detect(measure="betweenness")
        print(f"top-3 by betweenness: {first.top_values(3)}")
        print(f"second request cached: {again.cached}")

        walked = list(client.iter_ranking("betweenness", limit=2))
        assert walked == list(first.ranking), "pagination mismatch"
        print(f"paged traversal: {len(walked)} entries, no gaps")

        client.add_table(Table.from_columns(
            "T5_sightings",
            {"animal": ["Leopard", "Leopard", "Jaguar"],
             "park": ["Serengeti", "Kruger", "Pantanal"]},
        ))
        mutated = client.detect(measure="betweenness")
        print(f"after POST /tables: cached={mutated.cached}, "
              f"{len(mutated.ranking)} ranked values")

        stats = client.stats()
        print(f"stats: {stats['http']['served']} responses served, "
              f"cache {stats['cache']}")
    print(f"drained; index closed: {index.closed}")


if __name__ == "__main__":
    main()
