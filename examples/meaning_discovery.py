"""Meaning discovery and error triage — the paper's §6 directions.

After detection tells you *which* values are homographs, two follow-up
questions arise (both posed as future work in the paper):

1. **How many meanings does each homograph have?**
   :meth:`repro.HomographIndex.estimate_meanings` clusters a value's
   attributes by their value-overlap; each cluster is one meaning.
2. **Is the homograph a data error?**
   :meth:`repro.HomographIndex.classify_errors` compares how much cell
   support each meaning has: a meaning backed by a single stray cell
   looks like a mis-filed value, not genuine ambiguity.  (The index
   builds and caches the unpruned graph this needs.)

The script runs both on the synthetic benchmark, plus the
community-detection view: label propagation discovers the lake's
latent domains and re-derives homographs as community-spanning values.

Run with:  python examples/meaning_discovery.py
"""

from repro import DetectRequest, HomographIndex
from repro.bench.synthetic import generate_sb
from repro.core.label_propagation import (
    cross_community_values,
    value_communities,
)


def main() -> None:
    sb = generate_sb()
    index = HomographIndex(sb.lake)
    result = index.detect(
        DetectRequest(measure="betweenness", sample_size=800, seed=7)
    )
    top = result.top_values(15)

    print("=== meanings per top-ranked candidate ===")
    for value in top:
        estimate = index.estimate_meanings(value)
        groups = "; ".join(
            ",".join(sorted(g)[:2]) + ("..." if len(g) > 2 else "")
            for g in estimate.groups
        )
        truth = "homograph" if value in sb.homographs else "unambiguous"
        print(f"  {value:<12} {estimate.num_meanings} meaning(s) "
              f"[{truth}]  ({groups})")

    print("\n=== error-vs-genuine triage ===")
    verdicts = index.classify_errors(top)
    for value in top:
        verdict = verdicts.get(value)
        if verdict:
            print(f"  {value:<12} {verdict.kind:<14} "
                  f"support={verdict.meaning_support}")

    print("\n=== community-detection view (label propagation) ===")
    graph = index.graph
    domains = value_communities(graph, seed=5)
    print(f"  {len(domains)} value communities; largest sizes: "
          f"{[len(d) for d in domains[:6]]}")
    spanning = cross_community_values(graph, seed=5)
    found = [v for v in spanning if v in sb.homographs]
    print(f"  {len(spanning)} community-spanning values, "
          f"{len(found)} of them ground-truth homographs")


if __name__ == "__main__":
    main()
