"""Meaning discovery and error triage — the paper's §6 directions.

After detection tells you *which* values are homographs, two follow-up
questions arise (both posed as future work in the paper):

1. **How many meanings does each homograph have?**
   :func:`repro.core.communities.estimate_meanings` clusters a value's
   attributes by their value-overlap; each cluster is one meaning.
2. **Is the homograph a data error?**
   :func:`repro.core.errors.classify_homographs` compares how much cell
   support each meaning has: a meaning backed by a single stray cell
   looks like a mis-filed value, not genuine ambiguity.

The script runs both on the synthetic benchmark, plus the
community-detection view: label propagation discovers the lake's
latent domains and re-derives homographs as community-spanning values.

Run with:  python examples/meaning_discovery.py
"""

from repro import DomainNet
from repro.bench.synthetic import generate_sb
from repro.core.builder import build_graph
from repro.core.communities import estimate_meanings
from repro.core.errors import classify_homographs
from repro.core.label_propagation import (
    cross_community_values,
    value_communities,
)


def main() -> None:
    sb = generate_sb()
    detector = DomainNet.from_lake(sb.lake)
    result = detector.detect(measure="betweenness", sample_size=800, seed=7)
    top = result.top_values(15)

    print("=== meanings per top-ranked candidate ===")
    graph = detector.graph
    for value in top:
        estimate = estimate_meanings(graph, value)
        groups = "; ".join(
            ",".join(sorted(g)[:2]) + ("..." if len(g) > 2 else "")
            for g in estimate.groups
        )
        truth = "homograph" if value in sb.homographs else "unambiguous"
        print(f"  {value:<12} {estimate.num_meanings} meaning(s) "
              f"[{truth}]  ({groups})")

    print("\n=== error-vs-genuine triage ===")
    unpruned = build_graph(sb.lake)
    verdicts = classify_homographs(sb.lake, top, graph=unpruned)
    for value in top:
        verdict = verdicts.get(value)
        if verdict:
            print(f"  {value:<12} {verdict.kind:<14} "
                  f"support={verdict.meaning_support}")

    print("\n=== community-detection view (label propagation) ===")
    domains = value_communities(graph, seed=5)
    print(f"  {len(domains)} value communities; largest sizes: "
          f"{[len(d) for d in domains[:6]]}")
    spanning = cross_community_values(graph, seed=5)
    found = [v for v in spanning if v in sb.homographs]
    print(f"  {len(spanning)} community-spanning values, "
          f"{len(found)} of them ground-truth homographs")


if __name__ == "__main__":
    main()
