"""Quickstart: detect homographs in the paper's running example.

Builds the four tables of Figure 1 (donors, zoos, car models, company
financials), indexes them with :class:`repro.HomographIndex`, and
prints the centrality scores of Example 3.6 — Jaguar and Puma, the two
homographs, surface at the top of the betweenness ranking.  The index
is stateful: both measures run against the same graph build, and a
repeated query is served from the score cache.

Run with:  python examples/quickstart.py
"""

from repro import DataLake, HomographIndex, Table

TABLES = {
    "T1_donations": {
        "Donor": ["Google", "Volkswagen", "BMW", "Amazon"],
        "At Risk": ["Panda", "Puma", "Jaguar", "Pelican"],
        "Donation": ["1M", "2M", "0.9M", "1.5M"],
    },
    "T2_zoos": {
        "name": ["Panda", "Panda", "Lemur", "Jaguar"],
        "locale": ["Memphis", "Atlanta", "National", "San Diego"],
        "num": ["2", "2", "20", "8"],
    },
    "T3_cars": {
        "C1": ["XE", "Prius", "500"],
        "C2": ["Jaguar", "Toyota", "Fiat"],
        "C3": ["UK", "Japan", "Italy"],
    },
    "T4_companies": {
        "Name": ["Jaguar", "Puma", "Apple", "Toyota"],
        "Revenue": ["25.80", "4.64", "456", "123"],
        "Total": ["43224", "13000", "370870", "123456"],
    },
}


def main() -> None:
    lake = DataLake(
        Table.from_columns(name, columns)
        for name, columns in TABLES.items()
    )
    print(f"lake: {len(lake)} tables, {lake.num_attributes} attributes")

    # Keep every value node so the scores match the paper's Example 3.6
    # (the default pruning drops values that occur only once).
    index = HomographIndex(lake, prune_candidates=False)
    print(f"graph: {index.graph}")

    print("\nBetweenness centrality (homographs score HIGH):")
    bc = index.detect(measure="betweenness")
    for name in ("JAGUAR", "PUMA", "TOYOTA", "PANDA"):
        print(f"  {name:<8} {bc.scores[name]:.4f}")

    print("\nLocal clustering coefficient (homographs score LOW):")
    lcc = index.detect(measure="lcc")
    for name in ("JAGUAR", "PUMA", "TOYOTA", "PANDA"):
        print(f"  {name:<8} {lcc.scores[name]:.4f}")

    print("\nTop candidates by betweenness:")
    for entry in bc.ranking.top(5):
        print(f"  {entry.rank}. {entry.value}  ({entry.score:.4f})")

    # A repeat query with the same configuration is a cache hit.
    again = index.detect(measure="betweenness")
    info = index.cache_info()
    print(f"\nsecond betweenness query served from cache: "
          f"cached={again.cached} ({info.hits} hits, {info.misses} misses)")

    top2 = set(bc.top_values(2))
    assert top2 == {"JAGUAR", "PUMA"}, top2
    print("Jaguar and Puma - the two homographs - rank first, "
          "as in the paper.")


if __name__ == "__main__":
    main()
