"""DomainNet vs D4 domain discovery — the §5.1 / §5.5 story.

Runs both systems on the synthetic benchmark:

* D4 discovers domains (sets of same-type values) and flags values
  assigned to more than one domain;
* DomainNet ranks values by betweenness centrality directly, via
  :class:`repro.HomographIndex`.

Prints the domains D4 found, both methods' precision at k = 55 (the
number of true homographs, where precision = recall), and the classes
of homographs each method catches.

Run with:  python examples/domain_discovery_comparison.py
"""

from collections import Counter

from repro import HomographIndex
from repro.bench.synthetic import generate_sb
from repro.bench.vocab import PLANTED_HOMOGRAPHS
from repro.domains import run_d4


def homograph_classes(values, truth):
    return Counter(
        "+".join(PLANTED_HOMOGRAPHS[v]) for v in values if v in truth
    )


def main() -> None:
    sb = generate_sb()
    truth = sb.homographs
    k = len(truth)

    print("running D4 domain discovery (string columns only)...")
    d4 = run_d4(sb.lake)
    print(f"  {d4.num_domains} domains over "
          f"{d4.columns_with_domains()}/{d4.index.num_columns} columns")
    for i in range(min(d4.num_domains, 8)):
        sample = sorted(d4.domain_terms(i))[:4]
        print(f"  domain {i}: {len(d4.domain_terms(i))} values, "
              f"e.g. {sample}")

    d4_predicted = d4.ranked_homographs()[:k]
    d4_hits = sum(1 for v in d4_predicted if v in truth)

    print("\nrunning DomainNet (betweenness centrality)...")
    index = HomographIndex(sb.lake)
    bc = index.detect(measure="betweenness")
    bc_top = bc.top_values(k)
    bc_hits = sum(1 for v in bc_top if v in truth)

    print(f"\nP = R at k = {k}:")
    print(f"  D4 baseline : {d4_hits}/{k} = {d4_hits / k:.2f}  "
          f"(paper: 0.38)")
    print(f"  DomainNet BC: {bc_hits}/{k} = {bc_hits / k:.2f}  "
          f"(paper: 0.69)")

    print("\nhomograph classes found by D4:")
    for cls, count in homograph_classes(d4_predicted, truth).items():
        print(f"  {cls}: {count}")
    print("homograph classes found by DomainNet:")
    for cls, count in homograph_classes(bc_top, truth).items():
        print(f"  {cls}: {count}")


if __name__ == "__main__":
    main()
