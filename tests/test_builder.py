"""Unit tests for repro.core.builder."""

import pytest

from repro import DataLake, Table
from repro.core.builder import build_graph, build_graph_from_columns


class TestBuildGraph:
    def test_figure1_shape(self, figure1_lake):
        g = build_graph(figure1_lake)
        # 37 distinct normalized values, 12 attributes, 43 edges
        # (calibrated in DESIGN.md against Example 3.6)
        assert g.num_values == 37
        assert g.num_attributes == 12
        assert g.num_edges == 43

    def test_values_normalized(self, figure1_lake):
        g = build_graph(figure1_lake)
        assert g.has_value("JAGUAR")
        assert g.has_value("SAN DIEGO")
        assert not g.has_value("Jaguar")

    def test_attribute_names_qualified(self, figure1_lake):
        g = build_graph(figure1_lake)
        g.attribute_id("T1.At Risk")  # raises if missing
        g.attribute_id("T3.C2")

    def test_duplicate_cells_single_edge(self):
        lake = DataLake([Table("t", ["a"], [["x"], ["x"], ["x"]])])
        g = build_graph(lake)
        assert g.num_edges == 1

    def test_min_degree_pruning(self, figure1_lake):
        g = build_graph(figure1_lake, min_value_degree=2)
        # Only JAGUAR (4 attrs), PUMA (2), PANDA (2), TOYOTA (2) repeat.
        assert sorted(g.value_names) == ["JAGUAR", "PANDA", "PUMA", "TOYOTA"]
        assert g.num_attributes == 12

    def test_min_degree_invalid(self, figure1_lake):
        with pytest.raises(ValueError):
            build_graph(figure1_lake, min_value_degree=0)

    def test_blank_cells_skipped(self):
        lake = DataLake([Table("t", ["a", "b"], [["x", ""], ["", "y"]])])
        g = build_graph(lake)
        assert sorted(g.value_names) == ["X", "Y"]

    def test_empty_lake(self):
        g = build_graph(DataLake())
        assert g.num_nodes == 0


class TestBuildGraphFromColumns:
    def test_matches_lake_builder(self, figure1_lake):
        columns = {
            c.qualified_name: list(c.values)
            for c in figure1_lake.iter_attributes()
        }
        g1 = build_graph(figure1_lake)
        g2 = build_graph_from_columns(columns)
        assert g1.num_values == g2.num_values
        assert g1.num_edges == g2.num_edges
        assert sorted(g1.value_names) == sorted(g2.value_names)

    def test_pruning_via_kwarg(self):
        g = build_graph_from_columns(
            {"A": ["x", "y"], "B": ["y", "z"]}, min_value_degree=2
        )
        assert g.value_names == ["Y"]
