"""Unit tests for repro.datalake.table."""

import pytest

from repro.datalake.table import (
    Column,
    Table,
    TableError,
    infer_column_kind,
)


class TestTableConstruction:
    def test_basic_shape(self):
        t = Table("t", ["a", "b"], [["1", "2"], ["3", "4"]])
        assert t.num_rows == 2
        assert t.num_columns == 2

    def test_empty_name_rejected(self):
        with pytest.raises(TableError):
            Table("", ["a"], [])

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            Table("t", [], [])

    def test_short_rows_padded(self):
        t = Table("t", ["a", "b", "c"], [["1"]])
        assert t.rows[0] == ["1", "", ""]

    def test_long_rows_rejected(self):
        with pytest.raises(TableError):
            Table("t", ["a"], [["1", "2"]])

    def test_none_cells_become_empty(self):
        t = Table("t", ["a", "b"], [[None, "x"]])
        assert t.rows[0] == ["", "x"]

    def test_non_string_cells_coerced(self):
        t = Table("t", ["a"], [[42]])
        assert t.rows[0] == ["42"]

    def test_duplicate_headers_disambiguated(self):
        t = Table("t", ["name", "name", "name"], [])
        assert t.columns == ["name", "name#2", "name#3"]

    def test_blank_headers_get_positional_names(self):
        t = Table("t", ["", "  ", "x"], [])
        assert t.columns == ["col_0", "col_1", "x"]


class TestColumnAccess:
    def test_column_by_name(self):
        t = Table("t", ["a", "b"], [["1", "2"], ["3", "4"]])
        col = t.column("b")
        assert col.values == ("2", "4")
        assert col.qualified_name == "t.b"

    def test_column_missing_name(self):
        t = Table("t", ["a"], [])
        with pytest.raises(KeyError):
            t.column("zz")

    def test_column_at_out_of_range(self):
        t = Table("t", ["a"], [])
        with pytest.raises(IndexError):
            t.column_at(5)

    def test_iter_columns_order(self):
        t = Table("t", ["x", "y"], [["1", "2"]])
        names = [c.name for c in t.iter_columns()]
        assert names == ["x", "y"]

    def test_column_is_snapshot(self):
        t = Table("t", ["a"], [["1"]])
        col = t.column("a")
        t.append_row(["2"])
        assert col.values == ("1",)  # old snapshot unchanged
        assert t.column("a").values == ("1", "2")


class TestColumnStats:
    def test_distinct_values_order_and_blanks(self):
        col = Column("t", "a", ("x", "", "y", "x", "z", "y"))
        assert col.distinct_values() == ["x", "y", "z"]
        assert col.distinct_count() == 3

    def test_len(self):
        col = Column("t", "a", ("x", "y"))
        assert len(col) == 2


class TestFromColumns:
    def test_rectangularizes_ragged_columns(self):
        t = Table.from_columns("t", {"a": ["1", "2", "3"], "b": ["x"]})
        assert t.num_rows == 3
        assert t.column("b").values == ("x", "", "")

    def test_empty_mapping_rejected(self):
        with pytest.raises(TableError):
            Table.from_columns("t", {})


class TestAppendRow:
    def test_append_and_pad(self):
        t = Table("t", ["a", "b"], [])
        t.append_row(["1"])
        assert t.rows == [["1", ""]]

    def test_append_too_long(self):
        t = Table("t", ["a"], [])
        with pytest.raises(TableError):
            t.append_row(["1", "2"])


class TestReplaceValues:
    def test_replaces_everywhere(self):
        t = Table("t", ["a", "b"], [["x", "y"], ["y", "x"]])
        t2 = t.replace_values({"x": "INJECTED"})
        assert t2.rows == [["INJECTED", "y"], ["y", "INJECTED"]]

    def test_original_untouched(self):
        t = Table("t", ["a"], [["x"]])
        t.replace_values({"x": "z"})
        assert t.rows == [["x"]]


class TestInferColumnKind:
    def test_numeric(self):
        assert infer_column_kind(["1", "2.5", "-3", "1,000"]) == "numeric"

    def test_text(self):
        assert infer_column_kind(["apple", "pear", "1"]) == "text"

    def test_mixed_mostly_numeric(self):
        values = ["1"] * 9 + ["x"]
        assert infer_column_kind(values) == "numeric"

    def test_mixed_mostly_text(self):
        values = ["x"] * 9 + ["1"]
        assert infer_column_kind(values) == "text"

    def test_empty(self):
        assert infer_column_kind(["", "", ""]) == "empty"
