"""Protocol conformance: the HTTP error surface is pinned by tests.

Table-driven checks over a live server, using raw ``http.client``
connections so status codes, headers (``Retry-After``,
``Content-Type``), and the structured error body shape are asserted
exactly — not through the convenience client's interpretation.

The contract: 400 malformed request, 401 missing/bad bearer token
(when auth is on), 404 unknown lake / measure / table / job / route,
409 closed index / duplicate table, 411 missing Content-Length, 413
oversized body, 503 + ``Retry-After`` on admission-queue overflow —
on the namespaced ``/lakes/<name>/...`` routes exactly as on their
legacy un-prefixed aliases.
"""

import http.client
import json
import threading
import time

import pytest

from repro import (
    HomographIndex,
    MeasureOutput,
    Workspace,
    register_measure,
    start_server,
    unregister_measure,
)


def raw_request(server, method, path, body=None, headers=None,
                timeout=30.0):
    """One raw HTTP exchange; returns ``(status, headers, payload)``."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            method, path,
            body=body,
            headers=headers if headers is not None else {},
        )
        response = connection.getresponse()
        raw = response.read()
        payload = json.loads(raw) if raw else None
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


@pytest.fixture
def served(figure1_lake):
    """A served figure-1 index with a small body cap for 413 tests."""
    index = HomographIndex(figure1_lake)
    server = start_server(index, port=0, max_body_bytes=4096)
    yield server, index
    server.drain()


def assert_error_shape(payload, status, code):
    """Every error body carries the same structured ``error`` object."""
    assert set(payload) == {"error"}
    error = payload["error"]
    assert error["status"] == status
    assert error["code"] == code
    assert isinstance(error["message"], str) and error["message"]


class TestMalformedRequests:
    @pytest.mark.parametrize("body", [
        b"{not json",
        b"\xff\xfe garbage",
        b"[1, 2, 3]",          # valid JSON, wrong shape
        b'"betweenness"',      # ditto
    ])
    def test_bad_detect_body_is_400(self, served, body):
        server, _ = served
        status, headers, payload = raw_request(
            server, "POST", "/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 400
        assert headers["Content-Type"] == "application/json"
        assert_error_shape(payload, 400, "malformed-json")

    def test_invalid_request_fields_are_400(self, served):
        server, _ = served
        body = json.dumps({"measure": "lcc", "options": 7}).encode()
        status, _, payload = raw_request(
            server, "POST", "/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 400
        assert_error_shape(payload, 400, "invalid-request")

    def test_negative_content_length_is_400(self, served):
        # read(-1) would block until the client hangs up — the server
        # must reject it instead of trusting the header.
        server, _ = served
        status, _, payload = raw_request(
            server, "POST", "/detect", body=b"",
            headers={"Content-Length": "-1"},
        )
        assert status == 400
        assert_error_shape(payload, 400, "malformed-json")

    def test_missing_content_length_is_411(self, served):
        server, _ = served
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            connection.putrequest("POST", "/detect")
            connection.endheaders()  # no Content-Length, no body
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 411
            assert_error_shape(payload, 411, "length-required")
        finally:
            connection.close()

    @pytest.mark.parametrize("method,path,code", [
        ("GET", "/nope", "unknown-route"),
        ("GET", "/", "unknown-route"),
        ("POST", "/ranking/lcc", "unknown-route"),
        ("GET", "/ranking", "unknown-route"),
        ("GET", "/ranking/lcc/extra", "unknown-route"),
        ("DELETE", "/tables", "unknown-route"),
        ("POST", "/detect/extra", "unknown-route"),
    ])
    def test_unknown_routes_are_404(self, served, method, path, code):
        server, _ = served
        body = b"{}" if method == "POST" else None
        headers = {"Content-Length": "2"} if body else {}
        status, _, payload = raw_request(
            server, method, path, body=body, headers=headers
        )
        assert status == 404
        assert_error_shape(payload, 404, code)


class TestNamespacedConformance:
    """The /lakes/<name>/... routes share the legacy error surface."""

    @pytest.mark.parametrize("method,path,code", [
        ("POST", "/lakes/nope/detect", "unknown-lake"),
        ("GET", "/lakes/nope/ranking/lcc", "unknown-lake"),
        ("DELETE", "/lakes/nope/tables/T1", "unknown-lake"),
        ("GET", "/lakes/nope/healthz", "unknown-lake"),
        ("GET", "/lakes/default/ranking/page-rank", "unknown-measure"),
        ("DELETE", "/lakes/default/tables/ghost", "unknown-table"),
        ("GET", "/lakes/default/nope", "unknown-route"),
        ("DELETE", "/lakes/default/detect", "unknown-route"),
        ("GET", "/jobs/no-such-job", "unknown-job"),
        ("DELETE", "/jobs/no-such-job", "unknown-job"),
        ("POST", "/jobs/no-such-job", "unknown-route"),
        ("DELETE", "/healthz", "unknown-route"),
        ("POST", "/stats", "unknown-route"),
    ])
    def test_namespaced_404s(self, served, method, path, code):
        # The adopted single-index workspace mounts the lake as
        # "default", so /lakes/default/... is live and /lakes/nope
        # is not.
        server, _ = served
        body = b"{}" if method == "POST" else None
        headers = {"Content-Length": "2"} if body else {}
        status, _, payload = raw_request(
            server, method, path, body=body, headers=headers
        )
        assert status == 404, (method, path)
        assert_error_shape(payload, 404, code)

    def test_mount_route_is_live_but_validates_payload(self, served):
        # POST /lakes is a real mount endpoint since the snapshot PR:
        # an empty payload is a 400 from validation, not a routing 404.
        server, _ = served
        status, _, payload = raw_request(
            server, "POST", "/lakes", body=b"{}",
            headers={"Content-Length": "2"},
        )
        assert status == 400
        assert_error_shape(payload, 400, "invalid-mount")

    def test_lakes_listing_shape(self, served):
        server, index = served
        status, _, payload = raw_request(server, "GET", "/lakes")
        assert status == 200
        assert payload == {
            "default": "default",
            "lakes": [{
                "name": "default",
                "tables": len(index.lake),
                "default": True,
                "closed": False,
            }],
        }

    def test_bad_paging_on_namespaced_ranking_is_400(self, served):
        server, _ = served
        status, _, payload = raw_request(
            server, "GET", "/lakes/default/ranking/lcc?limit=0"
        )
        assert status == 400
        assert_error_shape(payload, 400, "invalid-paging")


class TestUnknownNames:
    def test_unknown_measure_on_detect_is_404(self, served):
        server, _ = served
        body = json.dumps({"measure": "page-rank"}).encode()
        status, _, payload = raw_request(
            server, "POST", "/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 404
        assert_error_shape(payload, 404, "unknown-measure")
        # The message tells the caller what *is* available.
        assert "betweenness" in payload["error"]["message"]

    def test_unknown_measure_on_ranking_is_404(self, served):
        server, _ = served
        status, _, payload = raw_request(
            server, "GET", "/ranking/page-rank"
        )
        assert status == 404
        assert_error_shape(payload, 404, "unknown-measure")

    def test_unknown_table_delete_is_404(self, served):
        server, _ = served
        status, _, payload = raw_request(
            server, "DELETE", "/tables/no-such-table"
        )
        assert status == 404
        assert_error_shape(payload, 404, "unknown-table")


class TestPagingValidation:
    @pytest.mark.parametrize("query", [
        "cursor=bogus", "cursor=-3", "cursor=1.5",
        "limit=0", "limit=-1", "limit=abc", "limit=999999",
        "cursor=99999",  # past the end of the ranking
    ])
    def test_bad_paging_parameters_are_400(self, served, query):
        server, _ = served
        status, _, payload = raw_request(
            server, "GET", f"/ranking/lcc?{query}"
        )
        assert status == 400
        assert_error_shape(payload, 400, "invalid-paging")


class TestTableValidation:
    @pytest.mark.parametrize("payload", [
        {"name": "t"},                            # no columns
        {"columns": {"a": ["1"]}},                # no name
        {"name": 7, "columns": {"a": ["1"]}},     # bad name type
        {"name": "t", "columns": ["a", "b"]},     # bad columns type
        {"name": "t", "columns": {}},             # empty columns
    ])
    def test_invalid_table_payloads_are_400(self, served, payload):
        server, _ = served
        body = json.dumps(payload).encode()
        status, _, response = raw_request(
            server, "POST", "/tables", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 400
        assert_error_shape(response, 400, "invalid-table")

    def test_duplicate_table_is_409(self, served):
        server, _ = served
        body = json.dumps(
            {"name": "T1", "columns": {"a": ["1"]}}  # T1 exists
        ).encode()
        status, _, payload = raw_request(
            server, "POST", "/tables", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 409
        assert_error_shape(payload, 409, "duplicate-table")


class TestBodyLimit:
    def test_oversized_body_is_413(self, served):
        server, _ = served  # max_body_bytes=4096
        body = json.dumps(
            {"measure": "lcc", "options": {"pad": "x" * 8192}}
        ).encode()
        assert len(body) > 4096
        status, _, payload = raw_request(
            server, "POST", "/detect", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 413
        assert_error_shape(payload, 413, "body-too-large")


class TestClosedIndex:
    def test_closed_index_is_409_everywhere(self, served):
        server, index = served
        index.close()
        body = json.dumps({"measure": "lcc"}).encode()
        for method, path, req_body in [
            ("POST", "/detect", body),
            ("GET", "/ranking/lcc", None),
            ("POST", "/tables", json.dumps(
                {"name": "t", "columns": {"a": ["1"]}}).encode()),
            ("DELETE", "/tables/T1", None),
        ]:
            headers = (
                {"Content-Length": str(len(req_body))} if req_body else {}
            )
            status, _, payload = raw_request(
                server, method, path, body=req_body, headers=headers
            )
            assert status == 409, (method, path)
            assert_error_shape(payload, 409, "index-closed")

    def test_healthz_reports_closed_as_503(self, served):
        server, index = served
        status, _, payload = raw_request(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        index.close()
        status, _, payload = raw_request(server, "GET", "/healthz")
        assert status == 503
        assert payload == {"status": "closed"}


@pytest.fixture
def gated_measure():
    """A blocking measure for saturating a one-slot admission gate."""
    state = {
        "started": threading.Event(),
        "release": threading.Event(),
    }

    def measure(graph, request):
        state["started"].set()
        state["release"].wait(10)
        return MeasureOutput(scores={"X": 1.0}, descending=True)

    register_measure("gated-http-test", measure)
    yield state
    unregister_measure("gated-http-test")


class TestQueueOverflow:
    def test_overflow_is_503_with_retry_after(
        self, figure1_lake, gated_measure
    ):
        index = HomographIndex(figure1_lake)
        server = start_server(
            index, port=0, max_concurrent=1, retry_after=7
        )
        try:
            body = json.dumps({"measure": "gated-http-test"}).encode()
            headers = {"Content-Length": str(len(body))}
            results = []

            def occupy():
                results.append(raw_request(
                    server, "POST", "/detect", body=body, headers=headers
                ))

            occupant = threading.Thread(target=occupy)
            occupant.start()
            assert gated_measure["started"].wait(10)

            # The single compute slot is held: the next request — for
            # any measure — must be rejected, not queued.
            status, response_headers, payload = raw_request(
                server, "POST", "/detect",
                body=json.dumps({"measure": "lcc"}).encode(),
                headers={"Content-Length": str(
                    len(json.dumps({"measure": "lcc"}).encode())
                )},
            )
            assert status == 503
            assert response_headers["Retry-After"] == "7"
            assert_error_shape(payload, 503, "over-capacity")

            # Rankings ride the same gate.
            status, response_headers, payload = raw_request(
                server, "GET", "/ranking/lcc"
            )
            assert status == 503
            assert response_headers["Retry-After"] == "7"

            # Cheap endpoints are never gated.
            status, _, _ = raw_request(server, "GET", "/healthz")
            assert status == 200
            status, _, stats = raw_request(server, "GET", "/stats")
            assert status == 200
            assert stats["http"]["rejected"] == 2
            assert stats["http"]["in_flight"] == 1

            gated_measure["release"].set()
            occupant.join(30)
            assert results[0][0] == 200

            # The slot is free again: the rejected caller can retry.
            deadline = time.monotonic() + 10
            while True:
                status, _, _ = raw_request(server, "GET", "/ranking/lcc")
                if status == 200 or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            assert status == 200
        finally:
            server.drain()


def _occupy(server, path, gated_measure, results):
    """Park one gated-measure request on ``path``; returns the thread.

    The caller must ``release`` the gate and join the thread; the
    request's ``(status, headers, payload)`` lands in ``results``.
    """
    body = json.dumps({"measure": "gated-http-test"}).encode()

    def run():
        results.append(raw_request(
            server, "POST", path, body=body,
            headers={"Content-Length": str(len(body))},
        ))

    thread = threading.Thread(target=run)
    thread.start()
    assert gated_measure["started"].wait(10)
    return thread


@pytest.fixture
def fair_pair(figure1_lake, gated_measure):
    """Two lakes behind a 2-slot gate: the fair share is 1 slot each."""
    from tests.test_workspace import make_cars_lake

    workspace = Workspace()
    workspace.attach("zoo", figure1_lake)
    workspace.attach("cars", make_cars_lake())
    server = start_server(
        workspace, port=0, max_concurrent=2, retry_after=3
    )
    yield server, gated_measure
    gated_measure["release"].set()
    server.drain()


class TestPerLakeQuota:
    """Conformance rows for the two-level admission gate (PR 8)."""

    @pytest.mark.parametrize("method,path,body", [
        ("POST", "/lakes/zoo/detect",
         json.dumps({"measure": "lcc"}).encode()),
        ("GET", "/lakes/zoo/ranking/lcc", None),
    ])
    def test_quota_exceeded_is_lake_scoped_503(
        self, fair_pair, method, path, body
    ):
        server, gate = fair_pair
        results = []
        occupant = _occupy(
            server, "/lakes/zoo/detect", gate, results
        )
        try:
            headers = (
                {"Content-Length": str(len(body))} if body else None
            )
            status, response_headers, payload = raw_request(
                server, method, path, body=body, headers=headers
            )
            # The zoo quota (1 of 2 slots) is exhausted: rejected with
            # the lake-scoped code, the lake's name in the body, and a
            # Retry-After — while a whole global slot is still free.
            assert status == 503
            assert response_headers["Retry-After"] == "3"
            assert_error_shape(payload, 503, "lake-over-capacity")
            assert payload["error"]["lake"] == "zoo"
            assert "quota" in payload["error"]["message"]
        finally:
            gate["release"].set()
            occupant.join(30)
        assert results[0][0] == 200

    def test_sibling_lake_keeps_serving(self, fair_pair):
        server, gate = fair_pair
        results = []
        occupant = _occupy(
            server, "/lakes/zoo/detect", gate, results
        )
        try:
            body = json.dumps({"measure": "lcc"}).encode()
            status, _, payload = raw_request(
                server, "POST", "/lakes/cars/detect", body=body,
                headers={"Content-Length": str(len(body))},
            )
            assert status == 200
            assert payload["measure"] == "lcc"
        finally:
            gate["release"].set()
            occupant.join(30)

    def test_global_exhaustion_is_distinguishable(self, fair_pair):
        # Both codes exist on one server: quota trips answer
        # lake-over-capacity, filling the *whole* gate answers the
        # legacy over-capacity — a client can tell which wall it hit.
        server, gate = fair_pair
        results = []
        zoo = _occupy(server, "/lakes/zoo/detect", gate, results)
        # The shared "started" event is already set by the first
        # occupant, so _occupy cannot vouch for the second: poll the
        # gate until both fresh slots are genuinely held.
        cars = _occupy(server, "/lakes/cars/detect", gate, results)
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _, _, stats = raw_request(server, "GET", "/stats")
                if stats["http"]["gate"]["fresh_in_flight"] == 2:
                    break
                time.sleep(0.02)
            assert stats["http"]["gate"]["fresh_in_flight"] == 2
            body = json.dumps({"measure": "lcc"}).encode()
            status, _, payload = raw_request(
                server, "POST", "/lakes/cars/detect", body=body,
                headers={"Content-Length": str(len(body))},
            )
            assert status == 503
            assert_error_shape(payload, 503, "over-capacity")
            assert payload["error"]["lake"] == "cars"
        finally:
            gate["release"].set()
            zoo.join(30)
            cars.join(30)
        assert [result[0] for result in results] == [200, 200]

    def test_stats_expose_per_lake_gate_occupancy(self, fair_pair):
        server, gate = fair_pair
        results = []
        occupant = _occupy(
            server, "/lakes/zoo/detect", gate, results
        )
        try:
            body = json.dumps({"measure": "lcc"}).encode()
            raw_request(              # one rejected zoo request
                server, "POST", "/lakes/zoo/detect", body=body,
                headers={"Content-Length": str(len(body))},
            )
            status, _, stats = raw_request(server, "GET", "/stats")
            assert status == 200
            gate_stats = stats["http"]["gate"]
            assert gate_stats["limit"] == 2
            assert gate_stats["fair"] is True
            assert gate_stats["fresh_in_flight"] == 1
            zoo = gate_stats["lakes"]["zoo"]
            assert zoo["in_flight"] == 1
            assert zoo["quota"] == 1
            assert zoo["rejected"] == 1
            cars = gate_stats["lakes"]["cars"]
            assert cars["in_flight"] == 0
            assert cars["rejected"] == 0
        finally:
            gate["release"].set()
            occupant.join(30)

    def test_coalesced_duplicate_rides_the_follower_lane(
        self, figure1_lake, gated_measure
    ):
        # A request identical to one already in flight coalesces onto
        # it instead of burning (or being refused) a fresh-compute
        # slot — under overload, followers are admitted first.
        index = HomographIndex(figure1_lake)
        server = start_server(index, port=0, max_concurrent=1)
        try:
            results = []
            occupant = _occupy(server, "/detect", gated_measure, results)
            follower_results = []

            def follow():
                body = json.dumps(
                    {"measure": "gated-http-test"}
                ).encode()
                follower_results.append(raw_request(
                    server, "POST", "/detect", body=body,
                    headers={"Content-Length": str(len(body))},
                ))

            follower = threading.Thread(target=follow)
            follower.start()
            deadline = time.monotonic() + 10
            followers_seen = 0
            while time.monotonic() < deadline:
                _, _, stats = raw_request(server, "GET", "/stats")
                followers_seen = \
                    stats["http"]["gate"]["followers_in_flight"]
                if followers_seen:
                    break
                time.sleep(0.02)
            assert followers_seen == 1
            assert stats["http"]["gate"]["fresh_in_flight"] == 1
            gated_measure["release"].set()
            occupant.join(30)
            follower.join(30)
            # Both callers got the answer; the computation ran once.
            assert results[0][0] == 200
            assert follower_results[0][0] == 200
            assert follower_results[0][2]["ranking"] == \
                results[0][2]["ranking"]
            _, _, stats = raw_request(server, "GET", "/stats")
            assert stats["http"]["gate"]["admitted_followers"] >= 1
        finally:
            gated_measure["release"].set()
            server.drain()

    def test_lake_quota_zero_restores_the_single_global_gate(
        self, figure1_lake, gated_measure
    ):
        # The opt-out: with --lake-quota 0 one hot lake CAN starve its
        # sibling again (that is what the pre-PR-8 gate did), and the
        # rejection is the legacy global code.
        from tests.test_workspace import make_cars_lake

        workspace = Workspace()
        workspace.attach("zoo", figure1_lake)
        workspace.attach("cars", make_cars_lake())
        server = start_server(
            workspace, port=0, max_concurrent=1, lake_quota=0
        )
        try:
            results = []
            occupant = _occupy(
                server, "/lakes/zoo/detect", gated_measure, results
            )
            body = json.dumps({"measure": "lcc"}).encode()
            status, _, payload = raw_request(
                server, "POST", "/lakes/cars/detect", body=body,
                headers={"Content-Length": str(len(body))},
            )
            assert status == 503
            assert_error_shape(payload, 503, "over-capacity")
            _, _, stats = raw_request(server, "GET", "/stats")
            assert stats["http"]["gate"]["fair"] is False
            assert stats["http"]["gate"]["lake_quota"] == 0
            gated_measure["release"].set()
            occupant.join(30)
            assert results[0][0] == 200
        finally:
            gated_measure["release"].set()
            server.drain()


class TestMountQuota:
    def _csv_dir(self, tmp_path):
        directory = tmp_path / "aux"
        directory.mkdir()
        (directory / "t.csv").write_text("v\nX\nY\n")
        return directory

    def test_mount_accepts_quota_option(self, served, tmp_path):
        server, _ = served
        directory = self._csv_dir(tmp_path)
        body = json.dumps({
            "name": "aux", "path": str(directory), "quota": 3,
        }).encode()
        status, _, payload = raw_request(
            server, "POST", "/lakes", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 201
        assert payload["quota"] == 3
        _, _, stats = raw_request(server, "GET", "/stats")
        assert stats["http"]["gate"]["lakes"]["aux"]["quota"] == 3

    @pytest.mark.parametrize("quota", [0, -1, 1.5, "two", True])
    def test_invalid_mount_quota_is_400(self, served, tmp_path, quota):
        server, _ = served
        directory = self._csv_dir(tmp_path)
        body = json.dumps({
            "name": "aux", "path": str(directory), "quota": quota,
        }).encode()
        status, _, payload = raw_request(
            server, "POST", "/lakes", body=body,
            headers={"Content-Length": str(len(body))},
        )
        assert status == 400
        assert_error_shape(payload, 400, "invalid-mount")


class TestClusterConformance:
    """The router speaks the same wire protocol as the servers it fronts.

    Raw-socket checks of the PR-10 additions: ``GET /cluster/stats``
    as a plain JSON route, and the structured 503
    ``no-healthy-replica`` (with ``Retry-After``) a dark fleet
    answers — same error shape as every other rejection, so client
    retry loops need no new cases.
    """

    @pytest.fixture
    def routed(self, figure1_lake):
        from repro.cluster import Replica, ReplicaSet, start_router

        backend = start_server(HomographIndex(figure1_lake), port=0)
        replica = Replica("only", url=backend.url, role="primary")
        router = start_router(ReplicaSet([replica]))
        yield router, replica
        router.drain()
        backend.drain()

    def test_cluster_stats_is_json_route(self, routed):
        router, _ = routed
        status, headers, payload = raw_request(
            router, "GET", "/cluster/stats"
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert payload["primary"] == "only"
        assert payload["replicas"][0]["healthy"] is True

    def test_dark_fleet_503_shape(self, routed):
        router, replica = routed
        replica.mark_unhealthy()
        status, headers, payload = raw_request(
            router, "GET", "/ranking/lcc"
        )
        assert status == 503
        assert headers["Content-Type"] == "application/json"
        assert int(headers["Retry-After"]) >= 1
        assert_error_shape(payload, 503, "no-healthy-replica")

    def test_proxied_errors_keep_backend_shape(self, routed):
        # A backend 404 travels through the router byte-compatible.
        router, _ = routed
        status, _, payload = raw_request(
            router, "GET", "/ranking/unknown-measure"
        )
        assert status == 404
        assert_error_shape(payload, 404, "unknown-measure")

    def test_version_fingerprint_route(self, served):
        server, _ = served
        status, headers, payload = raw_request(server, "GET", "/version")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert set(payload) == {
            "library", "snapshot_format", "python", "numpy", "server",
        }
