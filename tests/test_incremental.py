"""Delta-aware mutation: CSR splicing plus scoped score maintenance.

The contract under test: ``add_table``/``remove_table``/``replace_table``
on an index with a built graph splice the delta into the CSR arrays
(:meth:`BipartiteGraph.splice_rows`) and patch cached scores in place,
and every incremental result is **bit-identical** to a from-scratch
rebuild — same graph arrays, same score floats, same ranking order.
Failure of any precondition degrades to full invalidation, which is
always correct, and ``last_mutation`` reports which path ran.
"""

import threading
import time

import numpy as np
import pytest
from tests.conftest import make_figure1_lake

from repro import (
    DataLake,
    DetectRequest,
    HomographClient,
    HomographIndex,
    Table,
    start_server,
)
from repro.core.builder import build_graph
from repro.core.delta import LakeLedger, plan_mutation, table_column_counts
from repro.api.index import _CacheEntry

# ---------------------------------------------------------------------
# Mutation material
# ---------------------------------------------------------------------
OVERLAP_TABLE = {
    # Shares Puma/Jaguar/values with Figure 1 and brings fresh ones.
    "Animal": ["Puma", "Jaguar", "Okapi"],
    "City": ["Berlin", "Paris", "Okapi"],
}
DISJOINT_TABLE = {
    # No value in common with Figure 1: forms its own component.
    "A": ["zz1", "zz2", "zz1", "zz3"],
    "B": ["zz2", "zz3", "zz4", "zz4"],
}
T2_REPLACEMENT = {
    # Same column names as T2, different content.
    "name": ["Panda", "Lemur", "Lemur", "Tiger"],
    "locale": ["Memphis", "National", "Tallinn", "Delhi"],
    "num": ["2", "20", "3", "8"],
}

REQUESTS = (
    DetectRequest(measure="betweenness"),
    DetectRequest(measure="betweenness", endpoints="values"),
    DetectRequest(measure="betweenness", sample_size=6, seed=11),
    DetectRequest(measure="lcc"),
    DetectRequest(measure="lcc", lcc_variant="value-neighbors"),
    DetectRequest(measure="rk", seed=5, options=(("max_samples", 64),)),
)


def table(name, columns):
    return Table.from_columns(name, columns)


def lake_copy(lake):
    return DataLake(t for t in lake)


def assert_same_response(got, want, tag=""):
    """Bitwise score + ranking equality (dict `==` on floats is exact)."""
    assert got.scores == want.scores, f"{tag}: scores diverged"
    assert (
        [(e.value, e.score) for e in got.ranking]
        == [(e.value, e.score) for e in want.ranking]
    ), f"{tag}: ranking diverged"


MUTATIONS = {
    "add-overlap": lambda ix: ix.add_table(table("T9", OVERLAP_TABLE)),
    "add-disjoint": lambda ix: ix.add_table(table("TX", DISJOINT_TABLE)),
    "remove-T1": lambda ix: ix.remove_table("T1"),
    "remove-T2": lambda ix: ix.remove_table("T2"),
    "remove-T4": lambda ix: ix.remove_table("T4"),
    "replace-T2-same-cols": lambda ix: ix.replace_table(
        table("T2", T2_REPLACEMENT)
    ),
    "replace-T3-new-cols": lambda ix: ix.replace_table(
        table("T3", {"Brand": ["Puma", "Nike"], "Kind": ["x", "x"]})
    ),
}


# ---------------------------------------------------------------------
# Graph-level parity: planner + splice vs from-scratch build
# ---------------------------------------------------------------------
class TestSpliceParity:
    @pytest.mark.parametrize("min_occ", [1, 2])
    @pytest.mark.parametrize("scenario", sorted(MUTATIONS))
    def test_spliced_graph_equals_rebuild(self, scenario, min_occ):
        lake = make_figure1_lake()
        graph = build_graph(lake, min_occurrences=min_occ)
        ledger = LakeLedger.from_lake(lake)
        removed, added = [], []
        if scenario.startswith("add"):
            name = "T9" if "overlap" in scenario else "TX"
            cols = OVERLAP_TABLE if "overlap" in scenario else DISJOINT_TABLE
            added = table_column_counts(table(name, cols))
            lake.add_table(table(name, cols))
        elif scenario.startswith("remove"):
            removed = table_column_counts(lake.remove_table(scenario[-2:]))
        else:
            name = "T2" if "T2" in scenario else "T3"
            cols = (
                T2_REPLACEMENT if "T2" in scenario
                else {"Brand": ["Puma", "Nike"], "Kind": ["x", "x"]}
            )
            removed = table_column_counts(lake.table(name))
            added = table_column_counts(table(name, cols))
            lake.replace_table(table(name, cols))

        spec = plan_mutation(graph, ledger, lake, removed, added, min_occ)
        assert spec is not None, "planner declined a plannable mutation"
        new_graph, delta = graph.splice_rows(spec)
        oracle = build_graph(lake, min_occurrences=min_occ)

        assert new_graph.value_names == oracle.value_names
        assert new_graph.attribute_names == oracle.attribute_names
        assert np.array_equal(new_graph.indptr, oracle.indptr)
        assert np.array_equal(new_graph.indices, oracle.indices)
        assert delta.delta_values >= 0 and delta.delta_edges >= 0
        # The ledger was committed to the post-mutation state.
        fresh = LakeLedger.from_lake(lake)
        assert len(ledger) == len(fresh)
        for value in list(fresh._values):
            assert ledger._values[value] == fresh._values[value]

    @pytest.mark.parametrize("min_occ", [1, 2])
    def test_chained_mutations_stay_exact(self, min_occ):
        """One evolving graph + ledger through a 5-op sequence."""
        lake = make_figure1_lake()
        graph = build_graph(lake, min_occurrences=min_occ)
        ledger = LakeLedger.from_lake(lake)
        sequence = [
            ("add", table("TA", {"X": ["Puma", "q1"], "Y": ["q1", "q2"]})),
            ("remove", "T1"),
            ("replace", table("TA", {"X": ["q9", "q9"],
                                     "Z": ["Jaguar", "q2"]})),
            ("add", table("TB", {"W": ["q2", "Amazon", "Amazon"]})),
            ("remove", "TA"),
        ]
        for step, (op, arg) in enumerate(sequence):
            removed, added = [], []
            if op == "add":
                added = table_column_counts(arg)
                lake.add_table(arg)
            elif op == "remove":
                removed = table_column_counts(lake.remove_table(arg))
            else:
                removed = table_column_counts(lake.table(arg.name))
                added = table_column_counts(arg)
                lake.replace_table(arg)
            spec = plan_mutation(
                graph, ledger, lake, removed, added, min_occ
            )
            assert spec is not None, f"step {step} fell back"
            graph, _delta = graph.splice_rows(spec)
            oracle = build_graph(lake, min_occurrences=min_occ)
            assert graph.value_names == oracle.value_names, f"step {step}"
            assert np.array_equal(graph.indptr, oracle.indptr)
            assert np.array_equal(graph.indices, oracle.indices)


# ---------------------------------------------------------------------
# Index-level parity: patched caches vs a fresh index
# ---------------------------------------------------------------------
class TestScoreMaintenanceParity:
    @pytest.mark.parametrize("prune", [True, False])
    @pytest.mark.parametrize("scenario", sorted(MUTATIONS))
    def test_every_measure_survives_bitwise(self, scenario, prune):
        index = HomographIndex(make_figure1_lake(), prune_candidates=prune)
        for request in REQUESTS:
            index.detect(request)
        MUTATIONS[scenario](index)

        mutation = index.last_mutation
        assert mutation is not None
        assert mutation["fallback"] is None, (
            f"splice path expected, got fallback={mutation['fallback']}"
        )
        assert (
            mutation["patched_entries"] + mutation["evicted_entries"]
            == len(REQUESTS)
        )

        oracle = HomographIndex(
            lake_copy(index.lake), prune_candidates=prune
        )
        before = index.cache_info()
        for request in REQUESTS:
            got = index.detect(request)
            want = oracle.detect(request)
            assert_same_response(got, want, f"{scenario}/{request.measure}")
        after = index.cache_info()
        # Patched entries answered as cache hits, not recomputes.
        assert after.hits - before.hits >= mutation["patched_entries"]

    def test_mutation_sequence_keeps_patching(self):
        """Patched state chains: mutation N+1 patches mutation N's patch."""
        index = HomographIndex(make_figure1_lake(), prune_candidates=False)
        for request in REQUESTS:
            index.detect(request)
        index.add_table(table("TX", DISJOINT_TABLE))
        first = index.last_mutation
        assert first["fallback"] is None and first["patched_entries"] > 0
        index.remove_table("T1")
        second = index.last_mutation
        assert second["fallback"] is None and second["patched_entries"] > 0

        oracle = HomographIndex(lake_copy(index.lake),
                                prune_candidates=False)
        for request in REQUESTS:
            assert_same_response(
                index.detect(request), oracle.detect(request), "chained"
            )

    def test_delta_cost_reported(self):
        """recomputed_sources stays delta-sized for a disjoint add."""
        index = HomographIndex(make_figure1_lake(), prune_candidates=False)
        index.detect(measure="betweenness")
        index.add_table(table("TX", DISJOINT_TABLE))
        mutation = index.last_mutation
        assert mutation["fallback"] is None
        nodes = index.graph.num_nodes
        # Only the new component's sources re-ran, not the lake's.
        assert 0 < mutation["recomputed_sources"] < nodes / 2
        assert mutation["splice_seconds"] > 0.0


# ---------------------------------------------------------------------
# Cache discipline
# ---------------------------------------------------------------------
class TestCacheDiscipline:
    def test_stale_generation_entries_evicted_eagerly(self):
        index = HomographIndex(make_figure1_lake())
        index.detect(measure="lcc")
        # Forge an entry from a superseded generation (as if a detect
        # raced a mutation and lost): mutation must drop it eagerly.
        live = next(iter(index._score_cache.values()))
        index._score_cache[("stale",)] = _CacheEntry(
            response=live.response,
            generation=index._generation - 1,
            state=live.state,
        )
        index.add_table(table("TX", DISJOINT_TABLE))
        assert ("stale",) not in index._score_cache
        assert index.last_mutation["evicted_entries"] >= 1
        for entry in index._score_cache.values():
            assert entry.generation == index._generation

    def test_live_entries_always_match_index_generation(self):
        index = HomographIndex(make_figure1_lake(), prune_candidates=False)
        for request in REQUESTS:
            index.detect(request)
        for mutate in (
            lambda: index.add_table(table("TX", DISJOINT_TABLE)),
            lambda: index.remove_table("T4"),
            lambda: index.replace_table(table("T2", T2_REPLACEMENT)),
        ):
            mutate()
            for entry in index._score_cache.values():
                assert entry.generation == index._generation

    def test_unbuilt_graph_falls_back(self):
        index = HomographIndex(make_figure1_lake())
        index.add_table(table("TX", DISJOINT_TABLE))
        mutation = index.last_mutation
        assert mutation["fallback"] == "graph-unbuilt"
        assert mutation["delta_values"] is None
        # The lake op itself still landed.
        assert "TX" in index.lake.table_names

    def test_planner_failure_falls_back_consistently(self, monkeypatch):
        index = HomographIndex(make_figure1_lake())
        index.detect(measure="lcc")

        def boom(*args, **kwargs):
            raise RuntimeError("forced planner failure")

        monkeypatch.setattr("repro.api.index.plan_mutation", boom)
        index.add_table(table("TX", DISJOINT_TABLE))
        assert index.last_mutation["fallback"] == "splice"
        assert len(index._score_cache) == 0
        monkeypatch.undo()
        # The fallback left lake/graph consistent: detects agree with a
        # fresh oracle afterwards.
        oracle = HomographIndex(lake_copy(index.lake))
        assert_same_response(
            index.detect(measure="lcc"), oracle.detect(measure="lcc")
        )

    def test_invalidate_drops_ledger(self):
        index = HomographIndex(make_figure1_lake())
        index.detect(measure="lcc")
        index.add_table(table("TX", DISJOINT_TABLE))
        assert index._ledger is not None
        index.invalidate()
        assert index._ledger is None

    def test_stats_and_serving_report_mutation_block(self, tmp_path):
        index = HomographIndex(make_figure1_lake())
        index.detect(measure="lcc")
        assert index.stats()["mutation"] is None
        server = start_server(index, port=0)
        try:
            client = HomographClient(server.url, timeout=30.0)
            client.wait_ready()
            body = client.add_table(table("TX", DISJOINT_TABLE))
            mutation = body["mutation"]
            assert mutation["op"] == "add"
            assert mutation["table"] == "TX"
            assert mutation["fallback"] is None
            assert mutation["delta_values"] > 0
            body = client.remove_table("TX")
            assert body["mutation"]["op"] == "remove"
            assert client.stats()["mutation"]["op"] == "remove"
        finally:
            server.drain()


# ---------------------------------------------------------------------
# Mutation under concurrent detects
# ---------------------------------------------------------------------
HAMMER_REQUESTS = (
    DetectRequest(measure="lcc"),
    DetectRequest(measure="betweenness"),
)


def _oracle_scores(lakes):
    """Fresh-index score maps per request for each lake state."""
    admissible = {request.cache_key: [] for request in HAMMER_REQUESTS}
    for lake in lakes:
        oracle = HomographIndex(lake_copy(lake))
        for request in HAMMER_REQUESTS:
            admissible[request.cache_key].append(
                oracle.detect(request).scores
            )
    return admissible


def _hammer(index, mutations, threads=4, rounds=12):
    """Detect from many threads while ``mutations`` run; all scores."""
    observed = []
    errors = []
    lock = threading.Lock()
    start = threading.Barrier(threads + 1)

    def worker():
        start.wait()
        for _ in range(rounds):
            for request in HAMMER_REQUESTS:
                try:
                    response = index.detect(request)
                except Exception as error:  # pragma: no cover - fail loud
                    with lock:
                        errors.append(error)
                    return
                with lock:
                    observed.append((request.cache_key, response.scores))

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    start.wait()
    for mutate in mutations:
        time.sleep(0.02)  # let detects interleave between mutations
        mutate()
    for thread in pool:
        thread.join()
    assert not errors, errors
    return observed


class TestMutationUnderConcurrentDetect:
    def test_every_response_matches_some_lake_state(self):
        index = HomographIndex(make_figure1_lake())
        for request in HAMMER_REQUESTS:
            index.detect(request)

        states = [lake_copy(index.lake)]

        def snapshot_after(mutate):
            def run():
                mutate()
                states.append(lake_copy(index.lake))
            return run

        observed = _hammer(index, [
            snapshot_after(
                lambda: index.add_table(table("TX", DISJOINT_TABLE))
            ),
            snapshot_after(lambda: index.remove_table("T1")),
            snapshot_after(
                lambda: index.replace_table(table("T2", T2_REPLACEMENT))
            ),
        ])
        admissible = _oracle_scores(states)
        for key, scores in observed:
            assert scores in admissible[key], (
                "a concurrent detect served scores matching no "
                "pre- or post-mutation lake state"
            )

    def test_snapshot_mounted_lake_mutates_correctly(self, tmp_path):
        warm = HomographIndex(make_figure1_lake())
        for request in HAMMER_REQUESTS:
            warm.detect(request)
        snapshot = tmp_path / "snap"
        warm.save(snapshot)
        warm.close()

        index = HomographIndex.load(snapshot, mmap=True)
        states = [lake_copy(index.lake)]

        def mutate():
            index.add_table(table("TX", DISJOINT_TABLE))
            states.append(lake_copy(index.lake))

        observed = _hammer(index, [mutate], threads=3, rounds=8)
        admissible = _oracle_scores(states)
        for key, scores in observed:
            assert scores in admissible[key]
        # Snapshot entries carry no maintenance state -> evicted, and
        # the splice copied the arrays: the mmap files are untouched
        # and the snapshot still mounts cleanly afterwards.
        mutation = index.last_mutation
        assert mutation["fallback"] is None
        assert mutation["patched_entries"] == 0
        index.close()
        reread = HomographIndex.load(snapshot, mmap=True)
        assert "TX" not in reread.lake.table_names
        oracle = HomographIndex(make_figure1_lake())
        for request in HAMMER_REQUESTS:
            assert_same_response(
                reread.detect(request), oracle.detect(request), "snapshot"
            )
        reread.close()

    def test_snapshot_mounted_mutation_reaches_splice_path(self, tmp_path):
        """A detect after load rebuilds state; the next add splices."""
        warm = HomographIndex(make_figure1_lake())
        warm.detect(measure="lcc")
        snapshot = tmp_path / "snap"
        warm.save(snapshot)
        warm.close()

        index = HomographIndex.load(snapshot, mmap=True)
        # Force a fresh compute (not the snapshot's warm entry) so the
        # entry carries maintenance state.
        index.detect(measure="lcc", lcc_variant="value-neighbors")
        index.add_table(table("TX", DISJOINT_TABLE))
        mutation = index.last_mutation
        assert mutation["fallback"] is None
        assert mutation["patched_entries"] == 1  # the fresh compute
        oracle = HomographIndex(lake_copy(index.lake))
        assert_same_response(
            index.detect(measure="lcc", lcc_variant="value-neighbors"),
            oracle.detect(measure="lcc", lcc_variant="value-neighbors"),
            "snapshot-splice",
        )
        index.close()
