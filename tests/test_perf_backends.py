"""Backend parity: the process engine must reproduce serial scores.

The contract (ISSUE 2): serial is the bit-exact reference; the process
backend matches it to tight float tolerance always, and *identically*
for the sampled paths given the same seed and a pinned (deterministic)
chunking.  Covered across endpoint modes, sampling strategies, and LCC
variants, plus the edge cases — empty graph, ``n_jobs`` larger than the
work list, ``chunk_size=1``.
"""

import numpy as np
import pytest

from repro.core.approx import riondato_kornaropoulos_bc
from repro.core.betweenness import betweenness_scores
from repro.core.builder import build_graph, build_graph_from_columns
from repro.core.graph import BipartiteGraph
from repro.core.lcc import lcc_scores
from repro.perf import (
    ExecutionConfig,
    ProcessBackend,
    SerialBackend,
    available_cores,
    chunk_spans,
    resolve_backend,
    tree_sum,
)

PROCESS_2 = ExecutionConfig(backend="process", n_jobs=2)


@pytest.fixture(scope="module")
def random_graph():
    rng = np.random.default_rng(11)
    columns = {
        f"A{j}": [f"v{rng.integers(0, 60)}" for _ in range(25)]
        for j in range(14)
    }
    return build_graph_from_columns(columns)


class TestExecutionConfig:
    def test_defaults_are_serial(self):
        config = ExecutionConfig()
        assert config.resolved_backend == "serial"
        assert config.effective_jobs == 1
        assert isinstance(resolve_backend(config), SerialBackend)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_jobs_imply_process(self):
        config = ExecutionConfig(n_jobs=2)
        assert config.resolved_backend == "process"
        assert isinstance(resolve_backend(config), ProcessBackend)

    def test_process_defaults_to_all_cores(self):
        config = ExecutionConfig(backend="process")
        assert config.effective_jobs == available_cores()

    def test_serial_backend_forces_one_job(self):
        assert ExecutionConfig(backend="serial", n_jobs=8).effective_jobs == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(backend="gpu")
        with pytest.raises(ValueError):
            ExecutionConfig(n_jobs=0)
        with pytest.raises(ValueError):
            ExecutionConfig(chunk_size=0)

    def test_round_trip(self):
        config = ExecutionConfig(backend="process", n_jobs=3, chunk_size=7)
        assert ExecutionConfig.from_dict(config.to_dict()) == config


class TestChunkingPrimitives:
    def test_spans_cover_range_without_overlap(self):
        for items, jobs, size in [(10, 1, None), (10, 4, None),
                                  (7, 3, 2), (5, 8, 1), (100, 2, 33)]:
            spans = chunk_spans(items, jobs, size)
            flat = [i for lo, hi in spans for i in range(lo, hi)]
            assert flat == list(range(items))

    def test_serial_default_is_one_span(self):
        assert chunk_spans(100, 1, None) == [(0, 100)]

    def test_empty_work_list(self):
        assert chunk_spans(0, 4, None) == []

    def test_tree_sum_matches_plain_sum(self):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=17) for _ in range(9)]
        np.testing.assert_allclose(
            tree_sum(arrays), np.sum(arrays, axis=0), atol=1e-12
        )

    def test_tree_sum_single(self):
        one = np.arange(4.0)
        np.testing.assert_array_equal(tree_sum([one]), one)

    def test_tree_sum_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_sum([])


class TestExactBetweennessParity:
    @pytest.mark.parametrize("endpoints", ["all", "values"])
    def test_endpoint_modes(self, figure1_lake, endpoints):
        graph = build_graph(figure1_lake)
        serial = betweenness_scores(graph, endpoints=endpoints)
        parallel = betweenness_scores(
            graph, endpoints=endpoints, execution=PROCESS_2
        )
        np.testing.assert_allclose(serial, parallel, atol=1e-14)

    def test_random_graph_rankings_identical(self, random_graph):
        serial = betweenness_scores(random_graph)
        parallel = betweenness_scores(random_graph, execution=PROCESS_2)
        np.testing.assert_allclose(serial, parallel, atol=1e-14)
        assert np.array_equal(
            np.argsort(-serial, kind="stable"),
            np.argsort(-parallel, kind="stable"),
        )

    def test_unnormalized(self, figure1_lake):
        graph = build_graph(figure1_lake)
        np.testing.assert_allclose(
            betweenness_scores(graph, normalized=False),
            betweenness_scores(
                graph, normalized=False, execution=PROCESS_2
            ),
            atol=1e-12,
        )


class TestSampledBetweennessParity:
    @pytest.mark.parametrize("strategy", ["uniform", "degree"])
    def test_same_seed_pinned_chunking_bit_exact(
        self, figure1_lake, strategy
    ):
        graph = build_graph(figure1_lake)
        kwargs = dict(sample_size=12, seed=5, strategy=strategy)
        serial = betweenness_scores(
            graph,
            execution=ExecutionConfig(backend="serial", chunk_size=4),
            **kwargs,
        )
        parallel = betweenness_scores(
            graph,
            execution=ExecutionConfig(
                backend="process", n_jobs=2, chunk_size=4
            ),
            **kwargs,
        )
        np.testing.assert_array_equal(serial, parallel)

    def test_unpinned_chunking_tolerance(self, figure1_lake):
        graph = build_graph(figure1_lake)
        serial = betweenness_scores(graph, sample_size=10, seed=2)
        parallel = betweenness_scores(
            graph, sample_size=10, seed=2, execution=PROCESS_2
        )
        np.testing.assert_allclose(serial, parallel, atol=1e-14)


class TestRKParity:
    def test_same_seed_identical_across_chunkings(self, random_graph):
        serial = riondato_kornaropoulos_bc(
            random_graph, seed=9, max_samples=60
        )
        for execution in [
            PROCESS_2,
            ExecutionConfig(backend="process", n_jobs=2, chunk_size=1),
            ExecutionConfig(backend="serial", chunk_size=7),
        ]:
            parallel = riondato_kornaropoulos_bc(
                random_graph, seed=9, max_samples=60, execution=execution
            )
            # Per-sample seed streams make the estimate independent of
            # chunking; only the tree-sum association can differ.
            np.testing.assert_allclose(serial, parallel, atol=1e-14)


class TestLCCParity:
    @pytest.mark.parametrize("variant", ["attribute-jaccard",
                                         "value-neighbors"])
    def test_variants_bit_exact(self, figure1_lake, variant):
        graph = build_graph(figure1_lake)
        serial = lcc_scores(graph, variant=variant)
        parallel = lcc_scores(
            graph, variant=variant, execution=PROCESS_2
        )
        np.testing.assert_array_equal(serial, parallel)

    def test_chunk_size_one(self, random_graph):
        serial = lcc_scores(random_graph)
        parallel = lcc_scores(
            random_graph,
            execution=ExecutionConfig(
                backend="process", n_jobs=2, chunk_size=64
            ),
        )
        np.testing.assert_array_equal(serial, parallel)


class TestEdgeCases:
    def test_empty_graph(self):
        graph = BipartiteGraph([], [], [])
        assert betweenness_scores(graph, execution=PROCESS_2).size == 0
        assert lcc_scores(graph, execution=PROCESS_2).size == 0

    def test_jobs_exceed_sources(self):
        graph = build_graph_from_columns({"A": ["x", "y"], "B": ["x"]})
        serial = betweenness_scores(graph)
        parallel = betweenness_scores(
            graph,
            execution=ExecutionConfig(
                backend="process", n_jobs=8, chunk_size=1
            ),
        )
        np.testing.assert_allclose(serial, parallel, atol=1e-14)

    def test_chunk_size_one_exact_bc(self, figure1_lake):
        graph = build_graph(figure1_lake)
        serial = betweenness_scores(graph)
        parallel = betweenness_scores(
            graph,
            execution=ExecutionConfig(
                backend="process", n_jobs=2, chunk_size=1
            ),
        )
        np.testing.assert_allclose(serial, parallel, atol=1e-14)

    def test_single_worker_process_backend(self, figure1_lake):
        # n_jobs=1 with an explicit process backend still exercises the
        # shared-memory path (the CI smoke relies on this).
        graph = build_graph(figure1_lake)
        serial = betweenness_scores(graph)
        parallel = betweenness_scores(
            graph,
            execution=ExecutionConfig(backend="process", n_jobs=1),
        )
        np.testing.assert_allclose(serial, parallel, atol=1e-14)


class TestWorkerExportCache:
    def test_stale_exports_are_closed_not_retained(self, random_graph):
        # Run the persistent worker task in-process with two
        # generations of the same graph's export: the task carries
        # the parent's live-export set, and any cached attachment
        # outside it must be closed immediately — unlinked segments
        # whose memory would otherwise stay pinned by the worker.
        from repro.perf import backends as backends_module

        def export(graph):
            indptr_shm, indptr_spec = backends_module._export_shared_array(
                graph.indptr)
            indices_shm, indices_spec = (
                backends_module._export_shared_array(graph.indices))
            specs = (indptr_spec, indices_spec,
                     graph.num_nodes, graph.num_values)
            names = (indptr_spec[0], indices_spec[0])
            return [indptr_shm, indices_shm], specs, names

        shms_a, specs_a, names_a = export(random_graph)
        shms_b, specs_b, names_b = export(random_graph)
        common = {"variant": "attribute-jaccard"}
        cache = backends_module._WORKER_EXPORTS
        before = dict(cache)
        try:
            backends_module._persistent_worker_task(
                ("lcc", (0, 2), common, specs_a, (names_a,)))
            assert names_a in cache
            # Generation swap: the parent dropped export A, B is live.
            backends_module._persistent_worker_task(
                ("lcc", (0, 2), common, specs_b, (names_b,)))
            assert names_b in cache
            assert names_a not in cache       # closed, not retained
            # Two live exports coexist (the multi-lake case): re-add A
            # with both names live and B must survive.
            shms_a2, specs_a2, names_a2 = export(random_graph)
            backends_module._persistent_worker_task(
                ("lcc", (0, 2), common, specs_a2, (names_a2, names_b)))
            assert names_a2 in cache and names_b in cache
            shms_a.extend(shms_a2)
        finally:
            for key in [k for k in list(cache) if k not in before]:
                backends_module._evict_worker_export(key)
            backends_module._release_segments(shms_a)
            backends_module._release_segments(shms_b)


class TestGraphArraysFrozen:
    def test_csr_arrays_read_only(self, figure1_lake):
        graph = build_graph(figure1_lake)
        assert not graph.indptr.flags.writeable
        assert not graph.indices.flags.writeable
        with pytest.raises(ValueError):
            graph.indptr[0] = 99
        with pytest.raises(ValueError):
            graph.indices[0] = 99


class TestApiThreading:
    def test_request_round_trips_execution(self):
        from repro import DetectRequest

        request = DetectRequest(
            measure="lcc",
            execution=ExecutionConfig(n_jobs=2, chunk_size=3),
        )
        clone = DetectRequest.from_dict(request.to_dict())
        assert clone == request
        assert clone.execution == request.execution

    def test_request_accepts_execution_mapping(self):
        from repro import DetectRequest

        request = DetectRequest(execution={"backend": "process",
                                           "n_jobs": 2})
        assert request.execution == ExecutionConfig(
            backend="process", n_jobs=2
        )

    def test_execution_excluded_from_cache_key(self):
        from repro import DetectRequest

        plain = DetectRequest(measure="betweenness")
        parallel = plain.with_overrides(execution=PROCESS_2)
        assert plain.cache_key == parallel.cache_key

    def test_index_default_execution_matches_serial(self, figure1_lake):
        from repro import HomographIndex

        serial_index = HomographIndex(figure1_lake,
                                      prune_candidates=False)
        parallel_index = HomographIndex(
            figure1_lake, prune_candidates=False, execution=PROCESS_2
        )
        a = serial_index.detect(measure="betweenness")
        b = parallel_index.detect(measure="betweenness")
        for value, score in a.scores.items():
            assert b.scores[value] == pytest.approx(score, abs=1e-12)

        # Rank order agrees once exact ties (equal scores, order decided
        # by float association noise at ~1e-18) are broken by name.
        def tie_broken(response):
            return sorted(
                response.scores,
                key=lambda v: (-round(response.scores[v], 9), v),
            )

        assert tie_broken(a) == tie_broken(b)
        # Execution does not fragment the cache: a request with its own
        # config is served from the same cached entry.
        cached = parallel_index.detect(
            measure="betweenness",
            execution=ExecutionConfig(backend="serial"),
        )
        assert cached.cached
