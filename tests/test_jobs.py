"""JobManager lifecycle: states, TTL eviction, cancel, drain, id space.

The ISSUE-5 satellite checklist in-process: poll-after-TTL-eviction
raises (the HTTP layer maps it to 404), cancelling a finished job is a
no-op, a drain with a queued job leaves it in a terminal state, and
two workspaces' job ids never collide.
"""

import threading
import time

import pytest

from repro import (
    DetectRequest,
    HomographIndex,
    JobManager,
    JobOverflowError,
    MeasureOutput,
    UnknownJobError,
    Workspace,
    register_measure,
    unregister_measure,
)
from tests.conftest import make_figure1_lake


@pytest.fixture
def index():
    idx = HomographIndex(make_figure1_lake())
    yield idx
    idx.close()


@pytest.fixture
def gated_measure():
    """A measure that blocks until released (fills dispatcher slots)."""
    state = {"release": threading.Event(), "running": threading.Event()}

    def measure(graph, request):
        state["running"].set()
        state["release"].wait(15)
        return MeasureOutput(scores={"X": 1.0}, descending=True)

    register_measure("gated-jobs-test", measure)
    yield state
    state["release"].set()
    unregister_measure("gated-jobs-test")


def wait_terminal(manager, job_id, timeout=15.0):
    """Poll until the job leaves queued/running; return the snapshot."""
    deadline = time.monotonic() + timeout
    while True:
        snapshot = manager.get(job_id)
        if snapshot["state"] in ("done", "error"):
            return snapshot
        assert time.monotonic() < deadline, snapshot
        time.sleep(0.01)


class TestLifecycle:
    def test_submit_runs_to_done_with_response_payload(self, index):
        manager = JobManager()
        job_id = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        snapshot = wait_terminal(manager, job_id)
        assert snapshot["state"] == "done"
        assert snapshot["lake"] == "zoo"
        assert snapshot["measure"] == "lcc"
        assert snapshot["runtime_seconds"] >= 0
        assert snapshot["response"]["ranking"]
        # The job rode the index's machinery: its result is cached.
        assert index.detect(measure="lcc").cached

    def test_jobs_share_the_score_cache(self, index):
        manager = JobManager()
        first = wait_terminal(manager, manager.submit(
            "zoo", index, DetectRequest(measure="lcc")))
        second = wait_terminal(manager, manager.submit(
            "zoo", index, DetectRequest(measure="lcc")))
        assert first["response"]["cached"] is False
        assert second["response"]["cached"] is True
        assert second["response"]["ranking"] == \
            first["response"]["ranking"]

    def test_measure_failure_is_error_state(self, index):
        def boom(graph, request):
            raise ValueError("kernel exploded")

        register_measure("boom-jobs-test", boom)
        try:
            manager = JobManager()
            job_id = manager.submit(
                "zoo", index, DetectRequest(measure="boom-jobs-test")
            )
            snapshot = wait_terminal(manager, job_id)
            assert snapshot["state"] == "error"
            assert snapshot["error"]["type"] == "ValueError"
            assert "kernel exploded" in snapshot["error"]["message"]
        finally:
            unregister_measure("boom-jobs-test")

    def test_unknown_job_raises(self, index):
        manager = JobManager()
        with pytest.raises(UnknownJobError):
            manager.get("deadbeef")
        with pytest.raises(UnknownJobError):
            manager.cancel("deadbeef")


class TestOverflow:
    def test_submit_past_max_jobs_raises(self, index, gated_measure):
        manager = JobManager(max_jobs=2)
        for i in range(2):
            manager.submit("zoo", index, DetectRequest(
                measure="gated-jobs-test", options={"slot": i},
            ))
        with pytest.raises(JobOverflowError):
            manager.submit("zoo", index, DetectRequest(measure="lcc"))
        gated_measure["release"].set()
        manager.drain(timeout=15.0)

    def test_eviction_frees_capacity(self, index):
        clock = [0.0]
        manager = JobManager(ttl=5.0, max_jobs=1, clock=lambda: clock[0])
        job_id = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        wait_terminal(manager, job_id)
        with pytest.raises(JobOverflowError):
            manager.submit("zoo", index, DetectRequest(measure="lcc"))
        clock[0] = 10.0  # the finished job ages out of the window
        replacement = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        assert wait_terminal(manager, replacement)["state"] == "done"


class TestTTLEviction:
    def test_nonpositive_ttl_is_rejected(self):
        # ttl=0 would evict every finished job before its first poll.
        for ttl in (0, -1, -0.5):
            with pytest.raises(ValueError):
                JobManager(ttl=ttl)

    def test_poll_after_ttl_eviction_raises(self, index):
        clock = [0.0]
        manager = JobManager(ttl=10.0, clock=lambda: clock[0])
        job_id = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        wait_terminal(manager, job_id)
        clock[0] = 10.0  # exactly at the TTL: still pollable
        assert manager.get(job_id)["state"] == "done"
        clock[0] = 10.1  # past it: evicted lazily on the next access
        with pytest.raises(UnknownJobError):
            manager.get(job_id)
        assert len(manager) == 0

    def test_unfinished_jobs_are_never_evicted(self, index, gated_measure):
        clock = [0.0]
        manager = JobManager(ttl=1.0, clock=lambda: clock[0])
        job_id = manager.submit(
            "zoo", index, DetectRequest(measure="gated-jobs-test")
        )
        assert gated_measure["running"].wait(10)
        clock[0] = 100.0  # far past the TTL, but the job still runs
        assert manager.get(job_id)["state"] == "running"
        gated_measure["release"].set()
        assert wait_terminal(manager, job_id)["state"] == "done"


class TestCancel:
    def test_cancel_finished_job_is_noop(self, index):
        manager = JobManager()
        job_id = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        done = wait_terminal(manager, job_id)
        assert done["state"] == "done"
        after = manager.cancel(job_id)
        assert after["state"] == "done"  # not flipped to error
        assert after["response"] == done["response"]

    def test_cancel_queued_job_reaches_error_state(
        self, index, gated_measure
    ):
        manager = JobManager()
        # Fill every dispatcher thread so the last submission queues.
        blockers = [
            manager.submit("zoo", index, DetectRequest(
                measure="gated-jobs-test",
                options={"slot": i},
            ))
            for i in range(4)
        ]
        queued = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        assert manager.get(queued)["state"] == "queued"
        cancelled = manager.cancel(queued)
        assert cancelled["state"] == "error"
        assert cancelled["error"]["type"] == "CancelledError"
        gated_measure["release"].set()
        for job_id in blockers:
            assert wait_terminal(manager, job_id)["state"] == "done"


class TestDrain:
    def test_drain_with_queued_job_returns_terminal_state(
        self, index, gated_measure
    ):
        manager = JobManager()
        blockers = [
            manager.submit("zoo", index, DetectRequest(
                measure="gated-jobs-test",
                options={"slot": i},
            ))
            for i in range(4)
        ]
        queued = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        assert manager.get(queued)["state"] == "queued"

        closer = threading.Thread(target=index.close)
        closer.start()
        # close() cancels queued futures before waiting for the
        # admitted (gated) calls to drain.
        deadline = time.monotonic() + 10
        while manager.get(queued)["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        gated_measure["release"].set()
        closer.join(15)
        assert not closer.is_alive()
        manager.drain(timeout=10.0)
        snapshot = manager.get(queued)
        assert snapshot["state"] == "error"
        assert snapshot["error"]["type"] == "CancelledError"
        # The blockers were already admitted: they finished normally.
        for job_id in blockers:
            assert manager.get(job_id)["state"] == "done"

    def test_stats_counts_states(self, index):
        manager = JobManager()
        job_id = manager.submit(
            "zoo", index, DetectRequest(measure="lcc")
        )
        wait_terminal(manager, job_id)
        stats = manager.stats()
        assert stats["tracked"] == 1
        assert stats["states"] == {"done": 1}
        assert stats["ttl_seconds"] == manager.ttl


class TestJobIdSpace:
    def test_two_workspaces_job_ids_never_collide(self):
        with Workspace() as first, Workspace() as second:
            first.attach("zoo", make_figure1_lake())
            second.attach("zoo", make_figure1_lake())
            managers = (JobManager(), JobManager())
            ids = set()
            for workspace, manager in zip((first, second), managers):
                index = workspace.get("zoo")
                for _ in range(25):
                    job_id = manager.submit(
                        "zoo", index, DetectRequest(measure="lcc")
                    )
                    assert job_id not in ids
                    ids.add(job_id)
            assert len(ids) == 50
            for manager in managers:
                manager.drain(timeout=30.0)
