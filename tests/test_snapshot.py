"""Snapshot persistence: round trips, corruption, mounts, job spill.

The contract under test, end to end:

* ``HomographIndex.save`` writes a versioned directory that
  ``HomographIndex.load`` maps back bit-exactly (mmap-backed CSR,
  ``writeable=False`` preserved) without rebuilding the graph;
* a pre-warmed configuration served from a loaded snapshot produces
  *byte-identical* ``DetectResponse`` JSON to the fresh index's own
  cache hit;
* every corruption mode — truncated array, flipped byte, future
  format version — surfaces as a typed ``SnapshotError`` subclass,
  never a raw numpy/OS exception, and a workspace that failed one
  mount keeps serving its other lakes;
* detaching a snapshot-mounted lake releases the mmap file handles,
  so the snapshot directory is deletable afterwards;
* ``POST /lakes`` / ``DELETE /lakes/<name>`` mount and unmount lakes
  at runtime (bearer auth enforced, 409 on duplicate names);
* finished async jobs spilled to a ``persist_dir`` survive a manager
  (and server) restart until the TTL expires them.
"""

import gc
import json
import os
import shutil
import time

import numpy as np
import pytest

from repro import (
    DetectRequest,
    HomographIndex,
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotVersionError,
    Workspace,
    is_snapshot,
    load_snapshot,
    start_server,
)
from repro.serving.client import HomographClient, ServiceError
from repro.serving.jobs import JobManager
from repro.snapshot import FORMAT_VERSION, load_manifest

from tests.conftest import make_figure1_lake

WARM_REQUESTS = (
    DetectRequest(measure="lcc"),
    DetectRequest(measure="betweenness", sample_size=8, seed=3),
)


def build_snapshot_dir(tmp_path, name="snap"):
    """Build, warm, and save a figure-1 snapshot; returns its path."""
    target = tmp_path / name
    with HomographIndex(make_figure1_lake()) as index:
        for request in WARM_REQUESTS:
            index.detect(request)
        manifest = index.save(target)
    assert manifest["format"] == FORMAT_VERSION
    return target


@pytest.fixture
def snapshot_dir(tmp_path):
    return build_snapshot_dir(tmp_path)


class TestRoundTrip:
    def test_save_load_is_bit_exact(self, snapshot_dir, figure1_lake):
        fresh = HomographIndex(figure1_lake).graph
        loaded = load_snapshot(snapshot_dir)
        assert np.array_equal(loaded.graph.indptr, fresh.indptr)
        assert np.array_equal(loaded.graph.indices, fresh.indices)
        assert loaded.graph.value_names == fresh.value_names
        assert loaded.graph.attribute_names == fresh.attribute_names
        assert len(loaded.lake) == len(figure1_lake)
        assert len(loaded.responses) == len(WARM_REQUESTS)

    def test_mmap_load_preserves_frozen_arrays(self, snapshot_dir):
        loaded = load_snapshot(snapshot_dir)
        # The arrays must stay file-backed memmaps (the process
        # backend exports them by path) and read-only (PR-2 invariant).
        for array in (loaded.graph.indptr, loaded.graph.indices):
            assert isinstance(array, np.memmap)
            assert array.flags.writeable is False
            with pytest.raises((ValueError, RuntimeError)):
                array[0] = 7

    def test_copy_load_also_frozen(self, snapshot_dir):
        loaded = load_snapshot(snapshot_dir, mmap=False)
        assert not isinstance(loaded.graph.indptr, np.memmap)
        assert loaded.graph.indptr.flags.writeable is False

    def test_is_snapshot_and_manifest(self, snapshot_dir, tmp_path):
        assert is_snapshot(snapshot_dir)
        assert not is_snapshot(tmp_path)
        assert not is_snapshot(snapshot_dir / "missing")
        manifest = load_manifest(snapshot_dir)
        assert manifest["scores"] == len(WARM_REQUESTS)
        files = manifest["files"]
        for required in ("graph/indptr.npy", "graph/indices.npy",
                         "vocab.json", "lake.json", "profiles.json"):
            assert required in files
            assert len(files[required]["sha256"]) == 64

    def test_save_replaces_existing_snapshot_atomically(
        self, snapshot_dir
    ):
        before = load_manifest(snapshot_dir)
        with HomographIndex(make_figure1_lake()) as index:
            index.detect(measure="lcc")
            index.save(snapshot_dir)  # overwrite in place
        after = load_manifest(snapshot_dir)
        assert after["scores"] == 1
        assert after["created_at"] >= before["created_at"]
        load_snapshot(snapshot_dir)  # still verifies clean

    def test_republish_preserves_spilled_jobs(self, snapshot_dir):
        # save-on-exit republishes over a snapshot whose jobs/ area
        # already holds terminal spills; they must carry over, or a
        # restart would 404 the jobs it promised to restore.
        spill = snapshot_dir / "jobs" / "deadbeef.json"
        spill.write_text('{"job": {"state": "done"}}')
        with HomographIndex(make_figure1_lake()) as index:
            index.save(snapshot_dir)
        assert spill.read_text() == '{"job": {"state": "done"}}'
        load_manifest(snapshot_dir)  # spills never poison the hashes


class TestResponseParity:
    def test_loaded_cache_hit_is_byte_identical(self, tmp_path):
        request = WARM_REQUESTS[1]
        target = tmp_path / "parity"
        with HomographIndex(make_figure1_lake()) as fresh:
            fresh.detect(request)
            fresh.save(target)
            fresh_hit = fresh.detect(request)  # served from cache
        assert fresh_hit.cached
        with HomographIndex.load(target) as loaded:
            loaded_hit = loaded.detect(request)
        # measure_seconds is wall clock, so the honest comparison is
        # cache-hit vs cache-hit: both serve the one stored
        # computation the snapshot captured.
        assert loaded_hit.cached
        assert loaded_hit.to_json() == fresh_hit.to_json()

    def test_load_skips_graph_build(self, snapshot_dir):
        with HomographIndex.load(snapshot_dir) as index:
            stats = index.stats()
            assert stats["graph_built"] is True
            assert stats["snapshot"] == str(snapshot_dir)
            assert stats["cache"]["size"] == len(WARM_REQUESTS)

    def test_loaded_index_still_mutable(self, snapshot_dir):
        from repro import Table

        with HomographIndex.load(snapshot_dir) as index:
            index.add_table(Table.from_columns(
                "T9", {"c": ["Jaguar", "Okapi"]}
            ))
            response = index.detect(measure="lcc")
            assert not response.cached  # mutation invalidated the cache
            assert len(index.lake) == 5


class TestCorruption:
    def corrupt(self, snapshot_dir, mutate):
        mutate(snapshot_dir)
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(snapshot_dir)
        # Typed surface only: never a raw numpy/OS error.
        assert isinstance(excinfo.value, SnapshotError)
        return excinfo.value

    def test_truncated_array(self, snapshot_dir):
        path = snapshot_dir / "graph" / "indices.npy"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        error = self.corrupt(snapshot_dir, lambda root: None)
        assert isinstance(error, SnapshotCorruptionError)

    def test_flipped_byte(self, snapshot_dir):
        path = snapshot_dir / "graph" / "indptr.npy"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # same size, different content
        path.write_bytes(bytes(data))
        error = self.corrupt(snapshot_dir, lambda root: None)
        assert isinstance(error, SnapshotCorruptionError)
        assert "sha256" in str(error) or "hash" in str(error)

    def test_future_format_version(self, snapshot_dir):
        manifest_path = snapshot_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        error = self.corrupt(snapshot_dir, lambda root: None)
        assert isinstance(error, SnapshotVersionError)

    def test_missing_manifest(self, snapshot_dir):
        (snapshot_dir / "manifest.json").unlink()
        with pytest.raises(SnapshotCorruptionError):
            load_manifest(snapshot_dir)

    def test_workspace_keeps_serving_after_failed_mount(
        self, snapshot_dir, figure1_lake
    ):
        (snapshot_dir / "graph" / "indices.npy").write_bytes(b"junk")
        with Workspace() as workspace:
            workspace.attach("good", figure1_lake)
            with pytest.raises(SnapshotError):
                workspace.attach("bad", str(snapshot_dir))
            assert workspace.names() == ("good",)
            response = workspace.get("good").detect(measure="lcc")
            assert len(response.ranking.top(1)) == 1


def open_fds_into(directory):
    """File descriptors of this process pointing into ``directory``."""
    root = os.path.realpath(str(directory))
    held = []
    for fd in os.listdir("/proc/self/fd"):
        try:
            target = os.readlink(f"/proc/self/fd/{fd}")
        except OSError:
            continue
        if target.startswith(root):
            held.append(target)
    return held


class TestWorkspaceMounts:
    def test_attach_autodetects_snapshot(self, snapshot_dir):
        with Workspace() as workspace:
            index = workspace.attach("snap", str(snapshot_dir))
            assert index.snapshot_path is not None
            hit = index.detect(WARM_REQUESTS[0])
            assert hit.cached  # pre-warmed from the snapshot

    def test_duplicate_name_keeps_loser_closed(self, snapshot_dir):
        from repro import DuplicateLakeError

        with Workspace() as workspace:
            workspace.attach("snap", str(snapshot_dir))
            with pytest.raises(DuplicateLakeError):
                workspace.attach("snap", str(snapshot_dir))
            # The losing load must not leak mmap handles forever: the
            # only handles left belong to the registered index.
            workspace.detach("snap")
        gc.collect()
        assert open_fds_into(snapshot_dir) == []

    def test_detach_releases_mmaps_and_dir_is_deletable(
        self, snapshot_dir, figure1_lake
    ):
        with Workspace() as workspace:
            workspace.attach("fresh", figure1_lake)
            workspace.attach("snap", str(snapshot_dir))
            assert workspace.get("snap").detect(
                WARM_REQUESTS[0]
            ).cached
            workspace.detach("snap")
            gc.collect()
            assert open_fds_into(snapshot_dir) == []
            shutil.rmtree(snapshot_dir)  # must not raise
            # The sibling lake is untouched by the unmount.
            workspace.get("fresh").detect(measure="lcc")


class TestPoolExport:
    def test_snapshot_graph_exports_by_file_not_shm(self, snapshot_dir):
        from repro import ExecutionConfig

        execution = ExecutionConfig(
            backend="process", n_jobs=2, persistent=True
        )
        request = DetectRequest(
            measure="betweenness", sample_size=4, seed=99
        )
        with HomographIndex.load(snapshot_dir) as serial:
            expected = serial.detect(request)
        assert not expected.cached  # not one of the warmed configs
        with Workspace(execution=execution) as workspace:
            index = workspace.attach("snap", str(snapshot_dir))
            response = index.detect(request)
            assert not response.cached
            # A file-backed CSR export copies nothing into /dev/shm:
            # workers mmap the snapshot files directly, so the export
            # owns zero shared-memory segments.
            backend = workspace.backend
            assert backend is not None
            assert backend.export_names == ()
            exports = list(backend._exports.values())
            assert len(exports) == 1  # the graph *was* exported...
            assert exports[0].segments == []  # ...with no shm copy
            assert exports[0].specs[0][0].startswith("file:")
        assert response.scores == expected.scores


class TestHTTPMounts:
    TOKEN = "s3cret"

    @pytest.fixture
    def served(self, figure1_lake):
        workspace = Workspace()
        workspace.attach("main", figure1_lake)
        server = start_server(workspace, port=0, auth_token=self.TOKEN)
        yield server
        server.drain()

    def client(self, server, lake=None):
        return HomographClient(server.url, token=self.TOKEN, lake=lake)

    def test_mount_requires_auth(self, served, snapshot_dir):
        anonymous = HomographClient(served.url)
        with pytest.raises(ServiceError) as excinfo:
            anonymous.mount_lake("snap", str(snapshot_dir))
        assert excinfo.value.status == 401

    def test_mount_detect_unmount(self, served, snapshot_dir):
        client = self.client(served)
        result = client.mount_lake("snap", str(snapshot_dir))
        assert result["lake"] == "snap"
        assert result["snapshot"] == str(snapshot_dir)
        names = [
            lake["name"] for lake in client.lakes()["lakes"]
        ]
        assert names == ["main", "snap"]
        # The mounted snapshot answers a pre-warmed config from cache.
        response = self.client(served, lake="snap").detect(
            WARM_REQUESTS[0]
        )
        assert response.cached
        assert client.unmount_lake("snap") == {
            "lake": "snap", "detached": True,
        }
        with pytest.raises(ServiceError) as excinfo:
            client.unmount_lake("snap")
        assert excinfo.value.status == 404

    def test_duplicate_mount_is_409(self, served, snapshot_dir):
        client = self.client(served)
        client.mount_lake("snap", str(snapshot_dir))
        with pytest.raises(ServiceError) as excinfo:
            client.mount_lake("snap", str(snapshot_dir))
        assert excinfo.value.status == 409
        assert excinfo.value.code == "duplicate-lake"

    def test_corrupt_snapshot_mount_is_400_and_siblings_serve(
        self, served, snapshot_dir
    ):
        (snapshot_dir / "vocab.json").write_text("{broken")
        client = self.client(served)
        with pytest.raises(ServiceError) as excinfo:
            client.mount_lake("snap", str(snapshot_dir))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-snapshot"
        # The failed mount never disturbed the running lake.
        self.client(served, lake="main").detect(measure="lcc")

    def test_bad_payloads_are_400(self, served):
        client = self.client(served)
        for payload in ({}, {"name": "x"}, {"name": 7, "path": "p"},
                        {"name": "bad name!", "path": "/nope"}):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/lakes", payload=payload)
            assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.mount_lake("ghost", "/no/such/directory")
        assert excinfo.value.status == 400


class TestJobPersistence:
    def finished_job(self, manager, index):
        job_id = manager.submit(
            "lake", index, DetectRequest(measure="lcc")
        )
        deadline = time.monotonic() + 30
        while manager.get(job_id)["state"] not in ("done", "error"):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        return job_id

    def test_terminal_jobs_survive_restart(self, tmp_path, figure1_lake):
        spill = tmp_path / "jobs"
        with HomographIndex(figure1_lake) as index:
            manager = JobManager(ttl=300, persist_dir=spill)
            job_id = self.finished_job(manager, index)
            before = manager.get(job_id)
        assert (spill / f"{job_id}.json").exists()
        restored = JobManager(ttl=300, persist_dir=spill)
        after = restored.get(job_id)
        assert after["state"] == "done"
        assert after["response"] == before["response"]
        assert after["runtime_seconds"] == before["runtime_seconds"]
        # Restored records are frozen: cancel is a no-op, not a crash.
        assert restored.cancel(job_id)["state"] == "done"

    def test_restored_jobs_obey_ttl(self, tmp_path, figure1_lake):
        spill = tmp_path / "jobs"
        with HomographIndex(figure1_lake) as index:
            manager = JobManager(ttl=3600, persist_dir=spill)
            job_id = self.finished_job(manager, index)
        path = spill / f"{job_id}.json"
        data = json.loads(path.read_text())
        data["finished_wall"] = time.time() - 1000  # age past the TTL
        path.write_text(json.dumps(data))
        restored = JobManager(ttl=60, persist_dir=spill)
        from repro.serving.jobs import UnknownJobError

        with pytest.raises(UnknownJobError):
            restored.get(job_id)
        assert not path.exists()  # expired spill is reclaimed

    def test_unreadable_spill_is_discarded(self, tmp_path):
        spill = tmp_path / "jobs"
        spill.mkdir()
        (spill / "garbage.json").write_text("{nope")
        manager = JobManager(ttl=60, persist_dir=spill)
        assert len(manager) == 0
        assert not (spill / "garbage.json").exists()

    def test_sweep_unlinks_spilled_file(self, tmp_path, figure1_lake):
        spill = tmp_path / "jobs"
        clock = [0.0]
        with HomographIndex(figure1_lake) as index:
            manager = JobManager(
                ttl=5, persist_dir=spill, clock=lambda: clock[0]
            )
            job_id = self.finished_job(manager, index)
            assert (spill / f"{job_id}.json").exists()
            clock[0] += 10
            assert manager.sweep() == 1
        assert not (spill / f"{job_id}.json").exists()

    def test_server_restart_serves_old_job(self, tmp_path, figure1_lake):
        spill = tmp_path / "jobs"
        workspace = Workspace()
        workspace.attach("main", figure1_lake)
        server = start_server(workspace, port=0, job_dir=str(spill))
        try:
            client = HomographClient(server.url, lake="main")
            job_id = client.submit(measure="lcc")
            client.wait(job_id, timeout=30)
        finally:
            server.drain()
        # A brand-new server process (fresh workspace, same job_dir)
        # still answers the poll for the pre-restart job.
        workspace2 = Workspace()
        workspace2.attach("main", make_figure1_lake())
        server2 = start_server(workspace2, port=0, job_dir=str(spill))
        try:
            snapshot = HomographClient(server2.url).poll(job_id)
            assert snapshot["state"] == "done"
            assert snapshot["response"]["measure"] == "lcc"
        finally:
            server2.drain()
