"""Tests for the SB benchmark generator (paper §4.1 / Table 1 row 1)."""

import pytest

from repro.bench.synthetic import (
    SB_ATTRIBUTE_TYPES,
    SBConfig,
    generate_sb,
)
from repro.bench.vocab import PLANTED_HOMOGRAPHS
from repro.datalake.catalog import compute_statistics
from repro.datalake.profiling import value_attribute_index


@pytest.fixture(scope="module")
def sb():
    return generate_sb()


class TestStructure:
    def test_thirteen_tables(self, sb):
        assert len(sb.lake) == 13

    def test_thirty_nine_attributes(self, sb):
        assert sb.lake.num_attributes == 39

    def test_row_counts(self, sb):
        assert sb.lake.table("countries").num_rows == 193
        assert sb.lake.table("us_states").num_rows == 50
        for name in sb.lake.table_names:
            if name not in ("countries", "us_states"):
                assert sb.lake.table(name).num_rows == 1000

    def test_every_attribute_typed(self, sb):
        qnames = {c.qualified_name for c in sb.lake.iter_attributes()}
        assert qnames == set(SB_ATTRIBUTE_TYPES)

    def test_vocabulary_size_order_of_paper(self, sb):
        stats = compute_statistics(sb.lake, "SB")
        # Paper: 17,633 distinct values.  Same order of magnitude.
        assert 8_000 <= stats.num_values <= 25_000


class TestGroundTruth:
    def test_exactly_55_homographs(self, sb):
        assert len(sb.homographs) == 55
        assert sb.homographs == set(PLANTED_HOMOGRAPHS)

    def test_all_meanings_two(self, sb):
        for value in sb.homographs:
            assert sb.ground_truth.meanings[value] == 2

    def test_homographs_appear_on_both_sides(self, sb):
        index = value_attribute_index(sb.lake)
        for value, (type_a, type_b) in PLANTED_HOMOGRAPHS.items():
            types = {
                SB_ATTRIBUTE_TYPES[attr] for attr in index[value]
            }
            assert types == {type_a, type_b}, value

    def test_unambiguous_repeated_values_exist(self, sb):
        # Values like TOYOTA repeat across company columns but have one
        # meaning — the hard negatives of the benchmark.
        index = value_attribute_index(sb.lake)
        multi = {
            v for v, attrs in index.items()
            if len(attrs) >= 2 and v not in sb.homographs
        }
        assert len(multi) > 300

    def test_cardinality_range_order_of_paper(self, sb):
        stats = compute_statistics(
            sb.lake, "SB",
            homographs=sb.homographs,
            meanings=sb.ground_truth.meanings,
        )
        # Paper: 151-1,966.
        assert stats.homograph_cardinality_min >= 50
        assert stats.homograph_cardinality_max <= 4_000


class TestDeterminism:
    def test_same_seed_same_lake(self):
        a = generate_sb(SBConfig(rows=50, seed=3))
        b = generate_sb(SBConfig(rows=50, seed=3))
        for name in a.lake.table_names:
            assert a.lake.table(name).rows == b.lake.table(name).rows

    def test_different_seed_different_lake(self):
        a = generate_sb(SBConfig(rows=50, seed=3))
        b = generate_sb(SBConfig(rows=50, seed=4))
        diffs = sum(
            a.lake.table(n).rows != b.lake.table(n).rows
            for n in a.lake.table_names
        )
        assert diffs > 0

    def test_small_rows_still_valid(self):
        # Ground-truth verification runs inside generate_sb; exactly 55
        # homographs must survive even at greatly reduced scale.
        sb = generate_sb(SBConfig(rows=100, seed=1))
        assert len(sb.homographs) == 55


class TestDetectionQuality:
    """The §5.1 headline shapes, asserted loosely enough to be stable."""

    def test_bc_beats_lcc_at_top55(self, sb):
        from repro import DomainNet

        det = DomainNet.from_lake(sb.lake)
        bc = det.detect(measure="betweenness")
        lcc = det.detect(measure="lcc")
        bc_hits = sum(1 for v in bc.top_values(55) if v in sb.homographs)
        lcc_hits = sum(1 for v in lcc.top_values(55) if v in sb.homographs)
        assert bc_hits > lcc_hits
        assert bc_hits >= 30  # paper: 38/55

    def test_bc_misses_are_abbreviations(self, sb):
        from repro import DomainNet

        det = DomainNet.from_lake(sb.lake)
        bc = det.detect(measure="betweenness")
        top = set(bc.top_values(55))
        missed = sb.homographs - top
        abbreviations = {
            v for v, t in PLANTED_HOMOGRAPHS.items()
            if t == ("country_code", "state_abbr")
        }
        # Paper §5.1: "The homographs not in the top-55 are
        # country/state abbreviation homographs."
        assert missed <= abbreviations
