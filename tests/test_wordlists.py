"""Sanity tests for the raw word lists behind the SB generator."""

import string

from repro.bench import wordlists as words


class TestCountries:
    def test_193_un_members(self):
        assert len(words.COUNTRIES_WITH_CODES) == 193

    def test_names_unique(self):
        names = [c for c, _ in words.COUNTRIES_WITH_CODES]
        assert len(set(names)) == len(names)

    def test_codes_unique_two_uppercase_letters(self):
        codes = [code for _, code in words.COUNTRIES_WITH_CODES]
        assert len(set(codes)) == len(codes)
        for code in codes:
            assert len(code) == 2
            assert code.isupper()

    def test_planted_collision_countries_present(self):
        pairs = dict(words.COUNTRIES_WITH_CODES)
        assert pairs["Canada"] == "CA"
        assert pairs["Albania"] == "AL"
        assert pairs["Israel"] == "IL"
        assert pairs["Tunisia"] == "TN"


class TestStates:
    def test_50_states(self):
        assert len(words.US_STATES_WITH_ABBR) == 50

    def test_abbreviations_unique(self):
        abbrs = [a for _, a in words.US_STATES_WITH_ABBR]
        assert len(set(abbrs)) == 50
        for abbr in abbrs:
            assert len(abbr) == 2 and abbr.isupper()

    def test_exactly_21_code_collisions(self):
        codes = {code for _, code in words.COUNTRIES_WITH_CODES}
        abbrs = {a for _, a in words.US_STATES_WITH_ABBR}
        assert len(codes & abbrs) == 21


class TestOtherLists:
    def test_no_list_has_blank_entries(self):
        for name in ("CITIES", "FIRST_NAMES", "LAST_NAMES", "ANIMALS",
                     "COMPANIES", "CAR_MODELS", "GROCERY_BASES",
                     "MOVIE_ADJECTIVES", "MOVIE_NOUNS", "PLANT_ADJECTIVES",
                     "PLANT_NOUNS", "DEPARTMENTS"):
            values = getattr(words, name)
            assert values, name
            for value in values:
                assert value.strip(), (name, value)

    def test_planted_values_in_their_lists(self):
        assert "Sydney" in words.FIRST_NAMES
        assert "Sydney" in words.CITIES
        assert "Jaguar" in words.ANIMALS
        assert "Jaguar" in words.COMPANIES
        assert "Lincoln" in words.CAR_MODELS
        assert "Lincoln" in words.CITIES
        assert "Pumpkin" in words.GROCERY_BASES
        assert "Pumpkin" in words.MOVIE_STANDALONE_TITLES
        assert "Berkeley" in words.LAST_NAMES
        assert "Berkeley" in words.CITIES

    def test_email_domains_wellformed(self):
        for domain in words.EMAIL_DOMAINS:
            assert "." in domain
            assert " " not in domain

    def test_latin_name_parts_capitalization(self):
        for genus in words.LATIN_GENERA:
            assert genus[0].isupper()
        for epithet in words.LATIN_EPITHETS:
            assert epithet == epithet.lower()
